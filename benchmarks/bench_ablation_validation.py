"""A5 — ablation: state-space simulation vs analytical validation.

Section V future work: "the complexity of the throughput analysis may
be moved to design-time, making the validation approach a lot faster."
We compare the two throughput engines on the 53-task beamformer layout
(the validation workload the paper calls problematic): the
maximum-cycle-ratio validator must agree with the simulation on the
achieved throughput and beat it substantially on wall-clock time.
"""

from __future__ import annotations

import time

from repro.apps import beamforming_application
from repro.arch import AllocationState
from repro.binding import bind
from repro.core import BOTH, MappingCost, map_application
from repro.routing import BfsRouter
from repro.validation import (
    analytical_throughput,
    analyze_throughput,
    layout_to_sdf,
)


def bench_ablation_validation(benchmark, platform):
    app = beamforming_application()
    state = AllocationState(platform)
    binding = bind(app, state)
    mapping = map_application(app, binding.choice, state,
                              cost=MappingCost(BOTH))
    routing = BfsRouter().route_application(app, mapping.placement, state)
    graph = layout_to_sdf(app, binding.choice, mapping.placement,
                          routing.routes, state)

    def run_both():
        started = time.perf_counter()
        simulated = analyze_throughput(graph)
        simulation_time = time.perf_counter() - started
        started = time.perf_counter()
        analytical = analytical_throughput(graph)
        analytical_time = time.perf_counter() - started
        return simulated, simulation_time, analytical, analytical_time

    simulated, sim_time, analytical, ana_time = benchmark.pedantic(
        run_both, iterations=1, rounds=3,
    )
    print()
    print(f"simulation: throughput(output)={simulated.of('output'):.6f} "
          f"in {sim_time * 1000:.1f} ms "
          f"({simulated.firings_simulated} firings)")
    print(f"analytical: throughput(output)={analytical['output']:.6f} "
          f"in {ana_time * 1000:.1f} ms")

    # the engines must agree on the 53-task layout
    relative_error = abs(
        analytical["output"] - simulated.of("output")
    ) / simulated.of("output")
    assert relative_error < 1e-6, f"engines disagree by {relative_error:.2e}"
    # and the analytical engine must deliver the promised speed-up
    assert ana_time < sim_time, (
        f"analytical {ana_time * 1000:.1f} ms not faster than "
        f"simulation {sim_time * 1000:.1f} ms"
    )
