#!/usr/bin/env python
"""Emit ``BENCH_resilience.json`` — the fault-storm resilience bench.

Runs the continuous-time admission service (``repro.sim``) on the
canonical 12x12 mesh under the overloaded three-class mix, through a
set of fault scenarios of increasing hostility — uncorrelated
transient element faults, a mixed element+link campaign, and
correlated storms — each both with the resilience subsystem enabled
(health registry + requeue-with-backoff recovery) and in the legacy
permanent-fault configuration, and reports for each:

* time-averaged element availability and observed MTTR,
* applications lost to faults vs lost-then-recovered via the requeue
  (with recovery-latency percentiles),
* repairs completed, quarantine transitions, recovery retries,
* blocking probability and kernel throughput, so the resilience
  machinery's overhead is visible next to its benefit,

plus a record/replay determinism check on the harshest scenario (the
storm run's decision trace — including the new ``repair`` /
``quarantine`` / ``recovery_retry`` events — is replayed and must be
bit-identical) and, on full runs, a ``smoke_reference`` block the CI
smoke gate compares against (apples to apples: smoke vs smoke).

Usage::

    PYTHONPATH=src python benchmarks/run_resilience_bench.py \
        [--output BENCH_resilience.json] [--smoke] \
        [--check-against BENCH_resilience.json] [--max-regression 0.30]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from benchmarks.bench_env import environment_stanza  # noqa: E402
from repro.resilience import ResilienceConfig  # noqa: E402
from repro.sim import build_recipe, replay_trace, run_recipe  # noqa: E402

#: the canonical service workload, matching run_service_bench.py
PLATFORM = "12x12"
DURATION = 120.0
SMOKE_DURATION = 20.0
RATE_SCALE = 8.0
SEED = 0
SAMPLE_INTERVAL = 5.0
POLICY = "priority"

#: fault scenarios: (name, recipe-knob overrides).  Fault counts scale
#: with the run length so the smoke run still exercises every code
#: path (storm epicenters stay put — one storm is already a region).
SCENARIOS = (
    ("transient", {"faults": 6, "fault_mttr": 10.0}),
    ("mixed_links", {"faults": 6, "fault_mttr": 10.0, "fault_links": 0.34}),
    ("storm", {"faults": 2, "fault_mttr": 12.0, "fault_storm": 1}),
)
SMOKE_FAULTS = {"transient": 3, "mixed_links": 3, "storm": 1}


def scenario_recipe(
    name: str, overrides: dict, duration: float, resilient: bool
) -> dict:
    overrides = dict(overrides)
    if duration < DURATION:
        overrides["faults"] = SMOKE_FAULTS[name]
    return build_recipe(
        platform=PLATFORM,
        duration=duration,
        seed=SEED,
        policy=POLICY,
        rate_scale=RATE_SCALE,
        sample_interval=SAMPLE_INTERVAL,
        resilience=ResilienceConfig() if resilient else None,
        **overrides,
    )


def bench_scenario(name: str, overrides: dict, duration: float) -> dict:
    entry = {"scenario": name}
    for mode, resilient in (("resilient", True), ("legacy", False)):
        recipe = scenario_recipe(name, overrides, duration, resilient)
        if not resilient:
            # legacy mode predates transient faults: strip the repair
            # knob so the comparison is against the permanent-fault
            # behaviour this subsystem replaced
            recipe.pop("fault_mttr", None)
        result = run_recipe(recipe)
        summary = result.metrics.summary()
        entry[mode] = {
            "events_processed": result.events_processed,
            "events_per_second": result.events_per_second,
            "blocking_probability": summary["blocking_probability"],
            "faults": summary["faults"],
            "resilience": summary["resilience"],
        }
    return entry


def replay_check(duration: float) -> dict:
    name, overrides = SCENARIOS[-1]  # the storm scenario
    recipe = scenario_recipe(name, overrides, duration, resilient=True)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "resilience_trace.jsonl"
        recorded = run_recipe(recipe, trace_path=path)
        identical, differences, _ = replay_trace(path)
    return {
        "scenario": name,
        "records": len(recorded.trace),
        "identical": identical,
        "first_differences": differences[:3],
    }


def check_regression(
    report: dict, committed_path: Path, max_regression: float
) -> list[str]:
    """Per-scenario resilient-mode events/sec check (empty = pass)."""
    committed = json.loads(committed_path.read_text())
    if report["workload"]["smoke"]:
        reference = committed.get("smoke_reference")
        if reference is None:
            return [
                f"{committed_path} has no smoke_reference block; "
                "regenerate it with a full bench run"
            ]
    else:
        reference = {
            entry["scenario"]: entry["resilient"]["events_per_second"]
            for entry in committed.get("scenarios", ())
        }
    violations = []
    for entry in report["scenarios"]:
        scenario = entry["scenario"]
        baseline = reference.get(scenario)
        if baseline is None or baseline <= 0:
            continue
        floor = baseline * (1.0 - max_regression)
        current = entry["resilient"]["events_per_second"]
        if current < floor:
            violations.append(
                f"{scenario}: {current:,.0f} events/s is below the "
                f"{max_regression:.0%}-regression floor {floor:,.0f} "
                f"(committed {baseline:,.0f})"
            )
    return violations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_resilience.json")
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="short CI run: correctness and replay only",
    )
    parser.add_argument(
        "--check-against", metavar="PATH",
        help="committed BENCH_resilience.json to compare events/sec "
             "against (exit 1 on a regression beyond --max-regression)",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.30,
        help="tolerated fractional events/sec regression (default 0.30)",
    )
    args = parser.parse_args()
    if not 0 <= args.max_regression < 1:
        parser.error("--max-regression must be in [0, 1)")

    duration = SMOKE_DURATION if args.smoke else DURATION
    scenarios = [
        bench_scenario(name, overrides, duration)
        for name, overrides in SCENARIOS
    ]
    replay = replay_check(duration)

    report = {
        "workload": {
            "platform": f"mesh_{PLATFORM}",
            "duration": duration,
            "rate_scale": RATE_SCALE,
            "seed": SEED,
            "policy": POLICY,
            "traffic": "default 3-class mix (interactive/batch/bursty)",
            "smoke": args.smoke,
        },
        "scenarios": scenarios,
        "replay": replay,
        "environment": environment_stanza(),
    }
    if not args.smoke:
        report["smoke_reference"] = {
            entry["scenario"]: entry["resilient"]["events_per_second"]
            for entry in (
                bench_scenario(name, overrides, SMOKE_DURATION)
                for name, overrides in SCENARIOS
            )
        }

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {output}", file=sys.stderr)
    status = 0
    if not replay["identical"]:
        print("REPLAY DIVERGED — determinism regression", file=sys.stderr)
        status = 1
    if args.check_against:
        violations = check_regression(
            report, Path(args.check_against), args.max_regression
        )
        for line in violations:
            print(f"THROUGHPUT REGRESSION: {line}", file=sys.stderr)
        if violations:
            status = 1
        else:
            print(
                f"throughput within {args.max_regression:.0%} of "
                f"{args.check_against} for every scenario",
                file=sys.stderr,
            )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
