"""E6 — the Section IV-A case-study timing breakdown.

Paper (200 MHz ARM926): binding 70.4 ms, mapping 21.7 ms, routing
7.4 ms, validation 20.6 ms.  We report host-Python milliseconds; the
claim under test is the *shape*: binding is the bottleneck for the
53-task application ("although binding is fast for small applications,
here it is actually the bottleneck") while mapping "scales quite well"
and routing stays cheapest.
"""

from __future__ import annotations

from repro.experiments import PAPER_CASE_STUDY_MS, case_study_timing


def bench_case_study(benchmark, platform):
    timings = benchmark.pedantic(
        case_study_timing,
        kwargs={"platform": platform, "repeats": 1},
        iterations=1, rounds=3,
    )
    ms = timings.as_milliseconds()
    print()
    print("case study per-phase ms (measured):",
          {k: round(v, 1) for k, v in ms.items()})
    print("case study per-phase ms (paper):   ", PAPER_CASE_STUDY_MS)

    assert ms["binding"] > ms["mapping"], "binding should dominate mapping"
    assert ms["routing"] < ms["binding"], "routing should be cheapest"
    assert ms["mapping"] < 200, "mapping must stay in run-time range"
