"""E2 — regenerate Fig. 7: per-phase runtime vs application size.

Prints the mean per-phase milliseconds bucketed by task count and
checks the scaling claims we reproduce: every phase stays in the
run-time range (milliseconds) for realistic application sizes, and
every phase's cost grows with application size.

Known deviation (see EXPERIMENTS.md): the paper reports validation as
the worst-scaling phase; our indexed state-space engine keeps
validation comparable to binding at these sizes, so the "validation
dominates" claim is only visible on the 53-task case study.
"""

from __future__ import annotations

from repro.experiments import format_fig7, run_fig7
from repro.manager import Phase


def bench_fig7(benchmark, scale, platform):
    result = benchmark.pedantic(
        run_fig7,
        kwargs={"scale": scale, "seed": 0, "platform": platform},
        iterations=1, rounds=1,
    )
    print()
    print(format_fig7(result))

    sizes = sorted(result.series)
    assert sizes, "no successful allocations recorded"
    # run-time feasibility: every phase mean stays below 100 ms for
    # every application size (the paper: "tens of milliseconds" for a
    # whole attempt on a 200 MHz ARM; host Python is comfortably faster)
    for tasks, values in result.series.items():
        for phase in Phase:
            assert values[phase.value] < 100.0, (
                f"{phase.value} took {values[phase.value]:.1f} ms "
                f"at {tasks} tasks"
            )
    small = [s for s in sizes if s <= 6]
    large = [s for s in sizes if s >= 10]
    if small and large:
        def mean_phase(buckets, phase):
            values = [result.series[b][phase.value] for b in buckets]
            return sum(values) / len(values)

        # every phase's cost grows with application size
        for phase in Phase:
            lo = mean_phase(small, phase)
            hi = mean_phase(large, phase)
            assert hi >= lo * 0.8, (
                f"{phase.value} cost shrank with size: {lo:.2f} -> {hi:.2f}"
            )
