"""A2 — ablation: the greedy O(T^2) knapsack vs the exact exhaustive
solver inside the GAP.

The Cohen–Katzir–Raz bound says GAP quality is (1 + alpha) where alpha
is the knapsack's ratio, so a better knapsack can only help — but the
paper banks on the greedy being good enough at run-time.  We measure
mapping quality (total communication distance of the resulting
placements) and time with both oracles on small applications, where
the exhaustive solver is affordable.
"""

from __future__ import annotations

import time

from repro.apps import GeneratorConfig, generate
from repro.arch import AllocationState, mesh
from repro.baselines import communication_distance
from repro.binding import bind
from repro.core import BOTH, MappingCost, MappingOptions, map_application
from repro.core.knapsack import solve_exhaustive, solve_greedy

SEEDS = range(12)


def _run(knapsack):
    total_distance = 0.0
    mapped = 0
    started = time.perf_counter()
    for seed in SEEDS:
        app = generate(
            GeneratorConfig(inputs=1, internals=4, outputs=1,
                            utilization_low=0.3, utilization_high=0.7),
            seed=seed,
        )
        state = AllocationState(mesh(4, 4))
        try:
            binding = bind(app, state)
            result = map_application(
                app, binding.choice, state, cost=MappingCost(BOTH),
                options=MappingOptions(knapsack=knapsack),
            )
        except Exception:
            continue
        total_distance += communication_distance(app, result.placement, state)
        mapped += 1
    elapsed = time.perf_counter() - started
    return total_distance, mapped, elapsed


def bench_ablation_knapsack(benchmark):
    def run_both():
        return _run(solve_greedy), _run(solve_exhaustive)

    greedy, exact = benchmark.pedantic(run_both, iterations=1, rounds=1)
    print()
    print(f"greedy knapsack:     distance {greedy[0]:.0f} over {greedy[1]} "
          f"apps in {greedy[2]*1000:.0f} ms")
    print(f"exhaustive knapsack: distance {exact[0]:.0f} over {exact[1]} "
          f"apps in {exact[2]*1000:.0f} ms")

    assert greedy[1] == exact[1], "both oracles should map the same apps"
    if exact[0] > 0:
        # greedy quality within 25% of the exact oracle's mapping quality
        assert greedy[0] <= exact[0] * 1.25, (
            f"greedy mapping distance {greedy[0]:.0f} vs exact {exact[0]:.0f}"
        )
