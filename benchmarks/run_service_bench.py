#!/usr/bin/env python
"""Emit ``BENCH_service.json`` — the admission-service throughput bench.

Runs the continuous-time admission service (``repro.sim``) on the
canonical 12x12 mesh under the default three-class traffic mix at an
overloaded rate, once per queue policy (reject, bounded FIFO,
priority, retry-with-backoff), and reports for each:

* sustained kernel throughput (events processed per wall-clock second),
* admission-wait tail latency (p50/p95/p99 in sim-time),
* blocking probability and per-class admission ratios,

plus a record/replay determinism check: the FIFO run's decision trace
is replayed and must be bit-identical.

Usage::

    PYTHONPATH=src python benchmarks/run_service_bench.py \
        [--output BENCH_service.json] [--repeats 2] [--smoke]

``--smoke`` shrinks the run for CI (correctness + replay only; the
throughput numbers of a smoke run are not meaningful).
"""

from __future__ import annotations

import argparse
import json
import platform as platform_module
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sim import build_recipe, replay_trace, run_recipe  # noqa: E402

POLICIES = ("reject", "fifo", "priority", "retry")

#: the canonical service workload: 12x12 mesh, overloaded three-class mix
PLATFORM = "12x12"
DURATION = 120.0
SMOKE_DURATION = 15.0
RATE_SCALE = 8.0
SEED = 0
SAMPLE_INTERVAL = 5.0


def bench_policy(policy: str, duration: float, repeats: int) -> dict:
    recipe = build_recipe(
        platform=PLATFORM,
        duration=duration,
        seed=SEED,
        policy=policy,
        rate_scale=RATE_SCALE,
        sample_interval=SAMPLE_INTERVAL,
    )
    best = None
    for _ in range(repeats):
        result = run_recipe(recipe)
        if best is None or result.wall_seconds < best.wall_seconds:
            best = result
    summary = best.metrics.summary()
    return {
        "policy": policy,
        "events_processed": best.events_processed,
        "wall_seconds": best.wall_seconds,
        "events_per_second": best.events_per_second,
        "offered": summary["offered"],
        "admitted": summary["admitted"],
        "blocking_probability": summary["blocking_probability"],
        "admission_wait": summary["admission_wait"],
        "per_class_admission_ratio": {
            name: stats["admission_ratio"]
            for name, stats in summary["per_class"].items()
        },
        "mean_utilization": summary["mean_utilization"],
        "peak_queue_depth": summary["peak_queue_depth"],
    }


def replay_check(duration: float) -> dict:
    recipe = build_recipe(
        platform=PLATFORM,
        duration=duration,
        seed=SEED,
        policy="fifo",
        rate_scale=RATE_SCALE,
        sample_interval=SAMPLE_INTERVAL,
        faults=2,
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "service_trace.jsonl"
        recorded = run_recipe(recipe, trace_path=path)
        identical, differences, _ = replay_trace(path)
    return {
        "records": len(recorded.trace),
        "identical": identical,
        "first_differences": differences[:3],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_service.json")
    )
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--smoke", action="store_true",
        help="short CI run: correctness and replay only",
    )
    args = parser.parse_args()
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")

    duration = SMOKE_DURATION if args.smoke else DURATION
    repeats = 1 if args.smoke else args.repeats

    policies = [bench_policy(p, duration, repeats) for p in POLICIES]
    replay = replay_check(duration)

    report = {
        "workload": {
            "platform": f"mesh_{PLATFORM}",
            "duration": duration,
            "rate_scale": RATE_SCALE,
            "seed": SEED,
            "traffic": "default 3-class mix (interactive/batch/bursty)",
            "smoke": args.smoke,
        },
        "policies": policies,
        "replay": replay,
        "environment": {
            "python": sys.version.split()[0],
            "platform": platform_module.platform(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
    }

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {output}", file=sys.stderr)
    if not replay["identical"]:
        print("REPLAY DIVERGED — determinism regression", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
