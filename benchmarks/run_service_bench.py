#!/usr/bin/env python
"""Emit ``BENCH_service.json`` — the admission-service throughput bench.

Runs the continuous-time admission service (``repro.sim``) on the
canonical 12x12 mesh under the default three-class traffic mix at an
overloaded rate, once per queue policy (reject, bounded FIFO,
priority, retry-with-backoff), and reports for each:

* sustained kernel throughput (events processed per wall-clock second),
* admission-wait tail latency (p50/p95/p99 in sim-time),
* per-phase pipeline wall-clock latency (bind/map/route p50/p95/p99),
* blocking probability and per-class admission ratios,
* steady-state SLA figures over a warmup window (the first sixth of
  the run is the empty-platform fill transient; blocking probability
  and wait percentiles excluding it are reported alongside the raw
  whole-run numbers),
* the distance-field engine's accounting (hit/repair/miss rates,
  bypasses) for the incremental mapping path,
* an ``obs`` block: the FIFO workload re-run with the metric registry
  and span tracer fully enabled, reporting the enabled-vs-null
  throughput delta against a 3% advisory budget plus a snapshot
  excerpt (see ``docs/observability.md``),

plus a record/replay determinism check (the FIFO run's decision trace
is replayed and must be bit-identical) and, on full runs, a
``smoke_reference`` block — the per-policy ``--smoke`` events/sec on
the same machine, which is what the CI regression gate compares
against (apples to apples: smoke vs smoke).

Usage::

    PYTHONPATH=src python benchmarks/run_service_bench.py \
        [--output BENCH_service.json] [--repeats 2] [--smoke] \
        [--check-against BENCH_service.json] [--max-regression 0.30]

``--smoke`` shrinks the run for CI (correctness + replay only; the
throughput numbers of a smoke run are not meaningful as absolutes).
``--check-against`` compares this run's per-policy events/sec to a
committed report and exits 1 when any policy regresses by more than
``--max-regression`` (default 30%); smoke runs compare against the
committed ``smoke_reference`` figures.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from benchmarks.bench_env import environment_stanza  # noqa: E402
from repro.sim import build_recipe, replay_trace, run_recipe  # noqa: E402

POLICIES = ("reject", "fifo", "priority", "retry")

#: the canonical service workload: 12x12 mesh, overloaded three-class mix
PLATFORM = "12x12"
DURATION = 120.0
SMOKE_DURATION = 15.0
RATE_SCALE = 8.0
SEED = 0
SAMPLE_INTERVAL = 5.0
#: SLA warmup window as a fraction of the run (metrics only — the
#: decision stream and the replay check are independent of it)
WARMUP_FRACTION = 1.0 / 6.0


def bench_policy(policy: str, duration: float, repeats: int) -> dict:
    recipe = build_recipe(
        platform=PLATFORM,
        duration=duration,
        seed=SEED,
        policy=policy,
        rate_scale=RATE_SCALE,
        sample_interval=SAMPLE_INTERVAL,
        warmup=duration * WARMUP_FRACTION,
    )
    best = None
    for _ in range(repeats):
        result = run_recipe(recipe)
        if best is None or result.wall_seconds < best.wall_seconds:
            best = result
    summary = best.metrics.summary()
    return {
        "policy": policy,
        "events_processed": best.events_processed,
        "wall_seconds": best.wall_seconds,
        "events_per_second": best.events_per_second,
        "offered": summary["offered"],
        "admitted": summary["admitted"],
        "blocking_probability": summary["blocking_probability"],
        "admission_wait": summary["admission_wait"],
        "steady_state": summary["steady_state"],
        "phase_latency": summary["phase_latency"],
        "probes_short_circuited": summary["probes_short_circuited"],
        "fastpath": best.fastpath_stats,
        "distfield": best.distfield_stats,
        "per_class_admission_ratio": {
            name: stats["admission_ratio"]
            for name, stats in summary["per_class"].items()
        },
        "mean_utilization": summary["mean_utilization"],
        "peak_queue_depth": summary["peak_queue_depth"],
    }


def bench_observability(duration: float, repeats: int) -> dict:
    """Enabled-vs-null observability overhead on the FIFO workload.

    Runs the same recipe with the default null registry and with a live
    registry + tracer, and reports the throughput delta.  The budget is
    advisory (best-effort: wall-clock noise on shared CI machines can
    exceed it), so a breach prints a NOTE instead of failing the bench;
    the committed full-run figure is the number of record.
    """
    from repro.obs import enabled

    recipe = build_recipe(
        platform=PLATFORM,
        duration=duration,
        seed=SEED,
        policy="fifo",
        rate_scale=RATE_SCALE,
        sample_interval=SAMPLE_INTERVAL,
        warmup=duration * WARMUP_FRACTION,
    )
    null_best = None
    for _ in range(repeats):
        result = run_recipe(recipe)
        if null_best is None or result.wall_seconds < null_best.wall_seconds:
            null_best = result
    enabled_best = None
    for _ in range(repeats):
        result = run_recipe(recipe, obs=enabled())
        if (
            enabled_best is None
            or result.wall_seconds < enabled_best.wall_seconds
        ):
            enabled_best = result
    overhead = 1.0 - (
        enabled_best.events_per_second / null_best.events_per_second
        if null_best.events_per_second else 0.0
    )
    dump = enabled_best.observability.registry.snapshot()
    return {
        "null_events_per_second": null_best.events_per_second,
        "enabled_events_per_second": enabled_best.events_per_second,
        "overhead_fraction": overhead,
        "overhead_budget": 0.03,
        "spans_recorded": len(enabled_best.observability.tracer),
        "snapshot_excerpt": {
            "counters": dump["counters"],
            "histograms": {
                name: {
                    key: row[key]
                    for key in ("count", "mean", "p50", "p95", "p99")
                }
                for name, row in dump["histograms"].items()
            },
        },
    }


def replay_check(duration: float) -> dict:
    recipe = build_recipe(
        platform=PLATFORM,
        duration=duration,
        seed=SEED,
        policy="fifo",
        rate_scale=RATE_SCALE,
        sample_interval=SAMPLE_INTERVAL,
        faults=2,
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "service_trace.jsonl"
        recorded = run_recipe(recipe, trace_path=path)
        identical, differences, _ = replay_trace(path)
    return {
        "records": len(recorded.trace),
        "identical": identical,
        "first_differences": differences[:3],
    }


def check_regression(
    report: dict, committed_path: Path, max_regression: float
) -> list[str]:
    """Per-policy events/sec regression check against a committed report.

    Smoke runs compare against the committed ``smoke_reference``
    figures (same duration, same machine class); full runs compare
    against the committed full-run policy figures.  Returns the list
    of violations (empty = pass).
    """
    committed = json.loads(committed_path.read_text())
    if report["workload"]["smoke"]:
        reference = committed.get("smoke_reference")
        if reference is None:
            return [
                f"{committed_path} has no smoke_reference block; "
                "regenerate it with a full bench run"
            ]
    else:
        reference = {
            entry["policy"]: entry["events_per_second"]
            for entry in committed.get("policies", ())
        }
    violations = []
    for entry in report["policies"]:
        policy = entry["policy"]
        baseline = reference.get(policy)
        if baseline is None or baseline <= 0:
            continue
        floor = baseline * (1.0 - max_regression)
        current = entry["events_per_second"]
        if current < floor:
            violations.append(
                f"{policy}: {current:,.0f} events/s is below the "
                f"{max_regression:.0%}-regression floor {floor:,.0f} "
                f"(committed {baseline:,.0f})"
            )
    return violations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_service.json")
    )
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--smoke", action="store_true",
        help="short CI run: correctness and replay only",
    )
    parser.add_argument(
        "--check-against", metavar="PATH",
        help="committed BENCH_service.json to compare events/sec against "
             "(exit 1 on a regression beyond --max-regression)",
    )
    parser.add_argument(
        "--check-only", metavar="REPORT",
        help="skip benchmarking: load an already-written report and run "
             "only the --check-against comparison",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.30,
        help="tolerated fractional events/sec regression (default 0.30)",
    )
    args = parser.parse_args()
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")
    if not 0 <= args.max_regression < 1:
        parser.error("--max-regression must be in [0, 1)")
    if args.check_only:
        if not args.check_against:
            parser.error("--check-only requires --check-against")
        report = json.loads(Path(args.check_only).read_text())
        violations = check_regression(
            report, Path(args.check_against), args.max_regression
        )
        for line in violations:
            print(f"THROUGHPUT REGRESSION: {line}", file=sys.stderr)
        if not violations:
            print(
                f"throughput within {args.max_regression:.0%} of "
                f"{args.check_against} for every policy",
                file=sys.stderr,
            )
        return 1 if violations else 0

    duration = SMOKE_DURATION if args.smoke else DURATION
    repeats = 1 if args.smoke else args.repeats

    policies = [bench_policy(p, duration, repeats) for p in POLICIES]
    replay = replay_check(duration)
    observability = bench_observability(duration, repeats)

    report = {
        "workload": {
            "platform": f"mesh_{PLATFORM}",
            "duration": duration,
            "rate_scale": RATE_SCALE,
            "seed": SEED,
            "warmup": duration * WARMUP_FRACTION,
            "traffic": "default 3-class mix (interactive/batch/bursty)",
            "smoke": args.smoke,
        },
        "policies": policies,
        "replay": replay,
        "obs": observability,
        "environment": environment_stanza(),
    }
    if not args.smoke:
        # record the same machine's smoke-length throughput so the CI
        # smoke gate has an apples-to-apples baseline
        report["smoke_reference"] = {
            entry["policy"]: entry["events_per_second"]
            for entry in (
                bench_policy(p, SMOKE_DURATION, 1) for p in POLICIES
            )
        }

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {output}", file=sys.stderr)
    status = 0
    if not replay["identical"]:
        print("REPLAY DIVERGED — determinism regression", file=sys.stderr)
        status = 1
    if observability["overhead_fraction"] > observability["overhead_budget"]:
        # best-effort gate: wall-clock noise on shared machines can
        # exceed the budget, so report loudly without failing
        print(
            "NOTE: observability overhead "
            f"{observability['overhead_fraction']:.1%} exceeds the "
            f"{observability['overhead_budget']:.0%} budget "
            "(advisory only; re-run on a quiet machine)",
            file=sys.stderr,
        )
    if args.check_against:
        violations = check_regression(
            report, Path(args.check_against), args.max_regression
        )
        for line in violations:
            print(f"THROUGHPUT REGRESSION: {line}", file=sys.stderr)
        if violations:
            status = 1
        else:
            print(
                f"throughput within {args.max_regression:.0%} of "
                f"{args.check_against} for every policy",
                file=sys.stderr,
            )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
