#!/usr/bin/env python
"""Emit ``BENCH_cluster.json`` — the sharded-admission cluster bench.

Two experiments on the 48x48 mesh (2304 elements — the scale regime
sharding is for):

* **Throughput vs shard count** — the continuous-time admission
  service under the overloaded three-class mix, FIFO policy, run
  unsharded and as a 2- and 4-shard cluster.  Per-admission costs that
  scale with platform size (anchor scans, distance-field recomputes,
  long-path routing) shrink with the region each shard owns, so
  kernel events/sec rises with the shard count; the report carries
  the 4-shard-over-1-shard speedup explicitly (the acceptance floor
  is 3x).
* **Availability under a shard-kill campaign** — the 4-shard cluster
  with evenly-spaced kill/revive events: time-averaged shard
  availability, applications lost vs lost-then-recovered through the
  requeue, and the drain invariants (the driver asserts zero
  post-drain utilization and an empty cluster-integrity violation
  list — i.e. no 2PC round leaked a partial allocation).

plus a record/replay determinism check on the kill-campaign trace
(shard_kill / shard_state / recovery events replay bit-identically)
and, on full runs, a ``smoke_reference`` block the CI smoke gate
compares against (apples to apples: smoke vs smoke).

Usage::

    PYTHONPATH=src python benchmarks/run_cluster_bench.py \
        [--output BENCH_cluster.json] [--smoke] \
        [--check-against BENCH_cluster.json] [--max-regression 0.30]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from benchmarks.bench_env import environment_stanza  # noqa: E402
from repro.cluster import (  # noqa: E402
    build_cluster_recipe,
    replay_cluster_trace,
    run_cluster_recipe,
)

PLATFORM = "48x48"
SHARD_COUNTS = (1, 2, 4)
DURATION = 30.0
SMOKE_DURATION = 10.0
#: heavy enough that per-admission pipeline cost dominates the wall
#: clock (a lightly loaded mesh measures event dispatch, not sharding)
RATE_SCALE = 32.0
SEED = 0
SAMPLE_INTERVAL = 5.0
POLICY = "fifo"

#: kill campaign (full / smoke): kills spread over the run, each
#: revived after a downtime long enough to cross the dead_after
#: deadline, so every kill exercises demote -> recover -> probation
KILLS = {"full": (2, 8.0), "smoke": (1, 4.0)}


def throughput_recipe(shards: int, duration: float) -> dict:
    return build_cluster_recipe(
        platform=PLATFORM,
        shards=shards,
        duration=duration,
        seed=SEED,
        policy=POLICY,
        rate_scale=RATE_SCALE,
        sample_interval=SAMPLE_INTERVAL,
    )


def bench_throughput(duration: float) -> list[dict]:
    entries = []
    for shards in SHARD_COUNTS:
        result = run_cluster_recipe(throughput_recipe(shards, duration))
        summary = result.metrics.summary()
        entries.append({
            "shards": shards,
            "events_processed": result.events_processed,
            "events_per_second": result.events_per_second,
            "wall_seconds": result.wall_seconds,
            "admitted": summary["admitted"],
            "blocking_probability": summary["blocking_probability"],
            "mean_utilization": summary["mean_utilization"],
        })
    return entries


def bench_availability(duration: float, smoke: bool) -> dict:
    kills, downtime = KILLS["smoke" if smoke else "full"]
    recipe = build_cluster_recipe(
        platform=PLATFORM,
        shards=4,
        duration=duration,
        seed=SEED,
        policy=POLICY,
        rate_scale=RATE_SCALE,
        sample_interval=SAMPLE_INTERVAL,
        kills=kills,
        downtime=downtime,
    )
    result = run_cluster_recipe(recipe)
    summary = result.metrics.summary()
    res = summary["resilience"]
    return {
        "shards": 4,
        "kills": kills,
        "downtime": downtime,
        "availability": res["availability"],
        "lost": summary["faults"]["lost"],
        "lost_recovered": res["lost_recovered"],
        "recovery_retries": res["recovery_retries"],
        "recovered_immediately": summary["faults"]["recovered"],
        "blocking_probability": summary["blocking_probability"],
        # the driver asserts these; reaching this line means they held
        "drained_clean": True,
        "integrity_violations": 0,
    }


def replay_check(duration: float, smoke: bool) -> dict:
    kills, downtime = KILLS["smoke" if smoke else "full"]
    recipe = build_cluster_recipe(
        platform=PLATFORM,
        shards=4,
        duration=duration,
        seed=SEED,
        policy=POLICY,
        rate_scale=RATE_SCALE,
        sample_interval=SAMPLE_INTERVAL,
        kills=kills,
        downtime=downtime,
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "cluster_trace.jsonl"
        recorded = run_cluster_recipe(recipe, trace_path=path)
        identical, differences, _ = replay_cluster_trace(path)
    return {
        "records": len(recorded.trace),
        "identical": identical,
        "first_differences": differences[:3],
    }


def speedup(entries: list[dict]) -> float:
    by_shards = {entry["shards"]: entry["events_per_second"]
                 for entry in entries}
    base = by_shards.get(1, 0.0)
    return by_shards.get(4, 0.0) / base if base else 0.0


def check_regression(
    report: dict, committed_path: Path, max_regression: float
) -> list[str]:
    """Per-shard-count events/sec check (empty list = pass)."""
    committed = json.loads(committed_path.read_text())
    if report["workload"]["smoke"]:
        reference = committed.get("smoke_reference")
        if reference is None:
            return [
                f"{committed_path} has no smoke_reference block; "
                "regenerate it with a full bench run"
            ]
    else:
        reference = {
            str(entry["shards"]): entry["events_per_second"]
            for entry in committed.get("throughput", ())
        }
    violations = []
    for entry in report["throughput"]:
        shards = str(entry["shards"])
        baseline = reference.get(shards)
        if baseline is None or baseline <= 0:
            continue
        floor = baseline * (1.0 - max_regression)
        current = entry["events_per_second"]
        if current < floor:
            violations.append(
                f"{shards} shard(s): {current:,.0f} events/s is below "
                f"the {max_regression:.0%}-regression floor "
                f"{floor:,.0f} (committed {baseline:,.0f})"
            )
    return violations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_cluster.json")
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="short CI run: correctness, availability and replay only",
    )
    parser.add_argument(
        "--check-against", metavar="PATH",
        help="committed BENCH_cluster.json to compare events/sec "
             "against (exit 1 on a regression beyond --max-regression)",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.30,
        help="tolerated fractional events/sec regression (default 0.30)",
    )
    args = parser.parse_args()
    if not 0 <= args.max_regression < 1:
        parser.error("--max-regression must be in [0, 1)")

    duration = SMOKE_DURATION if args.smoke else DURATION
    throughput = bench_throughput(duration)
    availability = bench_availability(duration, args.smoke)
    replay = replay_check(duration, args.smoke)

    report = {
        "workload": {
            "platform": f"mesh_{PLATFORM}",
            "shard_counts": list(SHARD_COUNTS),
            "duration": duration,
            "rate_scale": RATE_SCALE,
            "seed": SEED,
            "policy": POLICY,
            "traffic": "default 3-class mix (interactive/batch/bursty)",
            "smoke": args.smoke,
        },
        "throughput": throughput,
        "speedup_4_shards_over_1": speedup(throughput),
        "availability": availability,
        "replay": replay,
        "environment": environment_stanza(),
    }
    if not args.smoke:
        report["smoke_reference"] = {
            str(entry["shards"]): entry["events_per_second"]
            for entry in bench_throughput(SMOKE_DURATION)
        }

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {output}", file=sys.stderr)
    status = 0
    if not replay["identical"]:
        print("REPLAY DIVERGED — determinism regression", file=sys.stderr)
        status = 1
    if not args.smoke and report["speedup_4_shards_over_1"] < 3.0:
        print(
            f"SPEEDUP BELOW FLOOR: 4-shard speedup "
            f"{report['speedup_4_shards_over_1']:.2f}x < 3x",
            file=sys.stderr,
        )
        status = 1
    if args.check_against:
        violations = check_regression(
            report, Path(args.check_against), args.max_regression
        )
        for line in violations:
            print(f"THROUGHPUT REGRESSION: {line}", file=sys.stderr)
        if violations:
            status = 1
        else:
            print(
                f"throughput within {args.max_regression:.0%} of "
                f"{args.check_against} for every shard count",
                file=sys.stderr,
            )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
