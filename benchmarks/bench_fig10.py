"""E5 — regenerate Fig. 10: beamforming admission over the weight grid.

The paper samples every point in [0,1,..,25] x [0,10,..,1000]; the
default benchmark subsamples (REPRO_FIG10_COMM_STEP=1 and
REPRO_FIG10_FRAG_STEP=10 restore full resolution).

Checked claims:

* the "None" point (0, 0) never admits the beamformer,
* the pure-fragmentation column (communication weight 0) never admits
  — "disabling [the communication] objective never gives a successful
  result",
* admission exists somewhere on the grid (the paper's admitted band),
* sufficiently fragmentation-dominated mixes reject again (the band is
  bounded from above).

Known deviation, documented in EXPERIMENTS.md: our reconstruction also
admits on the pure-communication row (fragmentation weight 0), where
the paper reports rejection.
"""

from __future__ import annotations

from repro.experiments import format_fig10, run_fig10


def bench_fig10(benchmark, platform):
    result = benchmark.pedantic(
        run_fig10, kwargs={"platform": platform}, iterations=1, rounds=1,
    )
    print()
    print(format_fig10(result))

    assert not result.admitted[(0, 0)], "the None configuration admitted"
    assert not result.column_admits(0), (
        "pure fragmentation (comm weight 0) must never admit"
    )
    assert result.admitted_count() > 0, "no grid point admitted at all"

    # the admission region is bounded: the most fragmentation-heavy,
    # least communication-weighted corner rejects
    top_frag = max(result.frag_weights)
    low_comms = [c for c in result.comm_weights if c > 0][:1]
    for comm in low_comms:
        assert not result.admitted.get((comm, top_frag), False), (
            f"({comm}, {top_frag}) admitted: band not bounded above"
        )
