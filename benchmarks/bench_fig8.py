"""E3 — regenerate Fig. 8: hops allocated per channel vs sequence
position, per mapping objective, with the success-rate overlay.

Checks the qualitative shapes: success rate decays along the
sequence, and the fragmentation-only objective allocates at least as
many hops per channel as the communication-only objective ("aiming at
fragmentation reduction increases the average communication
distance").
"""

from __future__ import annotations

from repro.experiments import format_fig8, run_fig89


def bench_fig8(benchmark, scale, platform):
    result = benchmark.pedantic(
        run_fig89,
        kwargs={"scale": scale, "seed": 0, "platform": platform},
        iterations=1, rounds=1,
    )
    print()
    print(format_fig8(result))

    for name, series in result.series.items():
        rates = series.success_rate()
        early = sum(rates[:3]) / 3
        late = sum(rates[-3:]) / 3
        assert late <= early, (
            f"{name}: success rate should decay along the sequence "
            f"({early:.0f}% -> {late:.0f}%)"
        )

    def mean_hops(series):
        values = [h for h in series.hops() if h is not None]
        return sum(values) / len(values) if values else 0.0

    frag_hops = mean_hops(result.objective("Fragmentation"))
    comm_hops = mean_hops(result.objective("Communication"))
    assert frag_hops >= comm_hops * 0.95, (
        f"fragmentation objective should cost hops: "
        f"frag={frag_hops:.2f} vs comm={comm_hops:.2f}"
    )
