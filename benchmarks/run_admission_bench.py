#!/usr/bin/env python
"""Emit ``BENCH_admission.json`` — the admission-churn perf trajectory.

Runs the canonical 12x12-mesh churn workload (fill to ~80% utilization,
then sustained release/admit churn) against:

* the live pipeline via the ``repro.api`` façade's ``admit()`` hot
  path (the route everything runs on since PR 5; transaction-journal
  rollback, the default),
* the same pipeline via the pre-façade direct ``Kairos`` call
  convention — the baseline the façade's hot-path overhead is gated
  against,
* the façade's plan→commit two-phase protocol (every attempt plans,
  unwinds, then commits by mutation replay — the what-if route and
  the ``Kairos.allocate`` deprecation-shim route; its extra journal
  unwind + replay cost per admission is *reported*, not gated),
* the live pipeline with the legacy full-snapshot rollback strategy,
* the frozen seed reference (``benchmarks/seed_reference``) — the
  repository's original snapshot/restore implementation,

plus two rollback-scaling micro-benchmarks (4x4 vs 16x16 mesh):

* transaction rollback of a fixed-size failed attempt (must be flat in
  platform size), and
* a full snapshot+restore cycle (grows with platform size) for contrast.

Usage::

    PYTHONPATH=src python benchmarks/run_admission_bench.py \
        [--output BENCH_admission.json] [--repeats 3] \
        [--max-facade-overhead 0.03]

``--max-facade-overhead`` turns the façade measurement into a gate:
exit non-zero when the façade ``admit()`` route costs more than the
given fraction over the direct call convention (CI uses 3%; the runs
are interleaved so the ratio is robust against drift).  The output is
machine-readable so successive PRs can track the numbers.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.arch import AllocationState, mesh  # noqa: E402
from repro.experiments import (  # noqa: E402
    CHURN_BENCH_CONFIG,
    CHURN_BENCH_POOL_SIZE,
    ROLLBACK_BENCH_OCCUPIES,
    ROLLBACK_BENCH_ROUTES,
    churn_pool,
    measure_mesh_rollback_seconds,
    run_admission_churn,
)

from benchmarks.bench_env import environment_stanza  # noqa: E402
from benchmarks.seed_reference.kairos import run_seed_churn  # noqa: E402


def best_of(repeats, run):
    best = float("inf")
    result = None
    for _ in range(repeats):
        value, outcome = run()
        if value < best:
            best, result = value, outcome
    return best, result


def measure_snapshot_restore(rows: int, repeats: int = 400) -> float:
    """Seconds for one full snapshot() + restore() cycle (contrast)."""
    platform = mesh(rows, rows)
    state = AllocationState(platform)
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        snapshot = state.snapshot()
        state.restore(snapshot)
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_admission.json")
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--max-facade-overhead", type=float, default=None, metavar="FRAC",
        help="fail (exit 1) when the façade admit() route costs more "
             "than FRAC over the direct call convention "
             "(e.g. 0.03 for 3%%)",
    )
    args = parser.parse_args()
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")

    pool = churn_pool(count=CHURN_BENCH_POOL_SIZE, seed=0)
    # the overhead ratios need a longer run than the trajectory point:
    # a 150-step churn finishes in ~0.25 s, whose run-to-run noise
    # (±4%) would drown a 3% gate — 4x the steps puts the noise floor
    # safely below it while the trajectory numbers stay comparable to
    # every previous PR's
    overhead_config = dataclasses.replace(CHURN_BENCH_CONFIG, steps=600)

    def churn(path, config=CHURN_BENCH_CONFIG):
        def run():
            result = run_admission_churn(
                pool, mesh(12, 12), config,
                rollback="transaction", path=path,
            )
            return result.elapsed_seconds, result

        return run

    live_transaction = churn("admit")
    over_direct = churn("direct", overhead_config)
    over_admit = churn("admit", overhead_config)
    over_plan_commit = churn("plan_commit", overhead_config)

    def live_snapshot():
        result = run_admission_churn(
            pool, mesh(12, 12), CHURN_BENCH_CONFIG, rollback="snapshot"
        )
        return result.elapsed_seconds, result

    def seed():
        result = run_seed_churn(pool, mesh(12, 12), CHURN_BENCH_CONFIG)
        return result.elapsed_seconds, result

    tx_seconds, tx_result = best_of(args.repeats, live_transaction)
    snap_seconds, snap_result = best_of(args.repeats, live_snapshot)
    seed_seconds, seed_result = best_of(args.repeats, seed)

    # the three façade-route variants are interleaved (one repeat of
    # each per round) so their ratios see the same thermal/turbo drift
    direct_seconds = admit_seconds = pc_seconds = float("inf")
    direct_result = admit_result = pc_result = None
    for _ in range(args.repeats):
        value, outcome = over_direct()
        if value < direct_seconds:
            direct_seconds, direct_result = value, outcome
        value, outcome = over_admit()
        if value < admit_seconds:
            admit_seconds, admit_result = value, outcome
        value, outcome = over_plan_commit()
        if value < pc_seconds:
            pc_seconds, pc_result = value, outcome
    facade_overhead = admit_seconds / direct_seconds - 1.0
    plan_commit_overhead = pc_seconds / direct_seconds - 1.0

    rollback_4 = measure_mesh_rollback_seconds(4, repeats=400)
    rollback_16 = measure_mesh_rollback_seconds(16, repeats=400)
    snapshot_4 = measure_snapshot_restore(4)
    snapshot_16 = measure_snapshot_restore(16)

    report = {
        "workload": {
            "platform": "mesh_12x12",
            "pool_size": CHURN_BENCH_POOL_SIZE,
            "steps": CHURN_BENCH_CONFIG.steps,
            "target_utilization": CHURN_BENCH_CONFIG.target_utilization,
            "seed": CHURN_BENCH_CONFIG.seed,
            "attempts": tx_result.attempts,
            "admitted": tx_result.admitted,
            "rejected": tx_result.rejected,
        },
        "churn_seconds": {
            "live_transaction": tx_seconds,
            "live_snapshot": snap_seconds,
            "seed_reference": seed_seconds,
        },
        "speedup_vs_seed": {
            "live_transaction": seed_seconds / tx_seconds,
            "live_snapshot": seed_seconds / snap_seconds,
        },
        "facade": {
            # measured on a 4x-longer churn (steps below) with the
            # three routes interleaved, so the ratios are noise-robust
            "overhead_steps": overhead_config.steps,
            "churn_seconds": {
                "direct_call": direct_seconds,
                "facade_admit": admit_seconds,
                "facade_plan_commit": pc_seconds,
            },
            # admit() (Decision objects, no exceptions) vs the
            # pre-façade direct call convention — the gated number
            "admit_overhead_vs_direct": facade_overhead,
            # the two-phase protocol's full price: one extra journal
            # unwind (plan) + mutation replay (commit) per admission;
            # reported honestly, amortized away by plan_batch
            "plan_commit_overhead_vs_direct": plan_commit_overhead,
        },
        "layouts_identical": {
            "transaction_vs_snapshot": tx_result.layouts == snap_result.layouts,
            "transaction_vs_seed": tx_result.layouts == seed_result.layouts,
            "facade_admit_vs_direct": (
                admit_result.layouts == direct_result.layouts
            ),
            "plan_commit_vs_direct": (
                pc_result.layouts == direct_result.layouts
            ),
        },
        "rollback_scaling": {
            "occupies": ROLLBACK_BENCH_OCCUPIES,
            "routes": ROLLBACK_BENCH_ROUTES,
            "transaction_rollback_seconds": {
                "mesh_4x4": rollback_4,
                "mesh_16x16": rollback_16,
                "ratio_16x16_over_4x4": rollback_16 / rollback_4,
            },
            "snapshot_restore_seconds": {
                "mesh_4x4": snapshot_4,
                "mesh_16x16": snapshot_16,
                "ratio_16x16_over_4x4": snapshot_16 / snapshot_4,
            },
        },
        "environment": environment_stanza(),
    }

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {output}", file=sys.stderr)

    if not (
        admit_result.layouts == direct_result.layouts == pc_result.layouts
    ):
        print("FAIL: façade-route layouts diverge from the direct call",
              file=sys.stderr)
        return 1
    print(
        f"façade admit() overhead vs direct call: {facade_overhead:.2%}; "
        f"plan+commit protocol: {plan_commit_overhead:.2%}",
        file=sys.stderr,
    )
    if (
        args.max_facade_overhead is not None
        and facade_overhead > args.max_facade_overhead
    ):
        print(
            f"FAIL: façade admit() overhead {facade_overhead:.1%} exceeds "
            f"the {args.max_facade_overhead:.1%} gate "
            f"({admit_seconds:.3f}s admit vs {direct_seconds:.3f}s direct)",
            file=sys.stderr,
        )
        return 1
    if args.max_facade_overhead is not None:
        print(f"gate {args.max_facade_overhead:.0%}: OK", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
