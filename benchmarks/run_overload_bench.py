#!/usr/bin/env python
"""Emit ``BENCH_overload.json`` — graceful degradation under overload.

Runs the continuous-time admission service (``repro.sim``) on the
canonical 12x12 mesh under the three-class mix at 1x/2x/4x offered
load, each load both *unshielded* (no overload control) and *shielded*
(deadline budgets + watermark load-shedding + retry token budget), and
reports for each:

* accepted-work goodput (admissions per sim-time unit) and completed
  departures,
* the shed breakdown (watermark sheds, deadline expiries, retry-budget
  denials) and the shed rate against offered load,
* admission-wait percentiles of the *accepted* requests — the whole
  point of shedding early is that the work you do accept waits less,
* per-class admission ratios (the watermark protects the interactive
  class) and kernel throughput.

At the top load a third *brownout* mode adds the full config including
the brownout controller.  Its numbers are reported but not gated:
brownout trades placement quality for stability, and on this packing
workload the first-fit degradation costs goodput — an honest trade
the report shows rather than hides.

The acceptance gate (``--check-against``) asserts that at 4x load the
shielded run keeps goodput at least at the unshielded level while its
accepted-request p99 admission wait is measurably lower, plus the
usual events/sec regression floor.  A record/replay determinism check
runs the harshest configuration (4x load, full overload config) and
must be bit-identical.

Usage::

    PYTHONPATH=src python benchmarks/run_overload_bench.py \
        [--output BENCH_overload.json] [--smoke] \
        [--check-against BENCH_overload.json] [--max-regression 0.30]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from benchmarks.bench_env import environment_stanza  # noqa: E402
from repro.overload import OverloadConfig  # noqa: E402
from repro.sim import build_recipe, replay_trace, run_recipe  # noqa: E402

#: the canonical service workload, matching the other sim benches
PLATFORM = "12x12"
DURATION = 120.0
SMOKE_DURATION = 20.0
SEED = 0
SAMPLE_INTERVAL = 5.0
POLICY = "fifo"

#: 1x is the near-capacity baseline; 4x is a flash crowd
BASE_RATE = 2.0
LOADS = (1, 2, 4)


def shielded_config() -> OverloadConfig:
    """The gated shield: deadline + watermark + retry budget.

    Brownout is deliberately excluded here — see the module docstring
    and the separate ``brownout`` mode at top load.
    """
    return dataclasses.replace(OverloadConfig.defaults(), brownout=None)


def load_recipe(load: int, overload: OverloadConfig | None,
                duration: float) -> dict:
    # the flash_crowd traffic shape is this bench's original ad-hoc
    # rate scaling lifted into repro.sim.traffic: surge multiplies
    # every class rate, so the decision stream is bit-identical to the
    # old rate_scale=BASE_RATE*load recipes
    return build_recipe(
        platform=PLATFORM,
        duration=duration,
        seed=SEED,
        policy=POLICY,
        rate_scale=BASE_RATE,
        traffic="flash_crowd",
        traffic_params={"surge": float(load)},
        sample_interval=SAMPLE_INTERVAL,
        overload=overload,
    )


def run_mode(load: int, overload: OverloadConfig | None,
             duration: float) -> dict:
    result = run_recipe(load_recipe(load, overload, duration))
    summary = result.metrics.summary()
    ov = summary["overload"]
    shed = (ov["shed_watermark"] + ov["deadline_expired"]
            + ov["retry_budget_exhausted"])
    offered = summary["offered"]
    return {
        "offered": offered,
        "admitted": summary["admitted"],
        "departed": summary["departed"],
        "goodput": summary["admitted"] / duration,
        "blocking_probability": summary["blocking_probability"],
        "shed": {
            "total": shed,
            "rate": shed / offered if offered else 0.0,
            "watermark": ov["shed_watermark"],
            "deadline_expired": ov["deadline_expired"],
            "retry_budget": ov["retry_budget_exhausted"],
        },
        "admission_wait": summary["admission_wait"],
        "mean_utilization": summary["mean_utilization"],
        "max_brownout_level": ov["max_brownout_level"],
        "per_class_admission": {
            name: stats["admission_ratio"]
            for name, stats in summary["per_class"].items()
        },
        "events_processed": result.events_processed,
        "events_per_second": result.events_per_second,
    }


def bench_load(load: int, duration: float) -> dict:
    entry = {
        "load": load,
        "rate_scale": BASE_RATE * load,
        "unshielded": run_mode(load, None, duration),
        "shielded": run_mode(load, shielded_config(), duration),
    }
    if load == LOADS[-1]:
        entry["brownout"] = run_mode(
            load, OverloadConfig.defaults(), duration
        )
    return entry


def replay_check(duration: float) -> dict:
    """Record/replay the harshest run: 4x load, full overload config."""
    recipe = load_recipe(LOADS[-1], OverloadConfig.defaults(), duration)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "overload_trace.jsonl"
        recorded = run_recipe(recipe, trace_path=path)
        identical, differences, _ = replay_trace(path)
    return {
        "load": LOADS[-1],
        "records": len(recorded.trace),
        "identical": identical,
        "first_differences": differences[:3],
    }


def check_shielding(report: dict) -> list[str]:
    """The graceful-degradation assertion at top load (empty = pass).

    Short smoke runs admit a few hundred requests, so the goodput
    comparison gets a small tolerance there; full runs must hold the
    line exactly.
    """
    entry = next(
        e for e in report["loads"] if e["load"] == LOADS[-1]
    )
    slack = 0.95 if report["workload"]["smoke"] else 1.0
    violations = []
    shielded = entry["shielded"]
    unshielded = entry["unshielded"]
    if shielded["goodput"] < unshielded["goodput"] * slack:
        violations.append(
            f"{LOADS[-1]}x load: shielded goodput "
            f"{shielded['goodput']:.2f} fell below unshielded "
            f"{unshielded['goodput']:.2f} (slack {slack:g})"
        )
    p99_shielded = shielded["admission_wait"]["p99"]
    p99_unshielded = unshielded["admission_wait"]["p99"]
    if (p99_shielded is not None and p99_unshielded is not None
            and p99_shielded >= p99_unshielded):
        violations.append(
            f"{LOADS[-1]}x load: shielded p99 admission wait "
            f"{p99_shielded:.3f} did not drop below unshielded "
            f"{p99_unshielded:.3f}"
        )
    return violations


def check_regression(
    report: dict, committed_path: Path, max_regression: float
) -> list[str]:
    """Per-load shielded-mode events/sec check (empty = pass)."""
    committed = json.loads(committed_path.read_text())
    if report["workload"]["smoke"]:
        reference = committed.get("smoke_reference")
        if reference is None:
            return [
                f"{committed_path} has no smoke_reference block; "
                "regenerate it with a full bench run"
            ]
    else:
        reference = {
            str(entry["load"]): entry["shielded"]["events_per_second"]
            for entry in committed.get("loads", ())
        }
    violations = []
    for entry in report["loads"]:
        baseline = reference.get(str(entry["load"]))
        if baseline is None or baseline <= 0:
            continue
        floor = baseline * (1.0 - max_regression)
        current = entry["shielded"]["events_per_second"]
        if current < floor:
            violations.append(
                f"{entry['load']}x load: {current:,.0f} events/s is "
                f"below the {max_regression:.0%}-regression floor "
                f"{floor:,.0f} (committed {baseline:,.0f})"
            )
    return violations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_overload.json")
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="short CI run: correctness, replay and the shielding "
             "assertion only",
    )
    parser.add_argument(
        "--check-against", metavar="PATH",
        help="committed BENCH_overload.json to compare events/sec "
             "against (exit 1 on a regression beyond --max-regression)",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.30,
        help="tolerated fractional events/sec regression (default 0.30)",
    )
    args = parser.parse_args()
    if not 0 <= args.max_regression < 1:
        parser.error("--max-regression must be in [0, 1)")

    duration = SMOKE_DURATION if args.smoke else DURATION
    loads = [bench_load(load, duration) for load in LOADS]
    replay = replay_check(duration)

    report = {
        "workload": {
            "platform": f"mesh_{PLATFORM}",
            "duration": duration,
            "base_rate_scale": BASE_RATE,
            "loads": list(LOADS),
            "seed": SEED,
            "policy": POLICY,
            "traffic": "default 3-class mix (interactive/batch/bursty)",
            "shield": shielded_config().describe(),
            "smoke": args.smoke,
        },
        "loads": loads,
        "replay": replay,
        "environment": environment_stanza(),
    }
    if not args.smoke:
        report["smoke_reference"] = {
            str(entry["load"]): entry["shielded"]["events_per_second"]
            for entry in (
                bench_load(load, SMOKE_DURATION) for load in LOADS
            )
        }

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {output}", file=sys.stderr)
    status = 0
    if not replay["identical"]:
        print("REPLAY DIVERGED — determinism regression", file=sys.stderr)
        status = 1
    shield_violations = check_shielding(report)
    for line in shield_violations:
        print(f"SHIELDING REGRESSION: {line}", file=sys.stderr)
    if shield_violations:
        status = 1
    else:
        print(
            f"shielding holds at {LOADS[-1]}x load: goodput kept, "
            "p99 admission wait reduced",
            file=sys.stderr,
        )
    if args.check_against:
        violations = check_regression(
            report, Path(args.check_against), args.max_regression
        )
        for line in violations:
            print(f"THROUGHPUT REGRESSION: {line}", file=sys.stderr)
        if violations:
            status = 1
        else:
            print(
                f"throughput within {args.max_regression:.0%} of "
                f"{args.check_against} for every load",
                file=sys.stderr,
            )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
