"""E4 — regenerate Fig. 9: external resource fragmentation vs sequence
position, per mapping objective, with the success-rate overlay.

Checks the qualitative shapes: fragmentation rises from zero as the
platform fills, and the fragmentation-aware objectives keep the
plateau at or below the fragmentation-blind ones.
"""

from __future__ import annotations

from repro.experiments import format_fig9, run_fig89


def bench_fig9(benchmark, scale, platform):
    result = benchmark.pedantic(
        run_fig89,
        kwargs={"scale": scale, "seed": 0, "platform": platform},
        iterations=1, rounds=1,
    )
    print()
    print(format_fig9(result))

    for name, series in result.series.items():
        frag = series.fragmentation()
        assert frag[0] >= 0.0
        peak = max(frag)
        assert peak > 0.0, f"{name}: fragmentation never moved"
        assert peak <= 100.0

    # fragmentation-aware mapping should not end *more* fragmented than
    # the blind objectives (paper: the Fragmentation/Both curves sit
    # below None/Communication)
    aware = min(
        result.objective("Fragmentation").final_fragmentation(),
        result.objective("Both").final_fragmentation(),
    )
    blind = max(
        result.objective("None").final_fragmentation(),
        result.objective("Communication").final_fragmentation(),
    )
    assert aware <= blind * 1.25, (
        f"fragmentation-aware objectives ended at {aware:.1f}% vs "
        f"blind {blind:.1f}%"
    )
