#!/usr/bin/env python
"""Emit ``BENCH_scenarios.json`` + ``BENCH_scenarios.md`` — the matrix sweep.

Runs the scenario matrices from :mod:`repro.scenarios` and commits the
cross-condition evidence the perf roadmap steers by:

* ``default`` — 4 topologies (mesh/torus/hetmesh 12x12, fat_tree:144)
  x 4 traffic shapes (default, hot_spot, diurnal_mmpp, flash_crowd)
  x 4 mappers (kairos, first_fit, random, annealing),
* ``storm`` — correlated fault storms across the mapper axis,
* ``large`` — 48x48 and 64x64 meshes with the incremental
  distance-field toggle swept (PR 4's open question: hit/repair rates
  at scale — the measured conclusion lives in docs/performance.md),
* ``cluster`` — 1/2/4 shards across traffic shapes.

Every matrix is also swept a second time through a 2-process pool and
the canonical (timing-stripped) payloads must be byte-identical —
the parallel==serial determinism assertion, run on every invocation.

``--smoke`` replaces the grid with the tiny smoke matrix (the same
gate as ``repro sweep --smoke``), keeping the CI lane in seconds.

Usage::

    PYTHONPATH=src python benchmarks/run_scenarios_bench.py \
        [--output BENCH_scenarios.json] [--report BENCH_scenarios.md] \
        [--smoke] [--jobs N]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from benchmarks.bench_env import environment_stanza  # noqa: E402
from repro.scenarios import (  # noqa: E402
    canonical_payload,
    cluster_matrix,
    default_matrix,
    large_matrix,
    render_reports,
    run_sweep,
    smoke_matrix,
    storm_matrix,
)

SEED = 0


def sweep_and_verify(matrix, jobs: int) -> tuple[dict, bool]:
    """Run serial + pooled; -> (serial report, payloads identical?)."""
    serial = run_sweep(matrix, jobs=1, progress=_say)
    pooled = run_sweep(matrix, jobs=max(2, jobs), progress=_say)
    return serial, canonical_payload(serial) == canonical_payload(pooled)


def _say(message: str) -> None:
    print(message, file=sys.stderr)


def coverage_stanza(reports: list[dict]) -> dict:
    """What the sweep actually covered (the acceptance surface)."""
    topologies, shapes, mappers = set(), set(), set()
    cells = 0
    for report in reports:
        for cell in report["cells"]:
            axes = cell["axes"]
            topologies.add(axes["topology"])
            shapes.add(axes["traffic"])
            mappers.add(axes["mapper"])
            cells += 1
    return {
        "cells": cells,
        "topologies": sorted(topologies),
        "traffic_shapes": sorted(shapes),
        "mappers": sorted(mappers),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_scenarios.json")
    )
    parser.add_argument(
        "--report", default=str(REPO_ROOT / "BENCH_scenarios.md")
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny smoke matrix only (the CI gate)",
    )
    parser.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="pool size for the parallel verification pass (default 2)",
    )
    args = parser.parse_args()

    if args.smoke:
        matrices = [smoke_matrix(seed=SEED)]
        title = "Scenario sweep (smoke)"
    else:
        matrices = [
            default_matrix(seed=SEED),
            storm_matrix(seed=SEED),
            large_matrix(seed=SEED),
            cluster_matrix(seed=SEED),
        ]
        title = "Scenario sweep"

    reports, verified = [], True
    for matrix in matrices:
        report, identical = sweep_and_verify(matrix, args.jobs)
        if not identical:
            print(f"SWEEP DIVERGED: matrix {matrix.name!r} pooled run "
                  "differs from serial", file=sys.stderr)
            verified = False
        reports.append(report)

    bundle = {
        "workload": {
            "matrices": [matrix.name for matrix in matrices],
            "seed": SEED,
            "smoke": args.smoke,
            "parallel_verified": verified,
        },
        "coverage": coverage_stanza(reports),
        "sweeps": reports,
        "environment": environment_stanza(),
    }
    output = Path(args.output)
    output.write_text(json.dumps(bundle, indent=2, sort_keys=True) + "\n")
    document = render_reports(reports, title)
    Path(args.report).write_text(document + "\n")
    print(json.dumps(
        {key: bundle[key] for key in ("workload", "coverage")}, indent=2
    ))
    print(f"\nwritten to {output} and {args.report}", file=sys.stderr)
    if not verified:
        print("determinism regression: parallel != serial",
              file=sys.stderr)
        return 1
    print("parallel == serial for every matrix", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
