"""A4 — ablation: the extra BFS search ring of Section III-B.

"Once we have discovered enough elements in the platform to map the
tasks in Ti, a single additional search step is performed" so that
secondary objectives (fragmentation) have alternatives to choose from.
We compare extra_rings = 0 vs 1 (the paper's choice) vs 2 on the
communication datasets: the extra ring should not hurt admissions, and
it should give the fragmentation objective more room (equal or lower
final fragmentation).
"""

from __future__ import annotations

import random

from repro.apps.datasets import DatasetSpec
from repro.core import BOTH
from repro.experiments import prepare_dataset
from repro.manager import Kairos
from repro.core.mapping import MappingOptions


def _run(extra_rings, prepared, platform, sequences):
    admitted = 0
    final_fragmentation = []
    for index in range(sequences):
        manager = Kairos(
            platform, weights=BOTH, validation_mode="skip",
            mapping_options=MappingOptions(extra_rings=extra_rings),
        )
        rng = random.Random(index)
        order = list(prepared.applications)
        rng.shuffle(order)
        controller = manager.controller
        for position, app in enumerate(order):
            if controller.admit(app, f"p{position}").admitted:
                admitted += 1
        final_fragmentation.append(manager.external_fragmentation())
    mean_frag = sum(final_fragmentation) / len(final_fragmentation)
    return admitted, mean_frag


def bench_ablation_search(benchmark, scale, platform):
    prepared = prepare_dataset(
        DatasetSpec("communication", "small"),
        applications=scale.applications, seed=0, platform=platform,
    )

    def run_all():
        return {
            rings: _run(rings, prepared, platform, scale.sequences)
            for rings in (0, 1, 2)
        }

    results = benchmark.pedantic(run_all, iterations=1, rounds=1)
    print()
    for rings, (admitted, fragmentation) in sorted(results.items()):
        print(f"extra_rings={rings}: admitted {admitted}, "
              f"final fragmentation {fragmentation:.1f}%")

    base_admitted, _ = results[0]
    paper_admitted, _ = results[1]
    # the extra ring must not collapse admissions
    assert paper_admitted >= base_admitted * 0.8, (
        f"extra ring hurt admissions: {paper_admitted} vs {base_admitted}"
    )
