"""Shared environment stanza for the benchmark reports.

Both ``run_admission_bench.py`` and ``run_service_bench.py`` embed the
same python/platform/timestamp block, produced here, so trajectories
recorded on different machines stay comparable field-for-field.
"""

from __future__ import annotations

import platform as platform_module
import sys
import time


def environment_stanza() -> dict:
    """The python/platform/timestamp block every BENCH_*.json carries."""
    return {
        "python": sys.version.split()[0],
        "platform": platform_module.platform(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
