"""Benchmark configuration.

Benchmarks default to a reduced scale so ``pytest benchmarks/
--benchmark-only`` completes in minutes; set ``REPRO_APPS=100
REPRO_SEQUENCES=30`` (and ``REPRO_FIG10_COMM_STEP=1
REPRO_FIG10_FRAG_STEP=10``) for the paper's full protocol.
"""

from __future__ import annotations

import pytest

from repro.experiments import HarnessScale, default_platform

#: reduced default scale for the benchmark suite
BENCH_DEFAULT = HarnessScale(applications=24, sequences=3, positions=20)


@pytest.fixture(scope="session")
def scale() -> HarnessScale:
    return HarnessScale.from_environment(BENCH_DEFAULT)


@pytest.fixture(scope="session")
def platform():
    return default_platform()
