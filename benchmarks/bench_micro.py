"""Micro-benchmarks of the allocation phases and core primitives.

These track the run-time feasibility claim — "low-complexity
algorithms are required, in order to respond fast enough" — at the
granularity of individual components: a single four-phase allocation,
the mapping phase alone, routing alone, SDF throughput analysis, and
the GAP/knapsack inner loop.
"""

from __future__ import annotations

from repro.apps import GeneratorConfig, beamforming_application, generate
from repro.arch import AllocationState, ResourceVector, crisp, mesh
from repro.binding import bind
from repro.core import BOTH, MappingCost, map_application
from repro.core.knapsack import KnapsackItem, solve_greedy
from repro.experiments import (
    CHURN_BENCH_CONFIG,
    CHURN_BENCH_POOL_SIZE,
    churn_pool,
    run_admission_churn,
)
from repro.manager import Kairos
from repro.routing import BfsRouter
from repro.validation import analyze_throughput, layout_to_sdf


def bench_single_allocation_small(benchmark, platform):
    """One full allocation (bind+map+route) of a 6-task app on CRISP."""
    app = generate(
        GeneratorConfig(inputs=1, internals=4, outputs=1,
                        utilization_low=0.2, utilization_high=0.5),
        seed=3,
    )

    def allocate():
        manager = Kairos(platform, weights=BOTH, validation_mode="skip")
        decision = manager.controller.admit(app)
        manager.release(decision.app_id)

    benchmark(allocate)


def bench_mapping_beamformer(benchmark, platform):
    """The mapping phase alone for the 53-task case study (paper: 21.7 ms)."""
    app = beamforming_application()
    state = AllocationState(platform)
    binding = bind(app, state)

    def run():
        snapshot = state.snapshot()
        map_application(app, binding.choice, state, cost=MappingCost(BOTH))
        state.restore(snapshot)

    benchmark(run)


def bench_routing_beamformer(benchmark, platform):
    """The routing phase alone for the case study (paper: 7.4 ms)."""
    app = beamforming_application()
    state = AllocationState(platform)
    binding = bind(app, state)
    mapping = map_application(app, binding.choice, state,
                              cost=MappingCost(BOTH))
    snapshot = state.snapshot()

    def run():
        state.restore(snapshot)
        BfsRouter().route_application(app, mapping.placement, state)

    benchmark(run)


def bench_validation_beamformer(benchmark, platform):
    """SDF throughput analysis of the case-study layout (paper: 20.6 ms)."""
    app = beamforming_application()
    state = AllocationState(platform)
    binding = bind(app, state)
    mapping = map_application(app, binding.choice, state,
                              cost=MappingCost(BOTH))
    routing = BfsRouter().route_application(app, mapping.placement, state)
    graph = layout_to_sdf(app, binding.choice, mapping.placement,
                          routing.routes, state)

    benchmark(analyze_throughput, graph)


def bench_knapsack_inner_loop(benchmark):
    """The O(T^2) knapsack on a 16-item instance (the GAP hot path)."""
    items = [
        KnapsackItem(f"t{k}", profit=float((k * 37) % 19 + 1),
                     requirement=ResourceVector(cycles=(k * 13) % 40 + 5,
                                                memory=(k * 7) % 12 + 1))
        for k in range(16)
    ]
    capacity = ResourceVector(cycles=100, memory=32)
    benchmark(solve_greedy, items, capacity)


def bench_binding_beamformer(benchmark, platform):
    """The binding phase alone for the case study (paper: 70.4 ms)."""
    app = beamforming_application()
    state = AllocationState(platform)
    benchmark(bind, app, state)


def bench_admission_churn(benchmark):
    """Sustained allocate/release churn, 12x12 mesh at ~80% utilization.

    The workload of the PR-over-PR perf trajectory: run
    ``python benchmarks/run_admission_bench.py`` to emit the
    machine-readable ``BENCH_admission.json`` (including the
    seed-reference comparison and rollback-scaling micro-benchmarks).
    """
    pool = churn_pool(count=CHURN_BENCH_POOL_SIZE, seed=0)

    def run():
        run_admission_churn(
            pool, mesh(12, 12), CHURN_BENCH_CONFIG, rollback="transaction"
        )

    benchmark(run)


def bench_admission_churn_snapshot_rollback(benchmark):
    """The same churn under the legacy full-snapshot rollback strategy."""
    pool = churn_pool(count=CHURN_BENCH_POOL_SIZE, seed=0)

    def run():
        run_admission_churn(
            pool, mesh(12, 12), CHURN_BENCH_CONFIG, rollback="snapshot"
        )

    benchmark(run)
