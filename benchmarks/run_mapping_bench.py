#!/usr/bin/env python
"""Emit ``BENCH_mapping.json`` — the mapping-phase / distance-field bench.

Measures the incremental distance-field engine (PR 4) against the live
ring search on three workloads, reporting wall-clock plus the engine's
own accounting (hit/repair/miss rates, ring reuse ratio, bypasses):

* **probe** — the backfill pattern: one spec repeatedly bound+mapped
  and rolled back against *unchanging* platform state (the regime
  between two capacity events, where every field replays),
* **churn** — the canonical 12x12 admission churn (fill + release/admit
  steps; link traversability oscillates around saturation),
* **service** — a short overloaded FIFO service run, with the mapping
  phase's total_ms share of the pipeline before/after.

Decisions are bit-identical in both modes (asserted here per workload
on top of the lockstep suite in ``tests/test_distfield.py``); this
bench is honest about where replay pays and where the engine's
adaptive bypass hands the search back to the live path.

Usage::

    PYTHONPATH=src python benchmarks/run_mapping_bench.py \
        [--output BENCH_mapping.json] [--repeats 3] [--smoke]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.apps.generator import GeneratorConfig, generate  # noqa: E402
from repro.arch.builders import mesh  # noqa: E402
from repro.arch.elements import ElementType  # noqa: E402
from repro.binding.binder import bind  # noqa: E402
from repro.core.mapping import map_application  # noqa: E402
from repro.experiments import (  # noqa: E402
    CHURN_BENCH_CONFIG,
    CHURN_BENCH_POOL_SIZE,
    ChurnConfig,
    churn_pool,
    run_admission_churn,
)
from repro.manager.kairos import Kairos  # noqa: E402
from repro.sim import build_recipe, run_recipe  # noqa: E402

from benchmarks.bench_env import environment_stanza  # noqa: E402


class _Probe(Exception):
    """Sentinel: roll the probe's transaction back."""


def probe_workload(incremental: bool, probes: int, repeats: int) -> dict:
    """Repeated bind+map+rollback of one spec on frozen state."""
    manager = Kairos(
        mesh(12, 12), validation_mode="skip",
        incremental=incremental, fastpath=False,
    )
    pool = [
        generate(
            GeneratorConfig(
                inputs=1, internals=4, outputs=1,
                target_kinds=((ElementType.DSP, 1.0),),
            ),
            seed=index,
        )
        for index in range(6)
    ]
    for index, app in enumerate(pool):
        decision = manager.controller.admit(app, f"fill{index}")
        assert decision.admitted, f"fill{index} rejected: {decision.reason}"
    app = pool[0]
    placements = set()
    best = float("inf")
    for repeat in range(repeats):
        started = time.perf_counter()
        for index in range(probes):
            try:
                with manager.state.transaction():
                    binding = bind(app, manager.state)
                    result = map_application(
                        app, binding.choice, manager.state,
                        cost=manager.cost, app_id=f"p{repeat}_{index}",
                        engine=manager._distfield,
                    )
                    placements.add(tuple(sorted(result.placement.items())))
                    raise _Probe()
            except _Probe:
                pass
        best = min(best, time.perf_counter() - started)
    assert len(placements) == 1, "probes must be deterministic"
    return {
        "seconds": best,
        "probes": probes,
        "placement_digest": hash(next(iter(placements))) & 0xFFFFFFFF,
        "distfield": manager.distfield_stats,
    }


def churn_workload(incremental: bool, config: ChurnConfig, repeats: int):
    pool = churn_pool(count=CHURN_BENCH_POOL_SIZE, seed=0)
    best = None
    for _ in range(repeats):
        result = run_admission_churn(
            pool, mesh(12, 12), config, incremental=incremental
        )
        if best is None or result.elapsed_seconds < best.elapsed_seconds:
            best = result
    return best


def service_workload(incremental: bool, duration: float, repeats: int):
    recipe = build_recipe(
        platform="12x12", duration=duration, seed=0, policy="fifo",
        rate_scale=8.0, sample_interval=5.0,
    )
    best = None
    for _ in range(repeats):
        result = run_recipe(recipe, incremental=incremental)
        if best is None or result.wall_seconds < best.wall_seconds:
            best = result
    return best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_mapping.json")
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--smoke", action="store_true",
        help="short CI run: correctness + accounting only",
    )
    args = parser.parse_args()
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")

    repeats = 1 if args.smoke else args.repeats
    probes = 40 if args.smoke else 300
    churn_config = (
        ChurnConfig(steps=30, target_utilization=0.8, seed=0)
        if args.smoke else CHURN_BENCH_CONFIG
    )
    service_duration = 10.0 if args.smoke else 60.0

    report: dict = {
        "workload": {
            "platform": "mesh_12x12",
            "smoke": args.smoke,
            "probes": probes,
            "churn_steps": churn_config.steps,
            "service_duration": service_duration,
        },
    }

    # -- probe: the stable-state replay regime -----------------------------
    probe_inc = probe_workload(True, probes, repeats)
    probe_live = probe_workload(False, probes, repeats)
    assert probe_inc["placement_digest"] == probe_live["placement_digest"]
    report["probe"] = {
        "incremental_seconds": probe_inc["seconds"],
        "live_seconds": probe_live["seconds"],
        "speedup": probe_live["seconds"] / probe_inc["seconds"],
        "distfield": probe_inc["distfield"],
    }

    # -- churn: saturation-boundary oscillation ----------------------------
    churn_inc = churn_workload(True, churn_config, repeats)
    churn_live = churn_workload(False, churn_config, repeats)
    report["churn"] = {
        "incremental_seconds": churn_inc.elapsed_seconds,
        "live_seconds": churn_live.elapsed_seconds,
        "speedup": churn_live.elapsed_seconds / churn_inc.elapsed_seconds,
        "layouts_identical": churn_inc.layouts == churn_live.layouts,
        "distfield": churn_inc.distfield_stats,
    }

    # -- service: mapping share of the overloaded fifo pipeline ------------
    service_inc = service_workload(True, service_duration, repeats)
    service_live = service_workload(False, service_duration, repeats)
    assert service_inc.trace == service_live.trace, "decision divergence"

    def mapping_share(result) -> dict:
        latency = result.metrics.summary()["phase_latency"]
        total = sum(row["total_ms"] for row in latency.values())
        mapping = latency.get("mapping", {}).get("total_ms", 0.0)
        return {
            "events_per_second": result.events_per_second,
            "mapping_total_ms": mapping,
            "pipeline_total_ms": total,
            "mapping_share": mapping / total if total else 0.0,
        }

    report["service_fifo"] = {
        "incremental": {
            **mapping_share(service_inc),
            "distfield": service_inc.distfield_stats,
        },
        "live": mapping_share(service_live),
    }
    report["environment"] = environment_stanza()

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {output}", file=sys.stderr)
    status = 0
    if not report["churn"]["layouts_identical"]:
        print("CHURN LAYOUTS DIVERGED — bit-identity regression",
              file=sys.stderr)
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
