"""E1 — regenerate Table I: failure distribution per phase.

Prints the measured table next to the paper's numbers and checks the
load-bearing qualitative claims:

* communication-oriented datasets fail predominantly in routing,
* computation-intensive datasets fail predominantly in binding,
* the large computation dataset shifts failures toward routing
  relative to the small one.
"""

from __future__ import annotations

from repro.experiments import format_table1, run_table1


def bench_table1(benchmark, scale, platform):
    result = benchmark.pedantic(
        run_table1,
        kwargs={"scale": scale, "seed": 0, "platform": platform},
        iterations=1, rounds=1,
    )
    print()
    print(format_table1(result))

    for row in result.rows:
        total = row.binding_pct + row.mapping_pct + row.routing_pct
        if total == 0.0:
            continue  # tiny surviving dataset produced no failures
        if row.dataset.startswith("communication"):
            assert row.dominant_phase() == "routing", (
                f"{row.dataset}: expected routing-dominated failures, "
                f"got {row.dominant_phase()}"
            )
        else:
            assert row.dominant_phase() == "binding", (
                f"{row.dataset}: expected binding-dominated failures, "
                f"got {row.dominant_phase()}"
            )
    small = result.row("computation_small")
    large = result.row("computation_large")
    assert large.routing_pct >= small.routing_pct, (
        "large computation apps should shift failures toward routing"
    )
