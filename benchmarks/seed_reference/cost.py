"""The mapping cost function (paper Section III-D).

"To evaluate the cost of mapping a task t to an element e, we first
look at the total communication distance involved with candidate
element e ... If a required distance lookup fails, a relative high
penalty is given to e ... For yet unmapped tasks the distance is
inherently unknown, and therefore left out of the equation.

The other mapping objective we consider is external resource
fragmentation.  An element e receives decreasing bonuses for neighbor
elements that retain communication peers of t, tasks from the same
application A, or tasks from other applications.  Additionally, the
connectivity of an element e is taken into account as well; elements
on the borders of chips are thus more favorable to use.  The ratio
between these two objectives is given by weight parameters."

The total cost is ``w_comm * distance_term - w_frag * bonus_term``;
lower is better.  :data:`NONE`, :data:`COMMUNICATION`,
:data:`FRAGMENTATION` and :data:`BOTH` are the four configurations of
Figs. 8-10.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.elements import ProcessingElement
from benchmarks.seed_reference.compat import seed_incident_channels, seed_neighbors
from benchmarks.seed_reference.state import AllocationState
from repro.apps.taskgraph import Application
from benchmarks.seed_reference.search import SparseDistanceMatrix

#: graded neighbour bonuses (Section III-D: "decreasing bonuses")
BONUS_PEER = 3.0          #: neighbour hosts a communication peer of t
BONUS_SAME_APP = 2.0      #: neighbour hosts another task of the same app
BONUS_OTHER_APP = 1.0     #: neighbour hosts tasks of other applications
#: weight of the border/connectivity bonus per missing neighbour
BONUS_BORDER = 0.5
#: hop penalty used when the sparse distance matrix has no entry
DEFAULT_DISTANCE_PENALTY = 32


@dataclass(frozen=True)
class CostWeights:
    """The two objective weights of the paper's experiments.

    Fig. 10 samples ``communication`` in [0..25] and ``fragmentation``
    in [0..1000]; (0, 0) disables the cost function entirely (the
    "None" configuration, reducing mapping to first-fit in platform
    search order).
    """

    communication: float = 1.0
    fragmentation: float = 1.0

    def __post_init__(self) -> None:
        if self.communication < 0 or self.fragmentation < 0:
            raise ValueError("cost weights must be non-negative")

    @property
    def disabled(self) -> bool:
        return self.communication == 0 and self.fragmentation == 0


#: The four named configurations of Figs. 8 and 9.
NONE = CostWeights(0.0, 0.0)
COMMUNICATION = CostWeights(1.0, 0.0)
FRAGMENTATION = CostWeights(0.0, 1.0)
BOTH = CostWeights(1.0, 1.0)

NAMED_WEIGHTS: dict[str, CostWeights] = {
    "None": NONE,
    "Communication": COMMUNICATION,
    "Fragmentation": FRAGMENTATION,
    "Both": BOTH,
}


class MappingCost:
    """Evaluates the cost of placing a task onto a candidate element.

    The cost depends on the *committed* placement (anchors and earlier
    layers) and the global allocation state, but not on the tentative
    assignments inside the current GAP layer — so one evaluation per
    (task, element) pair per layer suffices (see the complexity remark
    below paper Fig. 5).
    """

    def __init__(
        self,
        weights: CostWeights = BOTH,
        distance_penalty: int = DEFAULT_DISTANCE_PENALTY,
    ) -> None:
        self.weights = weights
        self.distance_penalty = distance_penalty
        self._max_connectivity: dict[int, int] = {}

    def __call__(
        self,
        app: Application,
        app_id: str,
        task: str,
        element: ProcessingElement,
        state: AllocationState,
        placement: dict[str, str],
        distances: SparseDistanceMatrix,
    ) -> float:
        """Cost of mapping ``task`` onto ``element``; lower is better.

        ``placement`` maps already-mapped task names of this
        application to element names; ``distances`` is the sparse
        matrix accumulated by the platform search.
        """
        if self.weights.disabled:
            return 0.0
        cost = 0.0
        if self.weights.communication:
            cost += self.weights.communication * self.communication_term(
                app, task, element, placement, distances
            )
        if self.weights.fragmentation:
            cost -= self.weights.fragmentation * self.fragmentation_bonus(
                app, app_id, task, element, state, placement
            )
        return cost

    # -- objective terms ---------------------------------------------------

    def communication_term(
        self,
        app: Application,
        task: str,
        element: ProcessingElement,
        placement: dict[str, str],
        distances: SparseDistanceMatrix,
    ) -> float:
        """Total estimated route length to already-mapped peers.

        Each channel between ``task`` and a mapped peer contributes the
        sparse-matrix distance between ``element`` and the peer's
        element, or :attr:`distance_penalty` when the lookup fails
        (the search never reached one from the other — "we assume a
        large communication distance").  Channels to unmapped tasks
        are left out.
        """
        total = 0.0
        for channel in seed_incident_channels(app, task):
            peer = channel.target if channel.source == task else channel.source
            peer_element = placement.get(peer)
            if peer_element is None:
                continue
            distance = distances.get(element.name, peer_element)
            if distance is None:
                distance = self.distance_penalty
            total += distance
        return total

    def fragmentation_bonus(
        self,
        app: Application,
        app_id: str,
        task: str,
        element: ProcessingElement,
        state: AllocationState,
        placement: dict[str, str],
    ) -> float:
        """Graded neighbourhood bonuses plus the border bonus.

        A neighbour element contributes the *highest* single bonus it
        qualifies for (peer > same app > other app); an element whose
        neighbourhood is already busy is attractive because using it
        does not strand fresh resources.  The border term favours
        low-connectivity elements: filling the chip from its edges
        inward keeps the contiguous free area compact.
        """
        peers = set(seed_neighbors(app, task))
        peer_elements = {placement[p] for p in peers if p in placement}
        bonus = 0.0
        for neighbor in state.platform.element_neighbors(element):
            if neighbor.name in peer_elements:
                bonus += BONUS_PEER
                continue
            occupants = state.occupants(neighbor)
            if not occupants:
                continue
            if any(o.app_id == app_id for o in occupants):
                bonus += BONUS_SAME_APP
            else:
                bonus += BONUS_OTHER_APP
        platform_key = id(state.platform)
        max_connectivity = self._max_connectivity.get(platform_key)
        if max_connectivity is None:
            max_connectivity = max(
                (
                    state.platform.element_connectivity(e)
                    for e in state.platform.elements
                ),
                default=0,
            )
            self._max_connectivity[platform_key] = max_connectivity
        connectivity = state.platform.element_connectivity(element)
        bonus += BONUS_BORDER * (max_connectivity - connectivity)
        return bonus
