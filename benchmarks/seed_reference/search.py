"""Platform search: ring-wise BFS for candidate elements (Section III-B).

"In every iteration, we start searching in the topological
neighborhood of the elements that were allocated in the previous
iteration.  From the location of the elements Ei-1, a breadth-first
search (BFS) is started.  When the partial mapping Mi-1 contains more
than one element, we start this search at multiple locations ...  In
this search, we keep track of the distance between a newly discovered
element and the origins of the BFS, to estimate the cost of the
communication routes."

:class:`RingSearch` runs one BFS *per origin element* in lockstep
rings, so the sparse distance matrix records, for every discovered
node, its distance to each individual origin — exactly what the
mapping cost function needs to estimate route lengths to already-mapped
communication peers.  Links without a free virtual channel are not
traversed (a congestion-aware search keeps the distance estimates
honest and avoids proposing unreachable elements).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.arch.elements import ProcessingElement, is_element
from benchmarks.seed_reference.state import AllocationState


class SparseDistanceMatrix:
    """Distances discovered so far, keyed by (origin element, node).

    "A sparse distance matrix is built while searching the platform
    for elements.  If a required distance lookup fails, a relative
    high penalty is given" (Section III-D) — the penalty policy lives
    in the cost function; this class just answers ``get`` with None
    for unknown pairs.  Lookups are symmetric.
    """

    def __init__(self) -> None:
        self._distances: dict[tuple[str, str], int] = {}

    def record(self, origin: str, node: str, distance: int) -> None:
        key = (origin, node) if origin <= node else (node, origin)
        previous = self._distances.get(key)
        if previous is None or distance < previous:
            self._distances[key] = distance

    def get(self, a: str, b: str) -> int | None:
        if a == b:
            return 0
        key = (a, b) if a <= b else (b, a)
        return self._distances.get(key)

    def __len__(self) -> int:
        return len(self._distances)

    def merge(self, other: "SparseDistanceMatrix") -> None:
        """Keep the minimum of both matrices (used across iterations)."""
        for (a, b), distance in other._distances.items():
            self.record(a, b, distance)


class RingSearch:
    """Lockstep per-origin BFS producing rings of candidate elements.

    ``advance()`` expands every origin's frontier by one hop and
    returns the processing elements discovered for the first time by
    *any* origin in that ring (the paper's ``Ei,j``).  An empty return
    with :attr:`exhausted` set means the reachable platform has been
    fully explored — the mapping iteration must then fail.
    """

    def __init__(
        self,
        state: AllocationState,
        origins: Iterable[ProcessingElement | str],
        respect_congestion: bool = True,
    ) -> None:
        self.state = state
        self.platform = state.platform
        self.respect_congestion = respect_congestion
        self.distances = SparseDistanceMatrix()
        origin_names: list[str] = []
        for origin in origins:
            name = origin if isinstance(origin, str) else origin.name
            if name not in origin_names:
                origin_names.append(name)
        if not origin_names:
            raise ValueError("RingSearch needs at least one origin element")
        self.origins = tuple(origin_names)
        # per-origin BFS state
        self._visited: dict[str, set[str]] = {o: {o} for o in origin_names}
        self._frontier: dict[str, list[str]] = {o: [o] for o in origin_names}
        self._seen_elements: set[str] = set(origin_names)
        self._ring = 0
        for origin in origin_names:
            self.distances.record(origin, origin, 0)

    @property
    def ring(self) -> int:
        """Number of rings expanded so far (the paper's ``j``)."""
        return self._ring

    @property
    def exhausted(self) -> bool:
        """True when no origin has frontier nodes left to expand."""
        return all(not frontier for frontier in self._frontier.values())

    def _traversable(self, a: str, b: str) -> bool:
        """Can the search step across link a—b?

        With ``respect_congestion`` a link must offer a free virtual
        channel in at least one direction; fully saturated or failed
        links act as walls, so distance estimates reflect the
        platform's *current* connectivity.
        """
        if not self.respect_congestion:
            return True
        return (
            self.state.vc_free(a, b) >= 1 or self.state.vc_free(b, a) >= 1
        )

    def advance(self) -> list[ProcessingElement]:
        """Expand one ring; return globally new candidate elements."""
        if self.exhausted:
            return []
        self._ring += 1
        new_elements: list[ProcessingElement] = []
        for origin in self.origins:
            frontier = self._frontier[origin]
            if not frontier:
                continue
            visited = self._visited[origin]
            next_frontier: list[str] = []
            for node_name in frontier:
                for neighbor in self.platform.neighbors(node_name):
                    if neighbor.name in visited:
                        continue
                    if not self._traversable(node_name, neighbor.name):
                        continue
                    visited.add(neighbor.name)
                    next_frontier.append(neighbor.name)
                    self.distances.record(origin, neighbor.name, self._ring)
                    if is_element(neighbor) and neighbor.name not in self._seen_elements:
                        self._seen_elements.add(neighbor.name)
                        new_elements.append(neighbor)
            self._frontier[origin] = next_frontier
        return new_elements

    def gather(
        self,
        needed: int,
        availability,
        extra_rings: int = 1,
        max_rings: int | None = None,
    ) -> list[ProcessingElement]:
        """Expand rings until ``needed`` available elements are found.

        ``availability(element) -> bool`` decides whether an element
        counts towards ``needed`` (typically: at least one task of the
        current layer fits on it).  Per Section III-B, "once we have
        discovered enough elements ... a single additional search step
        is performed" — controlled by ``extra_rings`` — so later
        objectives (fragmentation) have slack to choose from.

        Returns all *new* candidate elements found by this call, in
        discovery order.  The caller decides what to do when the
        search exhausts before ``needed`` is reached (the returned
        list is simply shorter in that case).
        """
        found: list[ProcessingElement] = []
        useful = 0
        while useful < needed and not self.exhausted:
            if max_rings is not None and self._ring >= max_rings:
                break
            ring_elements = self.advance()
            for element in ring_elements:
                found.append(element)
                if availability(element):
                    useful += 1
        for _ in range(extra_rings):
            if self.exhausted:
                break
            if max_rings is not None and self._ring >= max_rings:
                break
            found.extend(self.advance())
        return found
