"""Seed-faithful admission manager: snapshot/restore around each attempt.

A trimmed copy of the seed's ``Kairos.allocate`` work-flow (binding,
mapping, routing; validation skipped, as in every churn benchmark):
the full ledger snapshot is taken before *each* attempt and restored
on any phase failure — the O(platform) rollback cost the transaction
journal eliminated.  The churn driver mirrors
:func:`repro.experiments.workload.run_admission_churn` decision for
decision so layout digests are directly comparable.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.apps.taskgraph import Application
from repro.arch.topology import Platform
from repro.experiments.workload import ChurnConfig, ChurnResult

from benchmarks.seed_reference.binder import BindingError, bind
from benchmarks.seed_reference.cost import BOTH, CostWeights, MappingCost
from benchmarks.seed_reference.mapping import MappingError, map_application
from benchmarks.seed_reference.router import BfsRouter, RoutingError
from benchmarks.seed_reference.state import AllocationState


class SeedAllocationFailure(RuntimeError):
    """Any phase failure of the reference pipeline."""


@dataclass
class SeedLayout:
    app_id: str
    placement: dict[str, str]
    routes: dict


class SeedKairos:
    """The seed's four-phase allocate with snapshot/restore atomicity."""

    def __init__(self, platform: Platform, weights: CostWeights = BOTH):
        self.platform = platform
        self.state = AllocationState(platform)
        self.cost = MappingCost(weights)
        self.router = BfsRouter()
        self.admitted: dict[str, SeedLayout] = {}

    def allocate(self, app: Application, app_id: str) -> SeedLayout:
        if app_id in self.admitted:
            raise ValueError(f"app_id {app_id!r} already admitted")
        app.validate()
        snapshot = self.state.snapshot()
        try:
            binding = bind(app, self.state)
            mapping = map_application(
                app, binding.choice, self.state, cost=self.cost, app_id=app_id
            )
            routing = self.router.route_application(
                app, mapping.placement, self.state, app_id=app_id
            )
        except (BindingError, MappingError, RoutingError) as exc:
            self.state.restore(snapshot)
            raise SeedAllocationFailure(str(exc)) from exc
        layout = SeedLayout(app_id, mapping.placement, routing.routes)
        self.admitted[app_id] = layout
        return layout

    def release(self, app_id: str) -> None:
        self.state.release_application(app_id)
        del self.admitted[app_id]

    def utilization(self) -> float:
        return self.state.utilization()


def run_seed_churn(
    pool: list[Application],
    platform: Platform,
    config: ChurnConfig = ChurnConfig(),
    weights: CostWeights = BOTH,
) -> ChurnResult:
    """The reference churn run; mirrors ``run_admission_churn`` exactly."""
    if not pool:
        raise ValueError("churn pool must not be empty")
    rng = random.Random(config.seed)
    manager = SeedKairos(platform, weights=weights)
    result = ChurnResult()
    resident: list[str] = []
    next_app = 0
    counter = 0
    started = time.perf_counter()

    def attempt() -> bool:
        nonlocal next_app, counter
        app = pool[next_app % len(pool)]
        next_app += 1
        counter += 1
        app_id = f"churn{counter}_{app.name}"
        try:
            layout = manager.allocate(app, app_id)
        except SeedAllocationFailure:
            result.rejected += 1
            return False
        result.admitted += 1
        resident.append(app_id)
        result.layouts.append(
            (
                layout.app_id,
                tuple(sorted(layout.placement.items())),
                tuple(
                    (channel, reservation.path)
                    for channel, reservation in sorted(layout.routes.items())
                ),
            )
        )
        return True

    consecutive_rejections = 0
    while (
        manager.utilization() < config.target_utilization
        and consecutive_rejections < len(pool)
    ):
        if attempt():
            consecutive_rejections = 0
            result.fill_admitted += 1
        else:
            consecutive_rejections += 1

    for _step in range(config.steps):
        if resident:
            app_id = resident.pop(rng.randrange(len(resident)))
            manager.release(app_id)
            result.released += 1
        attempt()

    result.final_utilization = manager.utilization()
    result.elapsed_seconds = time.perf_counter() - started
    return result
