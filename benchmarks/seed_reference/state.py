"""Run-time allocation state of a platform.

The :class:`Platform` is immutable; everything that changes while
applications come and go lives here:

* per-element free resource vectors,
* which tasks of which applications occupy each element,
* per-directed-link virtual-channel and bandwidth ledgers,
* failed (faulty) elements and links, and
* the external-resource-fragmentation metric of Section III-A:
  "the percentage of pairs of adjacent elements of which only one
  element is used, over all pairs of adjacent elements in the
  platform".

A whole allocation attempt (binding, mapping, routing, validation) must
be atomic — a failure in any phase must leave no residue — so the state
supports cheap :meth:`snapshot` / :meth:`restore`.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.arch.elements import Node, ProcessingElement
from repro.arch.resources import ResourceError, ResourceVector
from benchmarks.seed_reference.compat import seed_add, seed_fits_in, seed_sub
from repro.arch.topology import Platform, TopologyError


class AllocationError(RuntimeError):
    """Raised when an occupy/reserve request cannot be satisfied."""


@dataclass(frozen=True)
class Occupant:
    """A task instance resident on an element."""

    app_id: str
    task_id: str
    requirement: ResourceVector


@dataclass(frozen=True)
class ChannelReservation:
    """A reserved route: one virtual channel + bandwidth per hop."""

    app_id: str
    channel_id: str
    path: tuple[str, ...]  # node names, source element ... target element
    bandwidth: float

    @property
    def hops(self) -> int:
        return len(self.path) - 1


def _directed_key(a: str, b: str) -> tuple[str, str]:
    return (a, b)


class AllocationState:
    """Mutable occupancy ledger over a frozen :class:`Platform`."""

    def __init__(self, platform: Platform):
        if not platform.frozen:
            raise TopologyError("AllocationState requires a frozen platform")
        self.platform = platform
        self._free: dict[str, ResourceVector] = {
            e.name: e.capacity for e in platform.elements
        }
        self._occupants: dict[str, list[Occupant]] = {
            e.name: [] for e in platform.elements
        }
        # directed link ledgers: (a, b) -> used virtual channels / bandwidth
        self._vc_used: dict[tuple[str, str], int] = {}
        self._bw_used: dict[tuple[str, str], float] = {}
        self._reservations: dict[tuple[str, str], ChannelReservation] = {}
        self._placements: dict[tuple[str, str], str] = {}  # (app, task) -> element
        # wear odometer: total occupations ever served per element
        # (releases do not decrement; see WearLevelingObjective)
        self._wear: dict[str, int] = {e.name: 0 for e in platform.elements}
        self._failed_elements: set[str] = set()
        self._failed_links: set[frozenset[str]] = set()

    # -- element occupancy ------------------------------------------------

    def free(self, element: ProcessingElement | str) -> ResourceVector:
        """Remaining capacity of ``element`` (zero if failed)."""
        name = self._element_name(element)
        if name in self._failed_elements:
            return ResourceVector()
        return self._free[name]

    def is_available(
        self, element: ProcessingElement | str, requirement: ResourceVector
    ) -> bool:
        """The paper's ``av(e, t)``: can ``element`` still host ``requirement``?"""
        return seed_fits_in(requirement, self.free(element))

    def occupy(
        self,
        element: ProcessingElement | str,
        app_id: str,
        task_id: str,
        requirement: ResourceVector,
    ) -> None:
        """Allocate ``requirement`` of ``element`` to a task."""
        name = self._element_name(element)
        if name in self._failed_elements:
            raise AllocationError(f"element {name} is marked failed")
        key = (app_id, task_id)
        if key in self._placements:
            raise AllocationError(f"task {task_id!r} of {app_id!r} already placed")
        try:
            self._free[name] = seed_sub(self._free[name], requirement)
        except ResourceError as exc:
            raise AllocationError(
                f"element {name} cannot host {task_id!r}: {exc}"
            ) from exc
        self._occupants[name].append(Occupant(app_id, task_id, requirement))
        self._placements[key] = name
        self._wear[name] += 1

    def vacate(self, app_id: str, task_id: str) -> None:
        """Release the resources a task held."""
        key = (app_id, task_id)
        try:
            name = self._placements.pop(key)
        except KeyError:
            raise AllocationError(
                f"task {task_id!r} of {app_id!r} is not placed"
            ) from None
        occupants = self._occupants[name]
        for index, occupant in enumerate(occupants):
            if occupant.app_id == app_id and occupant.task_id == task_id:
                del occupants[index]
                self._free[name] = seed_add(self._free[name], occupant.requirement)
                return
        raise AssertionError("placement table and occupant list disagree")

    def occupants(self, element: ProcessingElement | str) -> tuple[Occupant, ...]:
        return tuple(self._occupants[self._element_name(element)])

    def element_of(self, app_id: str, task_id: str) -> str | None:
        """Element name hosting a task, or None when unplaced."""
        return self._placements.get((app_id, task_id))

    def placements_of(self, app_id: str) -> dict[str, str]:
        """task_id -> element name for one application."""
        return {
            task: element
            for (app, task), element in self._placements.items()
            if app == app_id
        }

    def wear(self, element: ProcessingElement | str) -> int:
        """Total occupations this element ever served (never decreases)."""
        return self._wear[self._element_name(element)]

    def is_used(self, element: ProcessingElement | str) -> bool:
        """True when the element hosts at least one task."""
        return bool(self._occupants[self._element_name(element)])

    def used_elements(self) -> tuple[str, ...]:
        return tuple(name for name, occ in self._occupants.items() if occ)

    def applications(self) -> tuple[str, ...]:
        """Identifiers of all applications with at least one placement."""
        return tuple(sorted({app for app, _task in self._placements}))

    # -- link ledger --------------------------------------------------------

    def vc_free(self, a: Node | str, b: Node | str) -> int:
        """Free virtual channels on the directed link a -> b."""
        name_a, name_b = self._node_name(a), self._node_name(b)
        if frozenset((name_a, name_b)) in self._failed_links:
            return 0
        link = self.platform.link_between(name_a, name_b)
        return link.virtual_channels - self._vc_used.get((name_a, name_b), 0)

    def bandwidth_free(self, a: Node | str, b: Node | str) -> float:
        name_a, name_b = self._node_name(a), self._node_name(b)
        if frozenset((name_a, name_b)) in self._failed_links:
            return 0.0
        link = self.platform.link_between(name_a, name_b)
        return link.bandwidth - self._bw_used.get((name_a, name_b), 0.0)

    def can_traverse(self, a: Node | str, b: Node | str, bandwidth: float) -> bool:
        """Can one more channel with ``bandwidth`` cross link a -> b?"""
        return self.vc_free(a, b) >= 1 and self.bandwidth_free(a, b) >= bandwidth

    def reserve_route(
        self,
        app_id: str,
        channel_id: str,
        path: Iterable[Node | str],
        bandwidth: float,
    ) -> ChannelReservation:
        """Reserve one virtual channel + bandwidth along ``path``.

        ``path`` is a node sequence from the source element to the
        target element.  All-or-nothing: verified first, then applied.
        """
        names = [self._node_name(node) for node in path]
        if len(names) < 2:
            raise AllocationError(f"route for {channel_id!r} has no hops: {names}")
        key = (app_id, channel_id)
        if key in self._reservations:
            raise AllocationError(f"channel {channel_id!r} already routed")
        hops = list(zip(names, names[1:]))
        for a, b in hops:
            if not self.can_traverse(a, b, bandwidth):
                raise AllocationError(
                    f"link {a}->{b} lacks capacity for channel {channel_id!r}"
                )
        for a, b in hops:
            directed = _directed_key(a, b)
            self._vc_used[directed] = self._vc_used.get(directed, 0) + 1
            self._bw_used[directed] = self._bw_used.get(directed, 0.0) + bandwidth
        reservation = ChannelReservation(app_id, channel_id, tuple(names), bandwidth)
        self._reservations[key] = reservation
        return reservation

    def release_route(self, app_id: str, channel_id: str) -> None:
        key = (app_id, channel_id)
        try:
            reservation = self._reservations.pop(key)
        except KeyError:
            raise AllocationError(f"channel {channel_id!r} is not routed") from None
        for a, b in zip(reservation.path, reservation.path[1:]):
            directed = _directed_key(a, b)
            self._vc_used[directed] -= 1
            self._bw_used[directed] -= reservation.bandwidth
            if self._vc_used[directed] == 0:
                del self._vc_used[directed]
            if abs(self._bw_used[directed]) < 1e-9:
                del self._bw_used[directed]

    def reservation(self, app_id: str, channel_id: str) -> ChannelReservation | None:
        return self._reservations.get((app_id, channel_id))

    def reservations_of(self, app_id: str) -> tuple[ChannelReservation, ...]:
        return tuple(
            res for (app, _ch), res in self._reservations.items() if app == app_id
        )

    # -- whole-application release -----------------------------------------

    def release_application(self, app_id: str) -> None:
        """Vacate every task and route of ``app_id`` (idempotent)."""
        for task_id in list(self.placements_of(app_id)):
            self.vacate(app_id, task_id)
        for reservation in self.reservations_of(app_id):
            self.release_route(app_id, reservation.channel_id)

    # -- fault injection -----------------------------------------------------

    def fail_element(self, element: ProcessingElement | str) -> None:
        """Mark an element faulty: it stops offering resources.

        Resident tasks are *not* evicted automatically — re-allocation
        policy belongs to the manager layer (see
        :mod:`repro.arch.faults`).
        """
        self._failed_elements.add(self._element_name(element))

    def heal_element(self, element: ProcessingElement | str) -> None:
        self._failed_elements.discard(self._element_name(element))

    def fail_link(self, a: Node | str, b: Node | str) -> None:
        name_a, name_b = self._node_name(a), self._node_name(b)
        self.platform.link_between(name_a, name_b)  # validates existence
        self._failed_links.add(frozenset((name_a, name_b)))

    def heal_link(self, a: Node | str, b: Node | str) -> None:
        self._failed_links.discard(
            frozenset((self._node_name(a), self._node_name(b)))
        )

    def is_failed(self, element: ProcessingElement | str) -> bool:
        return self._element_name(element) in self._failed_elements

    @property
    def failed_elements(self) -> frozenset[str]:
        return frozenset(self._failed_elements)

    @property
    def failed_links(self) -> frozenset[frozenset[str]]:
        """Endpoint-name pairs of links currently marked failed."""
        return frozenset(self._failed_links)

    # -- metrics ---------------------------------------------------------------

    def external_fragmentation(self) -> float:
        """Paper Section III-A's external resource fragmentation, in percent.

        The percentage of adjacent element pairs of which exactly one
        element is used, over all adjacent element pairs.
        """
        pairs = self.platform.element_pairs
        if not pairs:
            return 0.0
        mixed = sum(
            1 for a, b in pairs if self.is_used(a) != self.is_used(b)
        )
        return 100.0 * mixed / len(pairs)

    def utilization(self) -> float:
        """Fraction of total platform capacity currently allocated."""
        total = sum(e.capacity.total() for e in self.platform.elements)
        if not total:
            return 0.0
        free = sum(self._free[e.name].total() for e in self.platform.elements)
        return (total - free) / total

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> dict:
        """An opaque, restorable copy of the mutable ledgers."""
        return {
            "free": dict(self._free),
            "occupants": {name: list(occ) for name, occ in self._occupants.items()},
            "vc_used": dict(self._vc_used),
            "bw_used": dict(self._bw_used),
            "reservations": dict(self._reservations),
            "placements": dict(self._placements),
            "wear": dict(self._wear),
            "failed_elements": set(self._failed_elements),
            "failed_links": set(self._failed_links),
        }

    def restore(self, snapshot: dict) -> None:
        self._free = dict(snapshot["free"])
        self._occupants = {
            name: list(occ) for name, occ in snapshot["occupants"].items()
        }
        self._vc_used = dict(snapshot["vc_used"])
        self._bw_used = dict(snapshot["bw_used"])
        self._reservations = dict(snapshot["reservations"])
        self._placements = dict(snapshot["placements"])
        self._wear = dict(snapshot["wear"])
        self._failed_elements = set(snapshot["failed_elements"])
        self._failed_links = set(snapshot["failed_links"])

    # -- helpers ------------------------------------------------------------

    def _element_name(self, element: ProcessingElement | str) -> str:
        name = element if isinstance(element, str) else element.name
        if name not in self._free:
            raise TopologyError(f"unknown element {name!r}")
        return name

    def _node_name(self, node: Node | str) -> str:
        name = node if isinstance(node, str) else node.name
        if name not in self.platform:
            raise TopologyError(f"unknown node {name!r}")
        return name

    def __repr__(self) -> str:
        return (
            f"<AllocationState on {self.platform.name}: "
            f"{len(self.used_elements())}/{len(self.platform.elements)} "
            f"elements used, {len(self._reservations)} routes>"
        )
