"""MapApplication: the incremental mapping algorithm (paper Fig. 5).

The mapping phase assigns each task (with its implementation chosen by
the binding phase) to a concrete processing element.  The paper's
heuristic uses divide-and-conquer over the task graph:

1. Anchor: ``M0`` holds the tasks with exactly one available element
   (fixed I/O interfaces etc.).  If there are none, the task with the
   lowest degree δ(T) is anchored on the element of minimal mapping
   cost — an element "that is likely to become isolated later on, when
   it is not used now".
2. Layering: tasks are grouped into sets ``Ti`` of equal (undirected)
   graph distance ``i`` to the anchors.
3. Per layer, a ring-wise breadth-first platform search gathers
   candidate elements near the elements of the previous layer, one
   extra ring beyond sufficiency; the layer is then solved as a GAP.
   If tasks remain unmapped, the candidate set is grown ring by ring,
   reusing the GAP's incremental state, until either every task is
   mapped or the search exhausts (mapping failure).

The algorithm mutates the :class:`AllocationState` as layers commit;
callers (the manager) wrap the whole allocation attempt in a snapshot
so failures roll back atomically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.implementations import Implementation
from benchmarks.seed_reference.compat import seed_fits_in, seed_runs_on
from repro.apps.taskgraph import Application
from repro.arch.elements import ProcessingElement
from benchmarks.seed_reference.state import AllocationError, AllocationState
from benchmarks.seed_reference.cost import MappingCost
from benchmarks.seed_reference.gap import GapSolver, KnapsackSolver
from repro.core.knapsack import solve_greedy
from benchmarks.seed_reference.search import RingSearch, SparseDistanceMatrix


class MappingError(RuntimeError):
    """The mapping phase could not place every task."""


@dataclass(frozen=True)
class MappingOptions:
    """Tunables of the mapping phase.

    ``extra_rings`` is the paper's "single additional search step"
    performed after enough elements are found (Section III-B);
    ``respect_congestion`` makes the platform search treat saturated
    links as walls; ``max_rings`` bounds the per-layer search radius
    (None = the platform's diameter, i.e. unbounded).
    """

    extra_rings: int = 1
    respect_congestion: bool = True
    max_rings: int | None = None
    knapsack: KnapsackSolver = solve_greedy


@dataclass(frozen=True)
class LayerTrace:
    """What happened while mapping one task layer (for Fig. 2 style
    walk-throughs and the experiment statistics)."""

    index: int
    tasks: tuple[str, ...]
    origins: tuple[str, ...]
    rings_searched: int
    candidates_found: int
    gap_invocations: int
    assignment: dict[str, str]


@dataclass
class MappingResult:
    """The outcome of a successful MapApplication run."""

    placement: dict[str, str]              #: task name -> element name
    anchors: dict[str, str]                #: the M0 part of the placement
    layers: list[LayerTrace] = field(default_factory=list)
    distances: SparseDistanceMatrix = field(default_factory=SparseDistanceMatrix)

    @property
    def rings_searched(self) -> int:
        return sum(layer.rings_searched for layer in self.layers)


def available_elements(
    task: str,
    implementation: Implementation,
    state: AllocationState,
) -> list[ProcessingElement]:
    """All elements that can host the bound implementation *now*.

    This is the paper's ``{e | av(e, t)}``: static compatibility of the
    implementation and sufficient free resources in the current state.
    """
    return [
        element
        for element in state.platform.elements
        if seed_runs_on(implementation, element)
        and state.is_available(element, implementation.requirement)
    ]


def map_application(
    app: Application,
    binding: dict[str, Implementation],
    state: AllocationState,
    cost: MappingCost | None = None,
    options: MappingOptions = MappingOptions(),
    app_id: str | None = None,
) -> MappingResult:
    """Run MapApplication (paper Fig. 5); raises :class:`MappingError`.

    ``binding`` maps every task name to its chosen implementation.
    On success the state holds the new placements; on failure the
    state may hold partial placements of this app — callers should
    snapshot/restore around the attempt (the manager does).
    """
    cost = cost or MappingCost()
    app_id = app_id or app.name
    missing = [t for t in app.tasks if t not in binding]
    if missing:
        raise MappingError(f"no binding for tasks {missing}")

    requirements = {t: binding[t].requirement for t in app.tasks}
    bind_requirements = getattr(cost, "bind_requirements", None)
    if bind_requirements is not None:
        bind_requirements(requirements)

    def compatible(task: str, element: ProcessingElement) -> bool:
        return seed_runs_on(binding[task], element)

    result = MappingResult(placement={}, anchors={})

    # ---- M0: single-option anchors (paper Fig. 5, line 2) ----------------
    anchor_pairs: list[tuple[str, ProcessingElement]] = []
    for task in sorted(app.tasks):
        candidates = available_elements(task, binding[task], state)
        if len(candidates) == 1:
            anchor_pairs.append((task, candidates[0]))

    # ---- empty M0: anchor the minimum-degree task (lines 3-4) ------------
    if not anchor_pairs:
        t0 = min(app.min_degree_tasks())
        candidates = available_elements(t0, binding[t0], state)
        if not candidates:
            raise MappingError(f"no available element for starting task {t0!r}")
        empty_distances = SparseDistanceMatrix()
        e0 = min(
            candidates,
            key=lambda e: (
                cost(app, app_id, t0, e, state, {}, empty_distances),
                e.name,
            ),
        )
        anchor_pairs.append((t0, e0))

    # commit the anchors
    for task, element in anchor_pairs:
        try:
            state.occupy(element, app_id, task, requirements[task])
        except AllocationError as exc:
            raise MappingError(
                f"anchor task {task!r} does not fit on {element.name}: {exc}"
            ) from exc
        result.placement[task] = element.name
        result.anchors[task] = element.name

    # ---- layered traversal (lines 5-15) -----------------------------------
    layers = app.distance_layers(list(result.anchors))
    for index, layer in enumerate(layers):
        if index == 0:
            continue
        tasks = tuple(sorted(t for t in layer if t not in result.placement))
        if not tasks:
            continue
        trace = _map_layer(
            app, app_id, index, tasks, requirements, compatible,
            state, cost, options, result,
        )
        result.layers.append(trace)

    unmapped = [t for t in app.tasks if t not in result.placement]
    if unmapped:
        # distance_layers covers all tasks of a connected application,
        # so this is a defensive check against future model changes.
        raise MappingError(f"tasks never reached by traversal: {unmapped}")
    return result


def _map_layer(
    app: Application,
    app_id: str,
    index: int,
    tasks: tuple[str, ...],
    requirements: dict,
    compatible,
    state: AllocationState,
    cost: MappingCost,
    options: MappingOptions,
    result: MappingResult,
) -> LayerTrace:
    """Map one distance layer ``Ti`` (paper Fig. 5 inner loop)."""
    # E+/E-: elements of mapped tasks with channels into/out of this
    # layer (lines 7-8).  Platform links are full duplex, so both sets
    # seed the same search; keeping them separate here documents the
    # directed derivation.
    task_set = set(tasks)
    origins_in: set[str] = set()
    origins_out: set[str] = set()
    for channel in app.channels.values():
        if channel.source in result.placement and channel.target in task_set:
            origins_out.add(result.placement[channel.source])
        if channel.target in result.placement and channel.source in task_set:
            origins_in.add(result.placement[channel.target])
    origins = sorted(origins_in | origins_out)
    if not origins:
        # isolated layer (no mapped neighbours): fall back to the
        # elements of the previous layer / anchors
        origins = sorted(set(result.placement.values()))

    search = RingSearch(state, origins, options.respect_congestion)

    def pair_cost(task: str, element: ProcessingElement) -> float:
        return cost(
            app, app_id, task, element, state, result.placement,
            search.distances,
        )

    gap = GapSolver(
        tasks, requirements, compatible, pair_cost, state,
        knapsack=options.knapsack,
    )

    def availability(element: ProcessingElement) -> bool:
        free = state.free(element)
        return any(
            compatible(task, element) and seed_fits_in(requirements[task], free)
            for task in tasks
        )

    candidates_found = 0
    gap_invocations = 0

    new_elements = search.gather(
        needed=len(tasks),
        availability=availability,
        extra_rings=options.extra_rings,
        max_rings=options.max_rings,
    )
    candidates_found += len(new_elements)
    gap.solve(new_elements)
    gap_invocations += 1

    while not gap.complete:
        if search.exhausted or (
            options.max_rings is not None and search.ring >= options.max_rings
        ):
            raise MappingError(
                f"layer {index}: search exhausted after {search.ring} rings "
                f"with tasks {list(gap.unmapped)} unmapped"
            )
        ring_elements = search.advance()
        if not ring_elements:
            # keep expanding through element-free rings (router rings);
            # exhaustion is handled at the top of the loop
            continue
        candidates_found += len(ring_elements)
        gap.solve(ring_elements)
        gap_invocations += 1

    # commit the layer (the GAP's tentative loads become occupancy)
    assignment = gap.assignment()
    for task in tasks:
        element_name = assignment.element_of[task]
        try:
            state.occupy(element_name, app_id, task, requirements[task])
        except AllocationError as exc:  # pragma: no cover - defensive
            raise MappingError(
                f"layer {index}: committing {task!r} to {element_name} "
                f"failed: {exc}"
            ) from exc
        result.placement[task] = element_name
    result.distances.merge(search.distances)

    return LayerTrace(
        index=index,
        tasks=tasks,
        origins=tuple(origins),
        rings_searched=search.ring,
        candidates_found=candidates_found,
        gap_invocations=gap_invocations,
        assignment=dict(assignment.element_of),
    )
