"""Binding: regret-ordered implementation selection (paper Section II).

"For the binding phase, we use the approach in [9], which selects for
each task an implementation, ordered by the difference between the
cheapest and second cheapest assignment, as in [10]."  The idea is the
classic *regret* (max-difference) heuristic from the knapsack
literature [10]: tasks whose best option is much better than their
runner-up are bound first, because postponing them risks losing a
uniquely good fit.

Binding checks that "the required resources must be available
*somewhere* in the platform" (Section I) — it does not pick locations
(that is the mapping phase) but it does maintain a provisional
capacity pool so that several tasks cannot all be bound against the
same last free element.  Computation-intensive applications therefore
fail predominantly here when the platform fills up, matching Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.implementations import Implementation
from benchmarks.seed_reference.compat import seed_bottleneck, seed_fits_in, seed_runs_on, seed_sub
from repro.apps.taskgraph import Application
from repro.arch.elements import ProcessingElement
from repro.arch.resources import ResourceVector
from benchmarks.seed_reference.state import AllocationState

#: regret assigned to tasks with a single feasible implementation —
#: they are bound first, before any flexible task eats their capacity.
SINGLE_OPTION_REGRET = float("inf")


class BindingError(RuntimeError):
    """The binding phase found no feasible implementation for a task."""


@dataclass
class BindingResult:
    """Chosen implementation per task, plus provisioning diagnostics."""

    choice: dict[str, Implementation]
    #: element provisionally charged for each task's requirement (a
    #: feasibility witness, *not* a placement — mapping decides that)
    provisional: dict[str, str] = field(default_factory=dict)
    #: binding order with the regret that drove it (diagnostics)
    order: list[tuple[str, float]] = field(default_factory=list)

    def __getitem__(self, task: str) -> Implementation:
        return self.choice[task]

    def __contains__(self, task: str) -> bool:
        return task in self.choice

    def total_cost(self) -> float:
        return sum(impl.cost for impl in self.choice.values())


class _CapacityPool:
    """Provisional free capacities during one binding run."""

    def __init__(self, state: AllocationState):
        self.elements: list[ProcessingElement] = [
            e for e in state.platform.elements if not state.is_failed(e)
        ]
        self.free: dict[str, ResourceVector] = {
            e.name: state.free(e) for e in self.elements
        }

    def feasible_element(self, impl: Implementation) -> ProcessingElement | None:
        """Best-fit element that can still host ``impl``, or None.

        Best fit (minimal leftover on the bottleneck resource) keeps
        the provisional packing tight, so binding only fails when the
        platform is genuinely close to full.
        """
        best: ProcessingElement | None = None
        best_slack = float("inf")
        for element in self.elements:
            if not seed_runs_on(impl, element):
                continue
            free = self.free[element.name]
            if not seed_fits_in(impl.requirement, free):
                continue
            slack = 1.0 - seed_bottleneck(impl.requirement, free)
            if slack < best_slack or (
                slack == best_slack and best is not None and element.name < best.name
            ):
                best = element
                best_slack = slack
        return best

    def reserve(self, element: ProcessingElement, impl: Implementation) -> None:
        self.free[element.name] = seed_sub(self.free[element.name], impl.requirement)


def bind(
    app: Application,
    state: AllocationState,
    quality_weight: float = 0.0,
) -> BindingResult:
    """Select one implementation per task, regret-first.

    ``quality_weight`` biases the per-implementation score by its
    execution time (0 = pure cost, as in the paper's setup; > 0 trades
    cost against speed, an extension hook used by the examples).

    Raises :class:`BindingError` naming the first task that has no
    feasible implementation left.
    """
    pool = _CapacityPool(state)
    result = BindingResult(choice={})
    unbound = sorted(app.tasks)

    def score(impl: Implementation) -> float:
        return impl.cost + quality_weight * impl.execution_time

    while unbound:
        # evaluate regret for every unbound task against the current pool
        best_task: str | None = None
        best_regret = -1.0
        best_option: tuple[Implementation, ProcessingElement] | None = None
        infeasible_task: str | None = None
        for task in unbound:
            options: list[tuple[float, Implementation, ProcessingElement]] = []
            for impl in app.task(task).implementations:
                element = pool.feasible_element(impl)
                if element is not None:
                    options.append((score(impl), impl, element))
            if not options:
                infeasible_task = task
                break
            options.sort(key=lambda item: (item[0], item[1].name))
            if len(options) == 1:
                regret = SINGLE_OPTION_REGRET
            else:
                regret = options[1][0] - options[0][0]
            if regret > best_regret or (
                regret == best_regret and (best_task is None or task < best_task)
            ):
                best_task = task
                best_regret = regret
                best_option = (options[0][1], options[0][2])
        if infeasible_task is not None:
            raise BindingError(
                f"task {infeasible_task!r} of {app.name!r} has no feasible "
                "implementation (insufficient platform resources)"
            )
        assert best_task is not None and best_option is not None
        impl, element = best_option
        pool.reserve(element, impl)
        result.choice[best_task] = impl
        result.provisional[best_task] = element.name
        result.order.append((best_task, best_regret))
        unbound.remove(best_task)

    return result
