"""Seed-faithful helpers for model APIs the live tree has since optimized.

The live ``Implementation.runs_on`` memoizes its (static) answer per
element; the seed recomputed the type/pin match and capacity check on
every call.  The reference pipeline must pay the seed's cost, so its
modules call this free-function copy of the seed logic instead.
"""

from __future__ import annotations

from repro.apps.implementations import Implementation
from repro.apps.taskgraph import Application, Channel
from repro.arch.elements import ProcessingElement
from repro.arch.resources import ResourceError, ResourceVector


def seed_runs_on(impl: Implementation, element: ProcessingElement) -> bool:
    """Verbatim seed ``Implementation.runs_on`` (no memoization)."""
    if impl.target_element is not None:
        if element.name != impl.target_element:
            return False
    elif element.kind != impl.target_kind:
        return False
    return seed_fits_in(impl.requirement, element.capacity)


def seed_fits_in(requirement, capacity) -> bool:
    """Verbatim seed ``ResourceVector.fits_in`` (Mapping-protocol loop)."""
    return all(
        quantity <= capacity[kind] for kind, quantity in requirement._data.items()
    )


def seed_add(a, b):
    """Verbatim seed ``ResourceVector.__add__``."""
    kinds = set(a._data) | set(b._data)
    return ResourceVector({k: a[k] + b[k] for k in kinds})


def seed_sub(a, b):
    """Verbatim seed ``ResourceVector.__sub__``."""
    kinds = set(a._data) | set(b._data)
    result = {}
    for kind in kinds:
        value = a[kind] - b[kind]
        if value < 0:
            raise ResourceError(
                f"subtraction drives {kind!r} negative ({a[kind]} - {b[kind]})"
            )
        result[kind] = value
    return ResourceVector(result)


def seed_bottleneck(requirement, capacity) -> float:
    """Verbatim seed ``ResourceVector.bottleneck``."""
    worst = 0.0
    for kind, quantity in requirement._data.items():
        available = capacity[kind]
        if available == 0:
            return float("inf")
        worst = max(worst, quantity / available)
    return worst


def seed_neighbors(app: Application, task: str) -> tuple[str, ...]:
    """Verbatim seed ``Application.neighbors`` (O(channels) scan)."""
    seen: dict[str, None] = {}
    for channel in app.channels.values():
        if channel.source == task:
            seen.setdefault(channel.target)
        elif channel.target == task:
            seen.setdefault(channel.source)
    return tuple(seen)


def seed_incident_channels(app: Application, task: str) -> tuple[Channel, ...]:
    """Verbatim seed ``Application.incident_channels`` (O(channels) scan)."""
    return tuple(
        c for c in app.channels.values() if task in (c.source, c.target)
    )
