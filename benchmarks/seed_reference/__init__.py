"""Frozen copy of the seed's admission hot paths — benchmark baseline.

The modules in this package are verbatim copies (imports aside) of the
repository's *seed* implementation (commit ``v0``) of the allocation
state, platform search, routers, cost function, binder and mapper —
the code paths the transactional/interned rewrite replaced:

* ``state.py``    — dict ledgers, O(platform) snapshot()/restore()
* ``search.py``   — string-keyed ring search and distance matrix
* ``router.py``   — BFS/Dijkstra hashing node names per hop
* ``cost.py``     — cost function over the string-based state API
* ``binder.py``   — regret binder rescanning the platform every round
* ``mapping.py``  — MapApplication over the above
* ``kairos.py``   — snapshot/restore allocate work-flow (added here;
  a trimmed copy of the seed manager, validation always skipped)

Do **not** modify them: ``bench_admission_churn`` and
``tests/test_admission_churn.py`` measure the live implementation
against this baseline, so the speedup numbers in ``BENCH_admission.json``
stay comparable across PRs.  (The baseline shares the immutable
platform/application model with the live code — those APIs are
backward compatible — so it benefits from any speedups there; the
measured ratio is therefore a *lower* bound on the true gain over the
seed.)
"""
