"""Routing phase: per-channel path search with virtual-channel reservation.

"We use virtual channels to time-share communication resources in the
platform [11].  The less complex breadth-first search is used for
routing, because it has no noticeable performance differences in terms
of successful routes and energy consumption, compared to Dijkstra's
algorithm [11]."  (Paper Section II.)

Both routers are provided: :class:`BfsRouter` (the paper's default)
and :class:`DijkstraRouter` (the comparator, with a congestion-aware
edge cost) — ablation A1 benchmarks them against each other.  A route
claims one virtual channel plus the channel's bandwidth on every
directed link it crosses; channels whose endpoints share an element
need no network resources at all.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

from repro.apps.taskgraph import Application, Channel
from benchmarks.seed_reference.state import AllocationError, AllocationState, ChannelReservation


class RoutingError(RuntimeError):
    """The routing phase could not establish every channel."""


@dataclass
class RoutingResult:
    """Reservations made for one application's channels."""

    routes: dict[str, ChannelReservation] = field(default_factory=dict)
    #: channels whose tasks share an element (no network route needed)
    local_channels: tuple[str, ...] = ()

    @property
    def total_hops(self) -> int:
        return sum(r.hops for r in self.routes.values())

    def hops_per_channel(self) -> float:
        """Average allocated links per channel (the Fig. 8 metric).

        Local channels count as zero-hop allocations.
        """
        count = len(self.routes) + len(self.local_channels)
        if count == 0:
            return 0.0
        return self.total_hops / count


class BaseRouter:
    """Shared channel-iteration and reservation logic."""

    def route_application(
        self,
        app: Application,
        placement: dict[str, str],
        state: AllocationState,
        app_id: str | None = None,
    ) -> RoutingResult:
        """Route every channel of ``app``; raises :class:`RoutingError`.

        Channels are processed by descending bandwidth (fattest first:
        they have the fewest path options), ties broken by name for
        determinism.  Reservations mutate ``state``; the caller is
        responsible for snapshot/rollback on failure.
        """
        app_id = app_id or app.name
        result = RoutingResult()
        local: list[str] = []
        ordered = sorted(
            app.channels.values(), key=lambda c: (-c.bandwidth, c.name)
        )
        for channel in ordered:
            source = placement.get(channel.source)
            target = placement.get(channel.target)
            if source is None or target is None:
                raise RoutingError(
                    f"channel {channel.name!r} has unmapped endpoints"
                )
            if source == target:
                local.append(channel.name)
                continue
            path = self.find_path(state, source, target, channel.bandwidth)
            if path is None:
                raise RoutingError(
                    f"no route for channel {channel.name!r} "
                    f"({source} -> {target}, bw {channel.bandwidth:g})"
                )
            try:
                reservation = state.reserve_route(
                    app_id, channel.name, path, channel.bandwidth
                )
            except AllocationError as exc:  # pragma: no cover - find_path
                raise RoutingError(str(exc)) from exc   # guarantees capacity
            result.routes[channel.name] = reservation
        result.local_channels = tuple(local)
        return result

    def find_path(
        self,
        state: AllocationState,
        source: str,
        target: str,
        bandwidth: float,
    ) -> list[str] | None:
        raise NotImplementedError


class BfsRouter(BaseRouter):
    """Breadth-first (minimum-hop) routing — the paper's default."""

    def find_path(
        self,
        state: AllocationState,
        source: str,
        target: str,
        bandwidth: float,
    ) -> list[str] | None:
        platform = state.platform
        parents: dict[str, str | None] = {source: None}
        queue: deque[str] = deque([source])
        while queue:
            current = queue.popleft()
            if current == target:
                return _unwind(parents, target)
            for neighbor in platform.neighbors(current):
                if neighbor.name in parents:
                    continue
                if not state.can_traverse(current, neighbor.name, bandwidth):
                    continue
                parents[neighbor.name] = current
                queue.append(neighbor.name)
        return None


class DijkstraRouter(BaseRouter):
    """Congestion-aware shortest-path routing (the [11] comparator).

    Edge cost is ``1 + congestion_weight * utilization`` of the
    directed link, so lightly loaded detours are preferred over
    saturated shortcuts.  With ``congestion_weight = 0`` this reduces
    to BFS up to tie-breaking.
    """

    def __init__(self, congestion_weight: float = 1.0):
        if congestion_weight < 0:
            raise ValueError("congestion_weight must be non-negative")
        self.congestion_weight = congestion_weight

    def _edge_cost(self, state: AllocationState, a: str, b: str) -> float:
        link = state.platform.link_between(a, b)
        used = link.bandwidth - state.bandwidth_free(a, b)
        utilization = used / link.bandwidth
        return 1.0 + self.congestion_weight * utilization

    def find_path(
        self,
        state: AllocationState,
        source: str,
        target: str,
        bandwidth: float,
    ) -> list[str] | None:
        platform = state.platform
        best: dict[str, float] = {source: 0.0}
        parents: dict[str, str | None] = {source: None}
        heap: list[tuple[float, str]] = [(0.0, source)]
        done: set[str] = set()
        while heap:
            cost, current = heapq.heappop(heap)
            if current in done:
                continue
            done.add(current)
            if current == target:
                return _unwind(parents, target)
            for neighbor in platform.neighbors(current):
                if neighbor.name in done:
                    continue
                if not state.can_traverse(current, neighbor.name, bandwidth):
                    continue
                candidate = cost + self._edge_cost(state, current, neighbor.name)
                if candidate < best.get(neighbor.name, float("inf")):
                    best[neighbor.name] = candidate
                    parents[neighbor.name] = current
                    heapq.heappush(heap, (candidate, neighbor.name))
        return None


def _unwind(parents: dict[str, str | None], target: str) -> list[str]:
    path = [target]
    while parents[path[-1]] is not None:
        path.append(parents[path[-1]])  # type: ignore[arg-type]
    path.reverse()
    return path


def release_routes(
    state: AllocationState, app_id: str, result: RoutingResult
) -> None:
    """Release every reservation in ``result`` (failure cleanup)."""
    for channel_name in list(result.routes):
        state.release_route(app_id, channel_name)
        del result.routes[channel_name]
