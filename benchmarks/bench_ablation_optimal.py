"""A3 — ablation: heuristic mapping quality vs branch-and-bound optimum.

The paper's future work: "we compare these results with an ILP
formulation to determine the quality of the resource allocations."
This benchmark realises that comparison on small instances: the
incremental heuristic's total communication distance against the exact
optimum, plus the first-fit and random baselines for context.
"""

from __future__ import annotations

from repro.apps import GeneratorConfig, generate
from repro.arch import AllocationState, mesh
from repro.baselines import (
    annealed_map,
    communication_distance,
    first_fit_map,
    optimal_map,
    random_map,
)
from repro.binding import bind
from repro.core import BOTH, MappingCost, map_application

SEEDS = range(10)


def _distances():
    heuristic = optimal = first_fit = randomised = annealed = 0.0
    instances = 0
    for seed in SEEDS:
        app = generate(
            GeneratorConfig(inputs=1, internals=3, outputs=1,
                            utilization_low=0.4, utilization_high=0.8,
                            extra_edge_probability=0.3),
            seed=seed,
        )

        def fresh():
            return AllocationState(mesh(3, 3))

        state = fresh()
        try:
            binding = bind(app, state)
            best = optimal_map(app, binding.choice, state)
        except Exception:
            continue
        state_h = fresh()
        result = map_application(app, binding.choice, state_h,
                                 cost=MappingCost(BOTH))
        state_f = fresh()
        ff = first_fit_map(app, binding.choice, state_f)
        state_r = fresh()
        rnd = random_map(app, binding.choice, state_r, seed=seed)
        state_sa = fresh()
        sa = annealed_map(app, binding.choice, state_sa, seed=seed,
                          iterations=1200)

        heuristic += communication_distance(app, result.placement, state_h)
        optimal += best.cost
        first_fit += communication_distance(app, ff.placement, state_f)
        randomised += communication_distance(app, rnd.placement, state_r)
        annealed += communication_distance(app, sa.placement, state_sa)
        instances += 1
    return heuristic, optimal, first_fit, randomised, annealed, instances


def bench_ablation_optimal(benchmark):
    (heuristic, optimal, first_fit, randomised, annealed,
     instances) = benchmark.pedantic(_distances, iterations=1, rounds=1)
    print()
    print(f"instances: {instances}")
    print(f"total communication distance — optimal: {optimal:.0f}, "
          f"heuristic: {heuristic:.0f}, annealed: {annealed:.0f}, "
          f"first-fit: {first_fit:.0f}, random: {randomised:.0f}")

    assert instances >= 5
    assert heuristic >= optimal - 1e-9, "optimum must lower-bound everything"
    # the heuristic should sit much closer to optimal than random does
    assert heuristic <= optimal * 1.6 + 1e-9, (
        f"heuristic {heuristic:.0f} strayed from optimum {optimal:.0f}"
    )
    assert heuristic < randomised, "heuristic must beat random placement"
    assert annealed >= optimal - 1e-9, "optimum must lower-bound annealing"
