"""A1 — ablation: BFS vs Dijkstra routing.

The paper (Section II, citing [11]): "The less complex breadth-first
search is used for routing, because it has no noticeable performance
differences in terms of successful routes and energy consumption,
compared to Dijkstra's algorithm."  We verify that claim on the
communication datasets: admission counts and mean hops per channel of
the two routers must agree closely.
"""

from __future__ import annotations

from repro.apps.datasets import DatasetSpec
from repro.core import BOTH
from repro.experiments import prepare_dataset
from repro.experiments.harness import run_dataset_sequences
from repro.manager import Kairos
from repro.routing import BfsRouter, DijkstraRouter


def _run(router_factory, prepared, platform, sequences):
    """Admission count and mean hops for one router over sequences."""
    import random

    admitted = 0
    attempts = 0
    hops = []
    for index in range(sequences):
        manager = Kairos(platform, weights=BOTH, validation_mode="skip",
                         router=router_factory())
        rng = random.Random(index)
        order = list(prepared.applications)
        rng.shuffle(order)
        controller = manager.controller
        for position, app in enumerate(order):
            attempts += 1
            decision = controller.admit(app, f"p{position}")
            if not decision.admitted:
                continue
            admitted += 1
            hops.append(decision.layout.hops_per_channel())
    mean_hops = sum(hops) / len(hops) if hops else 0.0
    return admitted, attempts, mean_hops


def bench_ablation_routing(benchmark, scale, platform):
    prepared = prepare_dataset(
        DatasetSpec("communication", "medium"),
        applications=scale.applications, seed=0, platform=platform,
    )

    def run_both():
        bfs = _run(BfsRouter, prepared, platform, scale.sequences)
        dijkstra = _run(
            lambda: DijkstraRouter(congestion_weight=1.0),
            prepared, platform, scale.sequences,
        )
        return bfs, dijkstra

    (bfs, dijkstra) = benchmark.pedantic(run_both, iterations=1, rounds=1)
    print()
    print(f"BFS:      admitted {bfs[0]}/{bfs[1]}, hops/channel {bfs[2]:.2f}")
    print(f"Dijkstra: admitted {dijkstra[0]}/{dijkstra[1]}, "
          f"hops/channel {dijkstra[2]:.2f}")

    # "no noticeable performance differences": within 15% on admissions
    if bfs[0] and dijkstra[0]:
        ratio = dijkstra[0] / bfs[0]
        assert 0.85 <= ratio <= 1.20, f"admission ratio {ratio:.2f}"
