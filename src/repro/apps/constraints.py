"""Performance constraints and the latency-to-throughput conversion.

The validation phase checks "the performance constraints given in the
application specification ... against the performance provided by the
execution layout" (paper Section I).  Following Moreira & Bekooij [12],
latency constraints are *expressed as throughput constraints*: for a
self-timed, periodically scheduled dataflow graph, the latency along a
pipeline of ``k`` actors is bounded by ``k`` periods, so a latency
bound ``L`` over a ``k``-stage path induces the period bound
``mu <= L / k``, i.e. a throughput floor of ``k / L``.
"""

from __future__ import annotations

from dataclasses import dataclass


class ConstraintError(ValueError):
    """Raised for malformed constraint specifications."""


@dataclass(frozen=True)
class ThroughputConstraint:
    """The application must sustain at least ``min_throughput`` firings/s.

    Throughput is measured at a reference task (usually the output
    task); ``None`` means "the graph's natural output actor".
    """

    min_throughput: float
    reference_task: str | None = None

    def __post_init__(self) -> None:
        if self.min_throughput <= 0:
            raise ConstraintError("throughput constraint must be positive")

    def satisfied_by(self, throughput: float) -> bool:
        return throughput >= self.min_throughput

    def describe(self) -> str:
        where = self.reference_task or "output"
        return f"throughput >= {self.min_throughput:g} firings/s at {where}"


@dataclass(frozen=True)
class LatencyConstraint:
    """End-to-end latency along ``path`` must not exceed ``max_latency``.

    ``path`` is the ordered task chain the latency is measured over
    (source to sink).  :meth:`as_throughput` performs the conversion of
    [12]; validation only ever evaluates throughput constraints.
    """

    max_latency: float
    path: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.max_latency <= 0:
            raise ConstraintError("latency constraint must be positive")
        if len(self.path) < 2:
            raise ConstraintError("latency path needs at least two tasks")
        if len(set(self.path)) != len(self.path):
            raise ConstraintError("latency path must not repeat tasks")

    @property
    def stages(self) -> int:
        return len(self.path)

    def as_throughput(self) -> ThroughputConstraint:
        """Convert to the induced throughput floor ``stages / max_latency``.

        In a self-timed schedule with period ``mu``, a token traverses
        a ``k``-stage pipeline in at most ``k * mu``; requiring
        ``k * mu <= L`` yields throughput ``1/mu >= k / L``.
        """
        return ThroughputConstraint(
            min_throughput=self.stages / self.max_latency,
            reference_task=self.path[-1],
        )

    def describe(self) -> str:
        return (
            f"latency({self.path[0]}..{self.path[-1]}, {self.stages} stages) "
            f"<= {self.max_latency:g}"
        )


PerformanceConstraint = ThroughputConstraint | LatencyConstraint


def normalize(constraints) -> list[ThroughputConstraint]:
    """Reduce a mixed constraint list to pure throughput constraints."""
    normalized = []
    for constraint in constraints:
        if isinstance(constraint, LatencyConstraint):
            normalized.append(constraint.as_throughput())
        elif isinstance(constraint, ThroughputConstraint):
            normalized.append(constraint)
        else:
            raise ConstraintError(f"unknown constraint type {constraint!r}")
    return normalized
