"""Application substrate: task graphs, implementations, constraints,
the TGFF-like generator, the six paper datasets and the beamforming
case study."""

from repro.apps.beamforming import beamforming_application
from repro.apps.constraints import (
    ConstraintError,
    LatencyConstraint,
    PerformanceConstraint,
    ThroughputConstraint,
    normalize,
)
from repro.apps.datasets import (
    ALL_SPECS,
    DatasetSpec,
    make_dataset,
    paper_datasets,
)
from repro.apps.generator import GenerationError, GeneratorConfig, generate
from repro.apps.implementations import (
    Implementation,
    ImplementationError,
    dsp_implementation,
    pinned_implementation,
)
from repro.apps.taskgraph import Application, Channel, Task, TaskGraphError

__all__ = [
    "ALL_SPECS",
    "Application",
    "Channel",
    "ConstraintError",
    "DatasetSpec",
    "GenerationError",
    "GeneratorConfig",
    "Implementation",
    "ImplementationError",
    "LatencyConstraint",
    "PerformanceConstraint",
    "Task",
    "TaskGraphError",
    "ThroughputConstraint",
    "beamforming_application",
    "dsp_implementation",
    "generate",
    "make_dataset",
    "normalize",
    "paper_datasets",
    "pinned_implementation",
]
