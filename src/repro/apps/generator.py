"""Synthetic application generator (the paper's in-house TGFF analogue).

Section IV: "We use an in-house developed application generator, which
is similar to TGFF [17] ... the structure of an application can be
specified with a number of input, internal, and output tasks.  Also the
maximum in-degree and out-degree of tasks gives direction to the
generated communication structure.  For each task, we generate a
number of task implementations, annotated with bounded random resource
requirements."

The generator builds layered DAGs (inputs -> internals -> outputs),
guarantees (undirected) connectivity, honours in/out-degree caps, and
annotates every task with 1..n implementations whose requirements are
a bounded-random fraction of the target element type's capacity:
computation-intensive tasks "use between 70% and 100% of the element's
resources, and tasks in communication oriented applications use
between 10% and 70%".

Everything is deterministic for a given seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.arch.elements import ElementType, default_capacity
from repro.arch.resources import ResourceVector, fraction_of
from repro.apps.implementations import Implementation
from repro.apps.taskgraph import Application, Channel, Task


class GenerationError(RuntimeError):
    """Raised when a configuration cannot yield a valid application."""


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the synthetic generator.

    The defaults describe a communication-oriented, medium application;
    the dataset factory (:mod:`repro.apps.datasets`) derives the six
    paper datasets from this.
    """

    #: task structure
    inputs: int = 1
    internals: int = 4
    outputs: int = 1
    max_in_degree: int = 3
    max_out_degree: int = 3
    #: probability of adding an optional extra edge beyond the spanning
    #: structure, evaluated per candidate pair
    extra_edge_probability: float = 0.25

    #: implementations
    min_implementations: int = 1
    max_implementations: int = 3
    #: element types an unpinned implementation may target, with weights
    target_kinds: tuple[tuple[ElementType, float], ...] = (
        (ElementType.DSP, 0.92),
        (ElementType.GPP, 0.05),
        (ElementType.FPGA, 0.03),
    )
    #: requirement as a bounded-random fraction of the target capacity
    utilization_low: float = 0.10
    utilization_high: float = 0.70

    #: channels
    bandwidth_low: float = 2.0
    bandwidth_high: float = 20.0

    #: execution time per firing (feeds the SDF validation model)
    execution_time_low: float = 0.5
    execution_time_high: float = 4.0

    #: I/O pinning: each input/output task is, with this probability,
    #: given a single implementation pinned to one of ``io_elements``
    #: ("locations may be fixed in the binding phase", Section III-A).
    pin_io_probability: float = 0.0
    io_elements: tuple[str, ...] = ()
    #: resource vector of a pinned I/O implementation
    io_requirement: ResourceVector = field(
        default_factory=lambda: ResourceVector(io=1, memory=2)
    )

    def __post_init__(self) -> None:
        if self.inputs < 1 or self.outputs < 0 or self.internals < 0:
            raise GenerationError("need >=1 input and >=0 internal/output tasks")
        if self.total_tasks < 1:
            raise GenerationError("application must have at least one task")
        if self.max_in_degree < 1 or self.max_out_degree < 1:
            raise GenerationError("degree caps must be at least 1")
        if not 0 < self.utilization_low <= self.utilization_high <= 1:
            raise GenerationError("utilization bounds must satisfy 0<lo<=hi<=1")
        if self.min_implementations < 1:
            raise GenerationError("tasks need at least one implementation")
        if self.min_implementations > self.max_implementations:
            raise GenerationError("min_implementations > max_implementations")
        if self.pin_io_probability > 0 and not self.io_elements:
            raise GenerationError("pin_io_probability set but no io_elements")

    @property
    def total_tasks(self) -> int:
        return self.inputs + self.internals + self.outputs


def generate(config: GeneratorConfig, seed: int = 0, name: str | None = None) -> Application:
    """Generate one application from ``config`` deterministically."""
    rng = random.Random(seed)
    app = Application(name or f"app_{seed}")

    roles = (
        ["input"] * config.inputs
        + ["internal"] * config.internals
        + ["output"] * config.outputs
    )
    task_names = [f"t{i}" for i in range(len(roles))]

    for task_name, role in zip(task_names, roles):
        implementations = _implementations_for(config, rng, task_name, role)
        app.add_task(Task(task_name, tuple(implementations), role=role))

    _generate_edges(config, rng, app, task_names, roles)
    return app


def _implementations_for(
    config: GeneratorConfig, rng: random.Random, task_name: str, role: str
) -> list[Implementation]:
    """Implementations for one task, possibly pinned for I/O roles."""
    if (
        role in ("input", "output")
        and config.io_elements
        and rng.random() < config.pin_io_probability
    ):
        element = rng.choice(config.io_elements)
        return [
            Implementation(
                name=f"{task_name}_io",
                requirement=config.io_requirement,
                execution_time=rng.uniform(
                    config.execution_time_low, config.execution_time_high
                ),
                cost=rng.uniform(0.5, 1.5),
                target_element=element,
            )
        ]

    count = rng.randint(config.min_implementations, config.max_implementations)
    kinds, weights = zip(*config.target_kinds)
    implementations = []
    chosen_kinds = set()
    for index in range(count):
        kind = rng.choices(kinds, weights=weights)[0]
        if kind in chosen_kinds:
            # one implementation per element type per task keeps the
            # binding problem meaningful without duplicates
            continue
        chosen_kinds.add(kind)
        utilization = rng.uniform(config.utilization_low, config.utilization_high)
        requirement = fraction_of(default_capacity(kind), utilization)
        implementations.append(
            Implementation(
                name=f"{task_name}_v{index}",
                requirement=requirement,
                execution_time=rng.uniform(
                    config.execution_time_low, config.execution_time_high
                ),
                # cost correlates loosely with utilization: hungrier
                # implementations tend to be faster but pricier
                cost=rng.uniform(0.5, 1.5) * (0.5 + utilization),
                target_kind=kind,
            )
        )
    return implementations


def _generate_edges(
    config: GeneratorConfig,
    rng: random.Random,
    app: Application,
    task_names: list[str],
    roles: list[str],
) -> None:
    """Layered DAG edges honouring the degree caps, then connectivity."""
    in_degree = {name: 0 for name in task_names}
    out_degree = {name: 0 for name in task_names}
    counter = 0

    def add_edge(source: str, target: str) -> None:
        nonlocal counter
        app.add_channel(
            Channel(
                name=f"c{counter}",
                source=source,
                target=target,
                bandwidth=rng.uniform(config.bandwidth_low, config.bandwidth_high),
            )
        )
        in_degree[target] += 1
        out_degree[source] += 1
        counter += 1

    # 1. spanning structure: every non-input task gets >= 1 predecessor
    #    among strictly earlier tasks (inputs have none by construction).
    for position, (name, role) in enumerate(zip(task_names, roles)):
        if role == "input" or position == 0:
            continue
        candidates = [
            earlier
            for earlier in task_names[:position]
            if out_degree[earlier] < config.max_out_degree
            and roles[task_names.index(earlier)] != "output"
        ]
        if not candidates:
            # all earlier tasks saturated: steal capacity by picking the
            # least-loaded non-output predecessor anyway (cap softly).
            candidates = [
                earlier
                for earlier in task_names[:position]
                if roles[task_names.index(earlier)] != "output"
            ]
            if not candidates:
                raise GenerationError(
                    "no admissible predecessor; increase max_out_degree"
                )
        # prefer predecessors that still have no successor, which keeps
        # the graph connected with fewer fix-ups
        dangling = [c for c in candidates if out_degree[c] == 0]
        source = rng.choice(dangling or candidates)
        add_edge(source, name)

    # 2. every input/internal task must feed someone
    for position, (name, role) in enumerate(zip(task_names, roles)):
        if role == "output" or out_degree[name] > 0:
            continue
        later = [
            target
            for target in task_names[position + 1:]
            if in_degree[target] < config.max_in_degree
        ]
        if not later:
            later = task_names[position + 1:]
        if not later:
            continue  # single-task or trailing-input corner case
        add_edge(name, rng.choice(later))

    # 3. optional density edges within the degree caps
    for i, source in enumerate(task_names):
        if roles[i] == "output":
            continue
        for target in task_names[i + 1:]:
            if roles[task_names.index(target)] == "input":
                continue
            if out_degree[source] >= config.max_out_degree:
                break
            if in_degree[target] >= config.max_in_degree:
                continue
            if app.channels_between(source, target):
                continue
            if rng.random() < config.extra_edge_probability:
                add_edge(source, target)

    # 4. connectivity fix-up: bridge any remaining undirected components
    #    (rare; happens when inputs feed disjoint subgraphs).
    components = _components(app)
    while len(components) > 1:
        first, second = components[0], components[1]
        source = min(first)
        target = min(second)
        # direction: earlier position feeds later to preserve the DAG
        if task_names.index(source) > task_names.index(target):
            source, target = target, source
        add_edge(source, target)
        components = _components(app)


def _components(app: Application) -> list[set[str]]:
    remaining = set(app.tasks)
    components = []
    while remaining:
        seed_task = min(remaining)
        seen = {seed_task}
        stack = [seed_task]
        while stack:
            current = stack.pop()
            for neighbor in app.neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        components.append(seen)
        remaining -= seen
    return sorted(components, key=min)
