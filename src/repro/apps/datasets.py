"""The six synthetic datasets of the paper's evaluation (Section IV).

"We generate applications that are either computational intensive or
communication oriented.  Tasks in the first set use between 70% and
100% of the element's resources, and tasks in communication oriented
applications use between 10% and 70% ... we categorize applications
based on their size, namely small (<6 tasks), medium (6-10 tasks) and
large (11-16 tasks) applications."

Each dataset initially contains 100 applications; the experiment
harness then filters out applications "that cannot be mapped to an
empty platform", mirroring the paper's protocol.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.apps.generator import GeneratorConfig, generate
from repro.apps.taskgraph import Application

#: size class -> inclusive total-task bounds
SIZE_BOUNDS = {
    "small": (3, 5),
    "medium": (6, 10),
    "large": (11, 16),
}

#: profile -> utilization bounds (fraction of an element's capacity)
PROFILE_UTILIZATION = {
    "communication": (0.10, 0.70),
    "computation": (0.70, 1.00),
}

#: profile -> channel bandwidth bounds.  Communication-oriented
#: applications move more data, which is what lets them "time-share
#: elements, eventually resulting in communication bottlenecks"; the
#: calibration (documented in EXPERIMENTS.md) makes NoC bandwidth the
#: binding constraint for communication datasets while computation
#: datasets exhaust processing elements first, reproducing Table I's
#: failure-distribution pattern.
PROFILE_BANDWIDTH = {
    "communication": (23.0, 60.0),
    "computation": (3.0, 16.0),
}

#: default I/O anchoring on CRISP: input/output streams enter via the
#: FPGA or the ARM ("the application requires specific interfaces for
#: input and output data streams", Section III-A).
DEFAULT_IO_ELEMENTS = ("fpga", "arm")


@dataclass(frozen=True)
class DatasetSpec:
    """One of the six dataset identities of Table I."""

    profile: str  # "communication" | "computation"
    size: str     # "small" | "medium" | "large"

    def __post_init__(self) -> None:
        if self.profile not in PROFILE_UTILIZATION:
            raise ValueError(f"unknown profile {self.profile!r}")
        if self.size not in SIZE_BOUNDS:
            raise ValueError(f"unknown size {self.size!r}")

    @property
    def name(self) -> str:
        return f"{self.profile}_{self.size}"

    @property
    def label(self) -> str:
        """Table I row label, e.g. ``Communication Small``."""
        return f"{self.profile.capitalize()} {self.size.capitalize()}"


#: Table I row order.
ALL_SPECS: tuple[DatasetSpec, ...] = tuple(
    DatasetSpec(profile, size)
    for profile in ("communication", "computation")
    for size in ("small", "medium", "large")
)


def config_for(
    spec: DatasetSpec,
    rng: random.Random,
    io_elements: tuple[str, ...] = DEFAULT_IO_ELEMENTS,
    pin_io_probability: float = 0.35,
) -> GeneratorConfig:
    """Draw one application-shape configuration for ``spec``."""
    low, high = SIZE_BOUNDS[spec.size]
    total = rng.randint(low, high)
    inputs = rng.randint(1, max(1, total // 4))
    outputs = rng.randint(1, max(1, total // 4))
    # keep at least one internal task whenever the budget allows
    while inputs + outputs >= total and (inputs > 1 or outputs > 1):
        if inputs >= outputs and inputs > 1:
            inputs -= 1
        elif outputs > 1:
            outputs -= 1
    internals = max(0, total - inputs - outputs)
    util_low, util_high = PROFILE_UTILIZATION[spec.profile]
    bw_low, bw_high = PROFILE_BANDWIDTH[spec.profile]
    return GeneratorConfig(
        inputs=inputs,
        internals=internals,
        outputs=outputs,
        max_in_degree=3,
        max_out_degree=3,
        extra_edge_probability=0.35 if spec.profile == "communication" else 0.20,
        min_implementations=1,
        max_implementations=3,
        utilization_low=util_low,
        utilization_high=util_high,
        bandwidth_low=bw_low,
        bandwidth_high=bw_high,
        pin_io_probability=pin_io_probability,
        io_elements=io_elements,
    )


def make_dataset(
    spec: DatasetSpec,
    count: int = 100,
    seed: int = 0,
    io_elements: tuple[str, ...] = DEFAULT_IO_ELEMENTS,
    pin_io_probability: float = 0.35,
) -> list[Application]:
    """Generate the ``count`` applications of one dataset.

    Deterministic: the dataset is fully determined by (spec, count,
    seed).  Application names encode their dataset and index.
    """
    # str hashes are salted per interpreter run; use a stable digest so
    # datasets are reproducible across processes.
    digest = hashlib.sha256(f"{spec.name}/{seed}".encode()).digest()
    rng = random.Random(int.from_bytes(digest[:8], "big"))
    applications = []
    for index in range(count):
        config = config_for(spec, rng, io_elements, pin_io_probability)
        app = generate(
            config,
            seed=rng.randrange(2**31),
            name=f"{spec.name}_{index:03d}",
        )
        applications.append(app)
    return applications


def paper_datasets(
    count: int = 100,
    seed: int = 0,
    io_elements: tuple[str, ...] = DEFAULT_IO_ELEMENTS,
) -> dict[str, list[Application]]:
    """All six Table I datasets, keyed by ``profile_size``."""
    return {
        spec.name: make_dataset(spec, count, seed, io_elements)
        for spec in ALL_SPECS
    }
