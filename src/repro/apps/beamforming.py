"""The beamforming case study (paper Section IV-A, Fig. 6 overlay).

"Containing 53 tasks in a tree-like structure, this application
requires all 45 DSPs available in the platform, and can thus be
considered to be a difficult mapping problem."

The paper does not publish the application's internals, so we
reconstruct a structurally equivalent phased-array beamformer whose
natural layout matches the CRISP package chain:

* 4 antenna-array *input* tasks, pinned to the FPGA's I/O interfaces
  (fixed locations — these anchor the mapping's ``T0``),
* a 5-stage *distribution backbone* ``dist0..dist4`` (one DSP each)
  that pipelines the sample stream across the chip,
* 35 FIR filter tasks organised as 5 *delay-and-sum chains* of 7 taps
  (``fir<p>_0 -> fir<p>_1 -> ... -> fir<p>_6``), one chain hanging off
  each backbone stage — the classic systolic beamformer structure,
* a 5-stage *systolic reduction chain* ``acc0..acc4`` (one DSP each)
  in which stage ``p`` combines its chain's result with the partial
  beam from stage ``p-1``,
* 2 sample-buffer tasks on memory tiles and 1 control + 1 output task
  on the ARM.

DSP tasks: 5 + 35 + 5 = 45 — every DSP in the platform is required.
Total tasks: 4 + 45 + 2 + 2 = 53.  The graph is "tree-like": a
distribution spine fanning into chains that a reduction spine gathers
back up.  Only a handful of logical streams must cross each package
boundary (backbone, chain hand-off, partial beam) *if* the mapper
keeps each stage's chain together; a scattered mapping multiplies the
boundary crossings far beyond the NoC's virtual-channel budget.  The
application is therefore routable exactly in the regime the Fig. 10
admission-map experiment studies.
"""

from __future__ import annotations

from repro.arch.elements import ElementType
from repro.arch.resources import ResourceVector
from repro.apps.constraints import LatencyConstraint, ThroughputConstraint
from repro.apps.implementations import Implementation
from repro.apps.taskgraph import Application, Task

#: structural constants (change together; validated in tests)
INPUTS = 4
STAGES = 5                     #: backbone/reduction stages (= CRISP packages)
FIRS_PER_STAGE = 7
FIRS = STAGES * FIRS_PER_STAGE                 # 35
DSP_TASKS = STAGES + FIRS + STAGES             # 45
TOTAL_TASKS = INPUTS + DSP_TASKS + 2 + 2       # 53


def _dsp_task(name: str, cycles: int, memory: int, time: float) -> Task:
    """A task with a single DSP implementation close to a full tile."""
    return Task(
        name,
        (
            Implementation(
                name=f"{name}_dsp",
                requirement=ResourceVector(cycles=cycles, memory=memory),
                execution_time=time,
                cost=1.0,
                target_kind=ElementType.DSP,
            ),
        ),
    )


def beamforming_application(
    channel_bandwidth: float = 6.0,
    throughput_floor: float = 0.02,
) -> Application:
    """Build the 53-task beamformer.

    ``channel_bandwidth`` is the sustained rate of the sample streams.
    DSP tasks request 80-95 of the 100 cycles a DSP offers, so no two
    of the 45 DSP tasks can share a tile.
    """
    app = Application("beamforming")

    # control on the ARM, output stream leaving via the ARM's I/O
    control = app.add_task(
        Task(
            "control",
            (
                Implementation(
                    name="control_arm",
                    requirement=ResourceVector(cycles=10, memory=8),
                    execution_time=0.5,
                    cost=1.0,
                    target_kind=ElementType.GPP,
                ),
            ),
            role="internal",
        )
    )
    output = app.add_task(
        Task(
            "output",
            (
                Implementation(
                    name="output_arm",
                    requirement=ResourceVector(io=1, memory=4),
                    execution_time=0.5,
                    cost=1.0,
                    target_element="arm",
                ),
            ),
            role="output",
        )
    )

    # antenna inputs pinned to the FPGA (fixed I/O interface locations)
    inputs = []
    for index in range(INPUTS):
        task = app.add_task(
            Task(
                f"ant{index}",
                (
                    Implementation(
                        name=f"ant{index}_fpga",
                        requirement=ResourceVector(io=1, memory=2),
                        execution_time=0.5,
                        cost=1.0,
                        target_element="fpga",
                    ),
                ),
                role="input",
            )
        )
        inputs.append(task)
        app.connect(control, task, bandwidth=1.0)

    # distribution backbone: all antennas feed stage 0, stages chain on
    stages = []
    for index in range(STAGES):
        task = app.add_task(
            _dsp_task(f"dist{index}", cycles=80, memory=20, time=1.0)
        )
        stages.append(task)
    for antenna in inputs:
        app.connect(antenna, stages[0], bandwidth=channel_bandwidth)
    for index in range(STAGES - 1):
        app.connect(stages[index], stages[index + 1],
                    bandwidth=channel_bandwidth)

    # FIR chains: 7 taps per backbone stage, systolic delay-and-sum
    firs: list[list[Task]] = []
    for stage_index in range(STAGES):
        chain = []
        for fir_index in range(FIRS_PER_STAGE):
            task = app.add_task(
                _dsp_task(
                    f"fir{stage_index}_{fir_index}",
                    cycles=85, memory=24, time=2.0,
                )
            )
            if fir_index == 0:
                app.connect(stages[stage_index], task,
                            bandwidth=channel_bandwidth)
            else:
                app.connect(chain[-1], task, bandwidth=channel_bandwidth)
            chain.append(task)
        firs.append(chain)

    # systolic reduction: acc_p sums its chain's output with the
    # partial beam from acc_{p-1}
    accumulators = []
    for stage_index in range(STAGES):
        task = app.add_task(
            _dsp_task(f"acc{stage_index}", cycles=90, memory=16, time=1.5)
        )
        accumulators.append(task)
        app.connect(firs[stage_index][-1], task, bandwidth=channel_bandwidth)
        if stage_index > 0:
            app.connect(accumulators[stage_index - 1], task,
                        bandwidth=channel_bandwidth)

    # double buffering on memory tiles, then out through the ARM
    buffers = []
    for index in range(2):
        task = app.add_task(
            Task(
                f"buf{index}",
                (
                    Implementation(
                        name=f"buf{index}_mem",
                        requirement=ResourceVector(memory=96),
                        execution_time=0.5,
                        cost=1.0,
                        target_kind=ElementType.MEMORY,
                    ),
                ),
            )
        )
        buffers.append(task)
    app.connect(accumulators[-1], buffers[0], bandwidth=channel_bandwidth)
    app.connect(buffers[0], buffers[1], bandwidth=channel_bandwidth)
    app.connect(buffers[1], output, bandwidth=channel_bandwidth)

    # performance constraints: a throughput floor at the output and an
    # end-to-end latency bound over the longest pipeline
    app.add_constraint(
        ThroughputConstraint(min_throughput=throughput_floor,
                             reference_task="output")
    )
    app.add_constraint(
        LatencyConstraint(
            max_latency=2000.0,
            path=("ant0", "dist0", "dist1", "dist2", "dist3", "dist4",
                  "fir4_0", "fir4_1", "fir4_2", "fir4_3", "fir4_4",
                  "fir4_5", "fir4_6", "acc4", "buf0", "buf1", "output"),
        )
    )

    assert len(app) == TOTAL_TASKS, f"expected {TOTAL_TASKS} tasks, got {len(app)}"
    return app
