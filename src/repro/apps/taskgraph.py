"""Application model: annotated task graphs.

An application ``A = <T, C>`` is a set of tasks connected by directed
communication channels (paper Section III).  The application
specification produced by the design-time partitioning phase contains
"an annotated task graph and possibly some performance constraints";
each task carries one or more candidate implementations
(:mod:`repro.apps.implementations`).

The mapping algorithm needs a handful of graph operations on tasks:
undirected degree (for the δ(T) starting-task rule), undirected
distance layers (the neighbourhoods ``Ni`` of the anchor set), and the
directed predecessor/successor views used to orient the platform
search.  They are all provided here without any external graph
library.
"""

from __future__ import annotations

import hashlib
from collections import deque
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.apps.constraints import PerformanceConstraint
from repro.apps.implementations import Implementation


class TaskGraphError(ValueError):
    """Raised for malformed application construction or queries."""


@dataclass(frozen=True)
class Task:
    """A schedulable unit of the application.

    ``implementations`` are the design-time alternatives the binding
    phase chooses among — "for each task, multiple implementations may
    be provided by different IP manufacturers, using multiple QoS
    levels, or targeting different memory types and I/O interfaces".
    """

    name: str
    implementations: tuple[Implementation, ...] = ()
    #: free-form role tag used by generators/reports ("input",
    #: "internal", "output", ...); not consulted by the algorithms.
    role: str = "internal"

    def __post_init__(self) -> None:
        if not self.name:
            raise TaskGraphError("task needs a non-empty name")
        seen = set()
        for impl in self.implementations:
            if impl.name in seen:
                raise TaskGraphError(
                    f"task {self.name!r} has duplicate implementation "
                    f"{impl.name!r}"
                )
            seen.add(impl.name)

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"<Task {self.name} ({len(self.implementations)} impls)>"


@dataclass(frozen=True)
class Channel:
    """A directed communication channel between two tasks.

    ``bandwidth`` is the sustained rate the route must support;
    ``tokens_per_firing`` feeds the dataflow (validation) model.
    ``initial_tokens`` marks feedback channels of cyclic task graphs:
    data already present when the application starts, without which a
    cycle could never begin firing.
    """

    name: str
    source: str
    target: str
    bandwidth: float = 1.0
    tokens_per_firing: int = 1
    initial_tokens: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise TaskGraphError("channel needs a non-empty name")
        if self.source == self.target:
            raise TaskGraphError(f"channel {self.name!r} is a self-loop")
        if self.bandwidth <= 0:
            raise TaskGraphError(f"channel {self.name!r} needs positive bandwidth")
        if self.tokens_per_firing < 1:
            raise TaskGraphError(
                f"channel {self.name!r} needs at least one token per firing"
            )
        if self.initial_tokens < 0:
            raise TaskGraphError(
                f"channel {self.name!r} has negative initial tokens"
            )

    def endpoints(self) -> tuple[str, str]:
        return (self.source, self.target)


@dataclass
class Application:
    """An annotated task graph plus optional performance constraints."""

    name: str
    tasks: dict[str, Task] = field(default_factory=dict)
    channels: dict[str, Channel] = field(default_factory=dict)
    constraints: list[PerformanceConstraint] = field(default_factory=list)

    # -- construction ------------------------------------------------------

    def add_task(self, task: Task) -> Task:
        if task.name in self.tasks:
            raise TaskGraphError(f"duplicate task {task.name!r}")
        self.tasks[task.name] = task
        self.invalidate_graph_cache()
        return task

    def add_channel(self, channel: Channel) -> Channel:
        if channel.name in self.channels:
            raise TaskGraphError(f"duplicate channel {channel.name!r}")
        for endpoint in channel.endpoints():
            if endpoint not in self.tasks:
                raise TaskGraphError(
                    f"channel {channel.name!r} references unknown task "
                    f"{endpoint!r}"
                )
        self.channels[channel.name] = channel
        self.invalidate_graph_cache()
        return channel

    def invalidate_graph_cache(self) -> None:
        """Drop the cached incidence index.

        ``add_task``/``add_channel`` call this automatically; call it
        yourself after mutating the public ``tasks``/``channels`` dicts
        directly (e.g. replacing a channel in place), or subsequent
        ``neighbors``/``incident_channels`` queries may serve stale
        structure.
        """
        self._incidence_cache = None
        self._digest_cache = None
        self._ordered_channels_cache = None

    def connect(
        self,
        source: Task | str,
        target: Task | str,
        bandwidth: float = 1.0,
        tokens_per_firing: int = 1,
        name: str | None = None,
    ) -> Channel:
        """Convenience wrapper creating a channel with a generated name."""
        src = source if isinstance(source, str) else source.name
        dst = target if isinstance(target, str) else target.name
        channel_name = name or f"{src}->{dst}"
        return self.add_channel(
            Channel(channel_name, src, dst, bandwidth, tokens_per_firing)
        )

    def add_constraint(self, constraint: PerformanceConstraint) -> None:
        self.constraints.append(constraint)

    # -- basic queries -------------------------------------------------------

    def task(self, name: str) -> Task:
        try:
            return self.tasks[name]
        except KeyError:
            raise TaskGraphError(f"unknown task {name!r}") from None

    def channel(self, name: str) -> Channel:
        try:
            return self.channels[name]
        except KeyError:
            raise TaskGraphError(f"unknown channel {name!r}") from None

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks.values())

    def __contains__(self, task: Task | str) -> bool:
        name = task if isinstance(task, str) else task.name
        return name in self.tasks

    # -- graph structure -------------------------------------------------------

    def _incidence(self) -> dict[str, tuple[tuple[Channel, ...], tuple[str, ...]]]:
        """task -> (incident channels, undirected neighbours), cached.

        The mapping cost function asks for neighbours and incident
        channels on every (task, element) evaluation; scanning all
        channels each time made those queries O(C).  The construction
        API invalidates the index explicitly; the task/channel-count
        signature is a second guard that also catches direct additions
        to the public dicts (in-place *replacements* need
        :meth:`invalidate_graph_cache`).
        """
        cached = getattr(self, "_incidence_cache", None)
        signature = (len(self.tasks), len(self.channels))
        if cached is not None and cached[0] == signature:
            return cached[1]
        channels: dict[str, list[Channel]] = {t: [] for t in self.tasks}
        neighbors: dict[str, dict[str, None]] = {t: {} for t in self.tasks}
        for channel in self.channels.values():
            channels[channel.source].append(channel)
            channels[channel.target].append(channel)
            neighbors[channel.source].setdefault(channel.target)
            neighbors[channel.target].setdefault(channel.source)
        index = {
            t: (tuple(channels[t]), tuple(neighbors[t])) for t in self.tasks
        }
        self._incidence_cache = (signature, index)
        return index

    def channels_by_bandwidth(self) -> tuple[Channel, ...]:
        """Channels ordered fattest-first, name-tie-broken — the
        routing phase's processing order, cached like the incidence
        index (same count-signature guard)."""
        signature = (len(self.tasks), len(self.channels))
        cached = getattr(self, "_ordered_channels_cache", None)
        if cached is not None and cached[0] == signature:
            return cached[1]
        ordered = tuple(sorted(
            self.channels.values(), key=lambda c: (-c.bandwidth, c.name)
        ))
        self._ordered_channels_cache = (signature, ordered)
        return ordered

    def successors(self, task: Task | str) -> tuple[str, ...]:
        name = self._task_name(task)
        return tuple(
            c.target for c in self.channels.values() if c.source == name
        )

    def predecessors(self, task: Task | str) -> tuple[str, ...]:
        name = self._task_name(task)
        return tuple(
            c.source for c in self.channels.values() if c.target == name
        )

    def neighbors(self, task: Task | str) -> tuple[str, ...]:
        """Undirected neighbours, deduplicated, in channel order."""
        name = self._task_name(task)
        entry = self._incidence().get(name)
        return entry[1] if entry is not None else ()

    def degree(self, task: Task | str) -> int:
        """Undirected degree d(t): number of incident channels."""
        return len(self.incident_channels(task))

    def min_degree(self) -> int:
        """δ(T): the minimum undirected degree over all tasks."""
        if not self.tasks:
            raise TaskGraphError("application has no tasks")
        return min(self.degree(t) for t in self.tasks)

    def min_degree_tasks(self) -> tuple[str, ...]:
        """Tasks achieving δ(T) — starting-point candidates (Section III-A)."""
        delta = self.min_degree()
        return tuple(t for t in self.tasks if self.degree(t) == delta)

    def channels_between(self, a: Task | str, b: Task | str) -> tuple[Channel, ...]:
        """All channels (either direction) between two tasks."""
        name_a, name_b = self._task_name(a), self._task_name(b)
        return tuple(
            c
            for c in self.channels.values()
            if {c.source, c.target} == {name_a, name_b}
        )

    def incident_channels(self, task: Task | str) -> tuple[Channel, ...]:
        name = self._task_name(task)
        entry = self._incidence().get(name)
        return entry[0] if entry is not None else ()

    def distance_layers(self, origins: Iterable[Task | str]) -> list[set[str]]:
        """Undirected BFS layers from ``origins``.

        ``layers[i]`` is the paper's ``Ti`` — "the tasks in sets with
        equal distance to the origin task(s)" (Section III-A, step 1).
        ``layers[0]`` is the origin set itself.  Unreachable tasks (a
        disconnected application) are *not* included; callers should
        check :meth:`is_connected` first.
        """
        origin_names = [self._task_name(t) for t in origins]
        if not origin_names:
            raise TaskGraphError("distance_layers needs at least one origin")
        distance: dict[str, int] = {}
        queue: deque[str] = deque()
        for name in origin_names:
            if name not in distance:
                distance[name] = 0
                queue.append(name)
        while queue:
            current = queue.popleft()
            for neighbor in self.neighbors(current):
                if neighbor not in distance:
                    distance[neighbor] = distance[current] + 1
                    queue.append(neighbor)
        layers: list[set[str]] = []
        for name, depth in distance.items():
            while len(layers) <= depth:
                layers.append(set())
            layers[depth].add(name)
        return layers

    def is_connected(self) -> bool:
        """True when the undirected task graph is a single component."""
        if not self.tasks:
            return True
        first = next(iter(self.tasks))
        reached = set()
        stack = [first]
        while stack:
            current = stack.pop()
            if current in reached:
                continue
            reached.add(current)
            stack.extend(self.neighbors(current))
        return len(reached) == len(self.tasks)

    def roles(self, role: str) -> tuple[Task, ...]:
        return tuple(t for t in self.tasks.values() if t.role == role)

    def _task_name(self, task: Task | str) -> str:
        name = task if isinstance(task, str) else task.name
        if name not in self.tasks:
            raise TaskGraphError(f"unknown task {name!r}")
        return name

    def digest(self) -> str:
        """Stable structural digest of the specification (SHA-256 hex).

        Two applications with equal digests are indistinguishable to
        the admission pipeline: same tasks, implementations (including
        requirements, timings, costs and targets), channels and
        constraint descriptions.  The fast path keys its negative-
        result memo on ``(digest, state.epoch)`` — see
        :mod:`repro.manager.kairos`.

        The value is cached with the same count-signature guard as the
        incidence index: the construction API invalidates it, and
        in-place *replacements* of tasks or channels need an explicit
        :meth:`invalidate_graph_cache`.
        """
        signature = (
            len(self.tasks), len(self.channels), len(self.constraints)
        )
        cached = getattr(self, "_digest_cache", None)
        if cached is not None and cached[0] == signature:
            return cached[1]
        # every free-form field goes through repr(), whose quoting
        # escapes the delimiters — two structurally different specs
        # can therefore never serialize identically (a digest
        # collision would let the negative-result memo replay a wrong
        # rejection)
        parts = [repr(self.name)]
        for name in sorted(self.tasks):
            task = self.tasks[name]
            parts.append(f"T{name!r}|{task.role!r}")
            for impl in task.implementations:
                requirement = repr(sorted(impl.requirement.items()))
                parts.append(
                    f"I{impl.name!r}|{requirement}|{impl.execution_time!r}|"
                    f"{impl.cost!r}|"
                    f"{impl.target_kind.value if impl.target_kind else ''}|"
                    f"{impl.target_element!r}"
                )
        for name in sorted(self.channels):
            channel = self.channels[name]
            parts.append(
                f"C{name!r}|{channel.source!r}|{channel.target!r}|"
                f"{channel.bandwidth!r}|{channel.tokens_per_firing}|"
                f"{channel.initial_tokens}"
            )
        for constraint in self.constraints:
            parts.append(f"K{constraint.describe()!r}")
        value = hashlib.sha256("\n".join(parts).encode()).hexdigest()
        self._digest_cache = (signature, value)
        return value

    def validate(self) -> None:
        """Sanity-check the specification before it enters the manager.

        Raises :class:`TaskGraphError` on: no tasks, a task without
        implementations, or a disconnected task graph (the incremental
        mapper traverses by graph distance, so every task must be
        reachable from every anchor).
        """
        if not self.tasks:
            raise TaskGraphError(f"application {self.name!r} has no tasks")
        for task in self.tasks.values():
            if not task.implementations:
                raise TaskGraphError(
                    f"task {task.name!r} of {self.name!r} has no implementations"
                )
        if not self.is_connected():
            raise TaskGraphError(f"application {self.name!r} is disconnected")

    def __repr__(self) -> str:
        return (
            f"<Application {self.name!r}: {len(self.tasks)} tasks, "
            f"{len(self.channels)} channels>"
        )
