"""Task implementations: the binding phase's alternatives.

"For each task, multiple implementations may be provided by different
IP manufacturers, using multiple QoS levels, or targeting different
memory types and I/O interfaces" (paper Section I).  An implementation
states *where* it can run (an element type, or one specific element
for fixed I/O interfaces), *what* it consumes (a resource vector),
*how fast* it runs (execution time per firing, feeding the SDF
validation model) and *how much it costs* to prefer it (an abstract
scalar: energy, licensing, QoS penalty...).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.elements import ElementType, ProcessingElement
from repro.arch.resources import ResourceVector


class ImplementationError(ValueError):
    """Raised for malformed implementation specifications."""


#: bounds of the per-implementation compatibility memos; on overflow
#: the memo is cleared (it is a cache, not state)
_COMPAT_CACHE_LIMIT = 4096
_PLATFORM_CACHE_LIMIT = 8


@dataclass(frozen=True)
class Implementation:
    """One executable variant of a task.

    Exactly one of the two targeting modes applies:

    * ``target_kind`` set, ``target_element`` None — the implementation
      runs on any element of that type (the common case);
    * ``target_element`` set — the implementation is pinned to one
      named element ("locations may be fixed in the binding phase",
      Section III-A), which makes its task a mapping anchor in ``T0``.
    """

    name: str
    requirement: ResourceVector
    execution_time: float = 1.0
    cost: float = 1.0
    target_kind: ElementType | None = None
    target_element: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ImplementationError("implementation needs a non-empty name")
        if (self.target_kind is None) == (self.target_element is None):
            raise ImplementationError(
                f"implementation {self.name!r} must target either an element "
                "type or a specific element (exactly one)"
            )
        if self.execution_time <= 0:
            raise ImplementationError(
                f"implementation {self.name!r} needs positive execution time"
            )
        if self.cost < 0:
            raise ImplementationError(
                f"implementation {self.name!r} has negative cost"
            )
        # memos for runs_on / compatible_on / compatible_positions: the
        # answers are static per element (resp. platform), but the
        # binder and mapper ask them inside platform-wide scans on
        # every admission.  Keyed by object identity; the references in
        # the values keep ids stable.  All caches are bounded (cleared
        # on overflow) so an implementation reused across many
        # platforms cannot pin retired platforms in memory forever.
        object.__setattr__(self, "_compat", {})
        object.__setattr__(self, "_platform_compat", {})
        object.__setattr__(self, "_platform_positions", {})
        object.__setattr__(self, "_platform_nodes", {})

    def runs_on(self, element: ProcessingElement) -> bool:
        """Static compatibility: type/pin match and capacity is sufficient.

        Run-time availability (enough *free* resources) is the
        allocation state's ``av(e, t)``; this check ignores occupancy.
        """
        cached = self._compat.get(id(element))
        if cached is not None and cached[0] is element:
            return cached[1]
        if self.target_element is not None:
            result = (
                element.name == self.target_element
                and self.requirement.fits_in(element.capacity)
            )
        else:
            result = (
                element.kind == self.target_kind
                and self.requirement.fits_in(element.capacity)
            )
        if len(self._compat) >= _COMPAT_CACHE_LIMIT:
            self._compat.clear()
        self._compat[id(element)] = (element, result)
        return result

    def compatible_on(self, platform) -> tuple[tuple[int, object], ...]:
        """Statically compatible elements of a platform, with positions.

        Returns ``(position, element)`` pairs, where ``position``
        indexes ``platform.elements`` — the scan order every allocation
        phase uses.  Cached per platform, so platform-wide hot loops
        iterate only the elements that can ever host this
        implementation instead of re-checking ``runs_on`` each time.
        """
        cached = self._platform_compat.get(id(platform))
        if cached is not None and cached[0] is platform:
            return cached[1]
        pairs = tuple(
            (position, element)
            for position, element in enumerate(platform.elements)
            if self.runs_on(element)
        )
        if not platform.frozen:
            return pairs  # mutable platform: the list may still grow
        if len(self._platform_compat) >= _PLATFORM_CACHE_LIMIT:
            self._platform_compat.clear()
        self._platform_compat[id(platform)] = (platform, pairs)
        return pairs

    def compatible_positions(self, platform) -> frozenset[int]:
        """Positions of :meth:`compatible_on` as a frozen set.

        The GAP solver and the mapping layer's availability probe test
        (task, element) compatibility once per candidate element per
        layer; a static membership set turns each test into one hash
        probe of an int.
        """
        cached = self._platform_positions.get(id(platform))
        if cached is not None and cached[0] is platform:
            return cached[1]
        positions = frozenset(
            position for position, _element in self.compatible_on(platform)
        )
        if not platform.frozen:
            return positions  # mutable platform: the set may still grow
        if len(self._platform_positions) >= _PLATFORM_CACHE_LIMIT:
            self._platform_positions.clear()
        self._platform_positions[id(platform)] = (platform, positions)
        return positions

    def compatible_nodes(self, platform) -> tuple[tuple[int, object], ...]:
        """:meth:`compatible_on` with interned node ids instead of
        positions — ``(node_id, element)`` pairs, for scans that index
        the allocation ledgers directly."""
        cached = self._platform_nodes.get(id(platform))
        if cached is not None and cached[0] is platform:
            return cached[1]
        if not platform.frozen:
            raise ImplementationError(
                "compatible_nodes requires a frozen platform"
            )
        element_ids = platform._element_ids
        pairs = tuple(
            (element_ids[position], element)
            for position, element in self.compatible_on(platform)
        )
        if len(self._platform_nodes) >= _PLATFORM_CACHE_LIMIT:
            self._platform_nodes.clear()
        self._platform_nodes[id(platform)] = (platform, pairs)
        return pairs

    @property
    def pinned(self) -> bool:
        """True when this implementation is fixed to one element."""
        return self.target_element is not None

    def __repr__(self) -> str:
        where = self.target_element or str(self.target_kind)
        return f"<Impl {self.name} on {where}, cost={self.cost}>"


def dsp_implementation(
    name: str,
    cycles: int,
    memory: int = 0,
    execution_time: float = 1.0,
    cost: float = 1.0,
) -> Implementation:
    """Shorthand for the ubiquitous DSP-targeted implementation."""
    return Implementation(
        name=name,
        requirement=ResourceVector(cycles=cycles, memory=memory),
        execution_time=execution_time,
        cost=cost,
        target_kind=ElementType.DSP,
    )


def pinned_implementation(
    name: str,
    element: str,
    requirement: ResourceVector,
    execution_time: float = 1.0,
    cost: float = 1.0,
) -> Implementation:
    """Shorthand for a fixed-location (I/O interface) implementation."""
    return Implementation(
        name=name,
        requirement=requirement,
        execution_time=execution_time,
        cost=cost,
        target_element=element,
    )
