"""Experiment E1 — Table I: dataset characteristics and failure
distribution per phase.

"Tab. I shows the six datasets, each initially containing 100
applications ... Tab. I shows per phase the percentage of rejected
applications as a function of all failing applications in a dataset."

The paper's expectation (its central Table I observation): "a lack of
communication resources generally causes the rejection of a
communication oriented application.  Computation intensive
applications are mostly rejected in the binding phase.  In the dataset
with large, computation intensive applications, the communication
resource requirements also become significant, resulting in more
failures in the routing phase."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.datasets import ALL_SPECS, DatasetSpec
from repro.arch.topology import Platform
from repro.core.cost import BOTH, CostWeights
from repro.experiments.harness import (
    HarnessScale,
    default_platform,
    prepare_dataset,
    run_dataset_sequences,
)
from repro.experiments.reporting import ascii_table
from repro.manager.layout import Phase
from repro.manager.metrics import failure_distribution

#: the paper's Table I, for side-by-side reporting in EXPERIMENTS.md
PAPER_TABLE1 = {
    "communication_small": {"apps": 97, "binding": 0.65, "mapping": 0.40, "routing": 98.95},
    "communication_medium": {"apps": 57, "binding": 13.50, "mapping": 1.82, "routing": 84.68},
    "communication_large": {"apps": 22, "binding": 3.45, "mapping": 0.00, "routing": 96.55},
    "computation_small": {"apps": 99, "binding": 95.34, "mapping": 0.02, "routing": 4.66},
    "computation_medium": {"apps": 94, "binding": 87.26, "mapping": 0.02, "routing": 12.72},
    "computation_large": {"apps": 96, "binding": 61.64, "mapping": 0.31, "routing": 38.05},
}


@dataclass(frozen=True)
class Table1Row:
    dataset: str
    label: str
    surviving_apps: int
    binding_pct: float
    mapping_pct: float
    routing_pct: float

    def dominant_phase(self) -> str:
        values = {
            "binding": self.binding_pct,
            "mapping": self.mapping_pct,
            "routing": self.routing_pct,
        }
        return max(values, key=values.get)


@dataclass
class Table1Result:
    rows: list[Table1Row]
    scale: HarnessScale

    def row(self, dataset: str) -> Table1Row:
        for row in self.rows:
            if row.dataset == dataset:
                return row
        raise KeyError(dataset)


def run_table1(
    scale: HarnessScale = HarnessScale(),
    seed: int = 0,
    platform: Platform | None = None,
    weights: CostWeights = BOTH,
) -> Table1Result:
    """Run the Table I protocol on all six datasets."""
    platform = platform or default_platform()
    rows = []
    for spec in ALL_SPECS:
        rows.append(
            _run_one(spec, scale, seed, platform, weights)
        )
    return Table1Result(rows=rows, scale=scale)


def _run_one(
    spec: DatasetSpec,
    scale: HarnessScale,
    seed: int,
    platform: Platform,
    weights: CostWeights,
) -> Table1Row:
    prepared = prepare_dataset(
        spec, applications=scale.applications, seed=seed, platform=platform,
        weights=weights,
    )
    recorders = run_dataset_sequences(
        prepared, weights, sequences=scale.sequences, seed=seed,
        platform=platform, validation_mode="skip",
    )
    distribution = failure_distribution(recorders)
    return Table1Row(
        dataset=spec.name,
        label=spec.label,
        surviving_apps=prepared.surviving,
        binding_pct=distribution[Phase.BINDING],
        mapping_pct=distribution[Phase.MAPPING],
        routing_pct=distribution[Phase.ROUTING],
    )


def format_table1(result: Table1Result, include_paper: bool = True) -> str:
    """Render measured (and optionally paper) Table I rows."""
    headers = ["Dataset", "#App", "Binding %", "Mapping %", "Routing %"]
    rows = [
        (
            row.label,
            row.surviving_apps,
            row.binding_pct,
            row.mapping_pct,
            row.routing_pct,
        )
        for row in result.rows
    ]
    text = ascii_table(
        headers, rows,
        title="Table I (measured): failure distribution per phase",
    )
    if include_paper:
        paper_rows = [
            (
                spec.label,
                PAPER_TABLE1[spec.name]["apps"],
                PAPER_TABLE1[spec.name]["binding"],
                PAPER_TABLE1[spec.name]["mapping"],
                PAPER_TABLE1[spec.name]["routing"],
            )
            for spec in ALL_SPECS
        ]
        text += "\n\n" + ascii_table(
            headers, paper_rows,
            title="Table I (paper, for reference)",
        )
    return text


def main() -> None:  # pragma: no cover - CLI convenience
    scale = HarnessScale.from_environment()
    result = run_table1(scale)
    print(format_table1(result))


if __name__ == "__main__":  # pragma: no cover
    main()
