"""Dynamic workload driver: arrivals and departures at run time.

The paper's core motivation: "at design-time, it is unknown when, and
what combinations of applications are requested to be executed during
the life-time of the system" (Section I).  This module turns that
sentence into a measurable scenario: a seeded stochastic process of
application start and stop requests driven against a
:class:`~repro.manager.kairos.Kairos` instance, with steady-state
statistics (admission ratio, mean residency, utilization and
fragmentation traces).

The sequence experiments (Table I, Figs. 8/9) only *add*
applications; this driver exercises the release path and the
mid-lifetime re-admission behaviour the sequence protocol cannot see.

Both drivers are thin adapters over the discrete-event kernel
(:mod:`repro.sim.events`): each legacy "step" is a STEP event at
integer sim-time, so the fixed-step scenarios and the continuous-time
service simulations (:mod:`repro.sim.service`) share one event loop.
The churn adapter preserves the exact RNG draw sequence of the
original loop — its layout digests are frozen against
``benchmarks/seed_reference`` and must stay bit-identical.  The
``run_workload`` adapter keeps the per-step draw pattern but selects
departures from the admission-ordered resident list instead of the
old lexicographically sorted one, so its same-seed trajectories
differ from pre-kernel runs (it is deterministic, just not
history-compatible).  Requests these drivers reject are *not*
retried; queued/retried admission is what :mod:`repro.sim.service`
models (see its ``retry`` policy).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.apps.generator import GeneratorConfig, generate
from repro.apps.taskgraph import Application
from repro.arch.builders import mesh
from repro.arch.elements import ElementType
from repro.arch.resources import ResourceVector
from repro.arch.state import AllocationState
from repro.arch.topology import Platform
from repro.core.cost import BOTH, CostWeights
from repro.api.controller import AdmissionController
from repro.manager.kairos import Kairos
from repro.manager.layout import AllocationFailure
from repro.sim.events import EventKernel, EventKind, pop_random


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the arrival/departure process.

    Each step is one scheduling event: with probability
    ``departure_probability`` (and a non-empty system) a uniformly
    random resident application stops; otherwise the next application
    of the pool (round-robin) requests admission.  A rejected request
    is simply counted and dropped — this fixed-step driver never
    retries; retry-with-backoff (a user trying again later) is modelled
    by the ``retry`` queue policy of :mod:`repro.sim.service`.
    """

    steps: int = 200
    departure_probability: float = 0.35
    seed: int = 0

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ValueError("need at least one step")
        if not 0 <= self.departure_probability < 1:
            raise ValueError("departure_probability must be in [0, 1)")


@dataclass
class WorkloadStats:
    """Aggregates of one driver run."""

    admitted: int = 0
    rejected: int = 0
    departed: int = 0
    rejections_by_phase: dict[str, int] = field(default_factory=dict)
    utilization_trace: list[float] = field(default_factory=list)
    fragmentation_trace: list[float] = field(default_factory=list)
    #: residency time (in steps) of each departed application
    residencies: list[int] = field(default_factory=list)

    @property
    def admission_ratio(self) -> float:
        attempts = self.admitted + self.rejected
        return self.admitted / attempts if attempts else 0.0

    @property
    def mean_residency(self) -> float:
        if not self.residencies:
            return 0.0
        return sum(self.residencies) / len(self.residencies)

    def mean_utilization(self, skip: int = 0) -> float:
        trace = self.utilization_trace[skip:]
        return sum(trace) / len(trace) if trace else 0.0

    def mean_fragmentation(self, skip: int = 0) -> float:
        trace = self.fragmentation_trace[skip:]
        return sum(trace) / len(trace) if trace else 0.0


def run_workload(
    pool: list[Application],
    platform: Platform,
    config: WorkloadConfig = WorkloadConfig(),
    weights: CostWeights = BOTH,
) -> WorkloadStats:
    """Drive the arrival/departure process; returns the statistics.

    Deterministic for a given (pool, config).  The manager is created
    fresh (empty platform) and fully drained at the end, so repeated
    calls are independent; a final invariant check asserts that the
    drained platform reports zero utilization.  Steps are STEP events
    at integer sim-time on the shared event kernel; departures sample
    the resident set with :func:`repro.sim.events.pop_random` (one RNG
    draw per departure instead of the historic per-departure sort).
    """
    if not pool:
        raise ValueError("workload pool must not be empty")
    rng = random.Random(config.seed)
    manager = Kairos(platform, weights=weights, validation_mode="skip")
    controller = manager.controller
    stats = WorkloadStats()
    resident_ids: list[str] = []
    admitted_step: dict[str, int] = {}  # app_id -> admission step
    next_app = 0
    counter = 0

    def step_event(kernel: EventKernel, event) -> None:
        nonlocal next_app, counter
        step = event.payload["step"]
        if resident_ids and rng.random() < config.departure_probability:
            app_id = pop_random(rng, resident_ids)
            manager.release(app_id)
            stats.departed += 1
            stats.residencies.append(step - admitted_step.pop(app_id))
        else:
            app = pool[next_app % len(pool)]
            next_app += 1
            counter += 1
            decision = controller.admit(app, f"w{counter}_{app.name}")
            if decision.admitted:
                stats.admitted += 1
                resident_ids.append(decision.app_id)
                admitted_step[decision.app_id] = step
            else:
                stats.rejected += 1
                phase = decision.phase.value
                stats.rejections_by_phase[phase] = (
                    stats.rejections_by_phase.get(phase, 0) + 1
                )
        stats.utilization_trace.append(manager.utilization())
        stats.fragmentation_trace.append(manager.external_fragmentation())

    kernel = EventKernel(seed=config.seed)
    for step in range(config.steps):
        kernel.schedule_at(float(step), EventKind.STEP, step_event, step=step)
    kernel.run()

    for app_id in sorted(resident_ids):
        manager.release(app_id)
    assert manager.utilization() == 0.0, "drained platform not empty"
    return stats


# ---------------------------------------------------------------------------
# Admission churn: the rollback-strategy benchmark workload
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChurnConfig:
    """Knobs of the sustained allocate/release churn scenario.

    The platform is first filled round-robin until ``target_utilization``
    is reached (or the whole pool is rejected in a row); every
    subsequent step releases one random resident application and
    attempts one admission.  Near the utilization target many attempts
    fail, which is exactly the regime that stresses rollback cost.
    """

    steps: int = 150
    target_utilization: float = 0.8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ValueError("need at least one step")
        if not 0 < self.target_utilization <= 1:
            raise ValueError("target_utilization must be in (0, 1]")


#: the canonical churn workload measured by ``bench_admission_churn``,
#: ``benchmarks/run_admission_bench.py`` and ``tests/test_admission_churn.py``
#: — tune it here so every entry point keeps measuring the same thing
CHURN_BENCH_CONFIG = ChurnConfig(steps=150, target_utilization=0.8, seed=0)
CHURN_BENCH_POOL_SIZE = 20

#: the fixed-size failed attempt of the rollback-scaling micro-benchmark
#: (must fit the smallest mesh compared, so every platform rolls back
#: exactly the same work)
ROLLBACK_BENCH_OCCUPIES = 16
ROLLBACK_BENCH_ROUTES = 3


def measure_mesh_rollback_seconds(rows: int, repeats: int = 300) -> float:
    """Min seconds to undo one fixed-size failed attempt via the journal.

    The single definition shared by ``benchmarks/run_admission_bench.py``
    and ``tests/test_admission_churn.py``, so the reported
    rollback-scaling numbers and the CI gate measure the same scenario.
    The attempt (:data:`ROLLBACK_BENCH_OCCUPIES` occupies +
    :data:`ROLLBACK_BENCH_ROUTES` route reservations) is identical on
    every ``rows x rows`` mesh, making the measured time a pure probe
    of platform-size dependence.
    """
    if rows <= ROLLBACK_BENCH_ROUTES:
        raise ValueError("mesh too small for the fixed-size failed attempt")
    platform = mesh(rows, rows)
    state = AllocationState(platform)
    elements = platform.elements[:ROLLBACK_BENCH_OCCUPIES]
    requirement = ResourceVector(cycles=10, memory=2)
    routes = [
        (f"dsp_0_{col}", f"r_0_{col}", f"r_0_{col + 1}", f"dsp_0_{col + 1}")
        for col in range(ROLLBACK_BENCH_ROUTES)
    ]
    best = float("inf")
    for _ in range(repeats):
        with state.transaction():
            mark = state.savepoint()
            for index, element in enumerate(elements):
                state.occupy(element, "bench", f"t{index}", requirement)
            for index, path in enumerate(routes):
                state.reserve_route("bench", f"c{index}", path, 1.0)
            started = time.perf_counter()
            state.rollback_to(mark)
            elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


@dataclass
class ChurnResult:
    """Outcome and determinism digest of one churn run."""

    admitted: int = 0
    rejected: int = 0
    released: int = 0
    fill_admitted: int = 0
    final_utilization: float = 0.0
    elapsed_seconds: float = 0.0
    #: per-admission digest (app_id, placements, route paths) — two
    #: runs are equivalent iff their digests are equal
    layouts: list[tuple] = field(default_factory=list)
    #: distance-field engine counters (zeros when incremental is off)
    distfield_stats: dict = field(default_factory=dict)

    @property
    def attempts(self) -> int:
        return self.admitted + self.rejected


def churn_pool(count: int = 20, seed: int = 0) -> list[Application]:
    """A deterministic pool of DSP-only applications for churn runs.

    Sizes and utilizations are varied enough that the packing near the
    utilization target keeps producing both successes and failures.
    """
    pool = []
    for index in range(count):
        config = GeneratorConfig(
            inputs=1,
            internals=2 + index % 5,
            outputs=1,
            target_kinds=((ElementType.DSP, 1.0),),
            utilization_low=0.25,
            utilization_high=0.65,
        )
        pool.append(generate(config, seed=seed * 10_000 + index))
    return pool


def run_admission_churn(
    pool: list[Application],
    platform: Platform,
    config: ChurnConfig = ChurnConfig(),
    weights: CostWeights = BOTH,
    rollback: str = "transaction",
    fastpath: bool = True,
    incremental: bool = True,
    path: str = "admit",
) -> ChurnResult:
    """Sustained allocate/release churn against one Kairos instance.

    Deterministic for a given (pool, config): the event sequence
    depends only on the seeded RNG and admission outcomes, so two runs
    with different ``rollback`` strategies must produce identical
    :attr:`ChurnResult.layouts` digests — asserted by the test suite
    against the frozen seed reference.  The churn steps are STEP
    events on the shared event kernel; the adapter reproduces the
    original loop's RNG draw sequence exactly (order-preserving
    :func:`~repro.sim.events.pop_random`), keeping the digests stable.

    ``path`` selects the admission route: ``"admit"`` (the façade's
    one-shot hot path, the default everywhere), ``"plan_commit"``
    (every attempt goes plan → commit, the two-phase protocol — one
    extra journal unwind + mutation replay per admission), or
    ``"direct"`` (the pre-façade ``Kairos`` call convention, kept so
    the admission bench can gate the façade's hot-path overhead).
    Decisions and digests are identical on all three.
    """
    if not pool:
        raise ValueError("churn pool must not be empty")
    if path not in ("admit", "plan_commit", "direct"):
        raise ValueError(
            f"path must be 'admit', 'plan_commit' or 'direct', got {path!r}"
        )
    rng = random.Random(config.seed)
    manager = Kairos(
        platform, weights=weights, validation_mode="skip",
        rollback=rollback, fastpath=fastpath, incremental=incremental,
    )
    controller = manager.controller
    result = ChurnResult()
    resident: list[str] = []
    next_app = 0
    counter = 0
    started = time.perf_counter()

    def attempt() -> bool:
        nonlocal next_app, counter
        app = pool[next_app % len(pool)]
        next_app += 1
        counter += 1
        app_id = f"churn{counter}_{app.name}"
        if path == "direct":
            try:
                layout = manager._admit_direct(app, app_id)
            except AllocationFailure:
                result.rejected += 1
                return False
        else:
            if path == "plan_commit":
                decision = controller.commit(controller.plan(app, app_id))
            else:
                decision = controller.admit(app, app_id)
            if not decision.admitted:
                result.rejected += 1
                return False
            layout = decision.layout
        result.admitted += 1
        resident.append(app_id)
        result.layouts.append(_layout_digest(layout))
        return True

    # fill to the target utilization
    consecutive_rejections = 0
    while (
        manager.utilization() < config.target_utilization
        and consecutive_rejections < len(pool)
    ):
        if attempt():
            consecutive_rejections = 0
            result.fill_admitted += 1
        else:
            consecutive_rejections += 1

    # churn: one departure + one admission attempt per step event
    def step_event(kernel: EventKernel, event) -> None:
        if resident:
            app_id = pop_random(rng, resident)
            manager.release(app_id)
            result.released += 1
        attempt()

    kernel = EventKernel(seed=config.seed)
    for step in range(config.steps):
        kernel.schedule_at(float(step), EventKind.STEP, step_event, step=step)
    kernel.run()

    result.final_utilization = manager.utilization()
    result.elapsed_seconds = time.perf_counter() - started
    result.distfield_stats = manager.distfield_stats
    return result


def _layout_digest(layout) -> tuple:
    return (
        layout.app_id,
        tuple(sorted(layout.placement.items())),
        tuple(
            (channel, reservation.path)
            for channel, reservation in sorted(layout.routes.items())
        ),
    )


def saturation_point(
    pool: list[Application],
    platform: Platform,
    weights: CostWeights = BOTH,
) -> int:
    """How many pool applications fit simultaneously (no departures).

    Admits pool applications round-robin until the first rejection and
    returns the number admitted — a capacity figure used to scale
    workload configurations.
    """
    controller = AdmissionController(
        platform, weights=weights, validation_mode="skip"
    )
    admitted = 0
    for index, app in enumerate(pool):
        if not controller.admit(app, f"sat{index}").admitted:
            break
        admitted += 1
    return admitted
