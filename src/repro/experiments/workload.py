"""Dynamic workload driver: arrivals and departures at run time.

The paper's core motivation: "at design-time, it is unknown when, and
what combinations of applications are requested to be executed during
the life-time of the system" (Section I).  This module turns that
sentence into a measurable scenario: a seeded stochastic process of
application start and stop requests driven against a
:class:`~repro.manager.kairos.Kairos` instance, with steady-state
statistics (admission ratio, mean residency, utilization and
fragmentation traces).

The sequence experiments (Table I, Figs. 8/9) only *add*
applications; this driver exercises the release path and the
mid-lifetime re-admission behaviour the sequence protocol cannot see.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.apps.taskgraph import Application
from repro.arch.topology import Platform
from repro.core.cost import BOTH, CostWeights
from repro.manager.kairos import Kairos
from repro.manager.layout import AllocationFailure, Phase


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the arrival/departure process.

    Each step is one scheduling event: with probability
    ``departure_probability`` (and a non-empty system) a uniformly
    random resident application stops; otherwise the next application
    of the pool (round-robin) requests admission.  Rejected requests
    re-enter the pool, modelling a user retrying later.
    """

    steps: int = 200
    departure_probability: float = 0.35
    seed: int = 0

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ValueError("need at least one step")
        if not 0 <= self.departure_probability < 1:
            raise ValueError("departure_probability must be in [0, 1)")


@dataclass
class WorkloadStats:
    """Aggregates of one driver run."""

    admitted: int = 0
    rejected: int = 0
    departed: int = 0
    rejections_by_phase: dict[str, int] = field(default_factory=dict)
    utilization_trace: list[float] = field(default_factory=list)
    fragmentation_trace: list[float] = field(default_factory=list)
    #: residency time (in steps) of each departed application
    residencies: list[int] = field(default_factory=list)

    @property
    def admission_ratio(self) -> float:
        attempts = self.admitted + self.rejected
        return self.admitted / attempts if attempts else 0.0

    @property
    def mean_residency(self) -> float:
        if not self.residencies:
            return 0.0
        return sum(self.residencies) / len(self.residencies)

    def mean_utilization(self, skip: int = 0) -> float:
        trace = self.utilization_trace[skip:]
        return sum(trace) / len(trace) if trace else 0.0

    def mean_fragmentation(self, skip: int = 0) -> float:
        trace = self.fragmentation_trace[skip:]
        return sum(trace) / len(trace) if trace else 0.0


def run_workload(
    pool: list[Application],
    platform: Platform,
    config: WorkloadConfig = WorkloadConfig(),
    weights: CostWeights = BOTH,
) -> WorkloadStats:
    """Drive the arrival/departure process; returns the statistics.

    Deterministic for a given (pool, config).  The manager is created
    fresh (empty platform) and fully drained at the end, so repeated
    calls are independent; a final invariant check asserts that the
    drained platform reports zero utilization.
    """
    if not pool:
        raise ValueError("workload pool must not be empty")
    rng = random.Random(config.seed)
    manager = Kairos(platform, weights=weights, validation_mode="skip")
    stats = WorkloadStats()
    resident: dict[str, int] = {}  # app_id -> admission step
    next_app = 0
    counter = 0

    for step in range(config.steps):
        if resident and rng.random() < config.departure_probability:
            app_id = rng.choice(sorted(resident))
            manager.release(app_id)
            stats.departed += 1
            stats.residencies.append(step - resident.pop(app_id))
        else:
            app = pool[next_app % len(pool)]
            next_app += 1
            counter += 1
            try:
                layout = manager.allocate(app, f"w{counter}_{app.name}")
            except AllocationFailure as failure:
                stats.rejected += 1
                phase = failure.phase.value
                stats.rejections_by_phase[phase] = (
                    stats.rejections_by_phase.get(phase, 0) + 1
                )
            else:
                stats.admitted += 1
                resident[layout.app_id] = step
        stats.utilization_trace.append(manager.utilization())
        stats.fragmentation_trace.append(manager.external_fragmentation())

    for app_id in sorted(resident):
        manager.release(app_id)
    assert manager.utilization() == 0.0, "drained platform not empty"
    return stats


def saturation_point(
    pool: list[Application],
    platform: Platform,
    weights: CostWeights = BOTH,
) -> int:
    """How many pool applications fit simultaneously (no departures).

    Admits pool applications round-robin until the first rejection and
    returns the number admitted — a capacity figure used to scale
    workload configurations.
    """
    manager = Kairos(platform, weights=weights, validation_mode="skip")
    admitted = 0
    for index, app in enumerate(pool):
        try:
            manager.allocate(app, f"sat{index}")
        except AllocationFailure:
            break
        admitted += 1
    return admitted
