"""Experiments E5/E6 — Fig. 10 and the Section IV-A case study.

Fig. 10: "Admission of a beamforming application with various mapping
parameters.  Every point in [0,1,..,25] x [0,10,..,1000] is sampled."
The paper finds that "only specific ratio between the fragmentation
and communication objective results in admission ...  Disabling either
one of the objectives never gives a successful result."

Section IV-A also reports the case-study phase timings: "Allocating
resources for this application takes 70.4 ms for binding, 21.7 ms for
mapping, 7.4 ms for routing, and 20.6 ms for validation."  We measure
the same breakdown (host-Python milliseconds).

The full grid is 26 x 101 = 2626 allocation attempts; the default step
sizes subsample it (settable via ``REPRO_FIG10_COMM_STEP`` /
``REPRO_FIG10_FRAG_STEP``, or run :func:`run_fig10` with steps of 1
and 10 for the paper's full resolution).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.apps.beamforming import beamforming_application
from repro.arch.topology import Platform
from repro.core.cost import CostWeights
from repro.experiments.harness import default_platform
from repro.experiments.reporting import admission_matrix
from repro.manager.kairos import Kairos
from repro.manager.layout import AllocationFailure, PhaseTimings

#: the paper's sampled axes
PAPER_COMM_RANGE = tuple(range(0, 26))          # 0, 1, .., 25
PAPER_FRAG_RANGE = tuple(range(0, 1001, 10))    # 0, 10, .., 1000

#: the paper's case-study timings, milliseconds (for EXPERIMENTS.md)
PAPER_CASE_STUDY_MS = {
    "binding": 70.4,
    "mapping": 21.7,
    "routing": 7.4,
    "validation": 20.6,
}


@dataclass
class Fig10Result:
    comm_weights: tuple[float, ...]
    frag_weights: tuple[float, ...]
    #: (comm, frag) -> admitted
    admitted: dict[tuple[float, float], bool] = field(default_factory=dict)
    #: (comm, frag) -> failing phase name (absent for admissions)
    failures: dict[tuple[float, float], str] = field(default_factory=dict)

    @property
    def admitted_points(self) -> tuple[tuple[float, float], ...]:
        return tuple(sorted(p for p, ok in self.admitted.items() if ok))

    def admitted_count(self) -> int:
        return sum(1 for ok in self.admitted.values() if ok)

    def row_admits(self, frag: float) -> bool:
        """Does any communication weight admit at this frag weight?"""
        return any(
            ok for (c, f), ok in self.admitted.items() if f == frag
        )

    def column_admits(self, comm: float) -> bool:
        return any(
            ok for (c, f), ok in self.admitted.items() if c == comm
        )


def grid_from_environment() -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Axis subsampling controlled by environment (default coarse)."""
    comm_step = int(os.environ.get("REPRO_FIG10_COMM_STEP", 5))
    frag_step = int(os.environ.get("REPRO_FIG10_FRAG_STEP", 100))
    comm = tuple(range(0, 26, comm_step))
    frag = tuple(range(0, 1001, frag_step))
    return comm, frag


def run_fig10(
    comm_weights=None,
    frag_weights=None,
    platform: Platform | None = None,
    channel_bandwidth: float = 6.0,
) -> Fig10Result:
    """Sample the admission map over the weight grid.

    One allocation attempt per grid point on an *empty* platform
    (validation in report mode, as the admission decision in the paper
    is binding/mapping/routing driven).
    """
    if comm_weights is None or frag_weights is None:
        env_comm, env_frag = grid_from_environment()
        comm_weights = comm_weights or env_comm
        frag_weights = frag_weights or env_frag
    platform = platform or default_platform()
    app = beamforming_application(channel_bandwidth=channel_bandwidth)
    result = Fig10Result(tuple(comm_weights), tuple(frag_weights))
    for comm in comm_weights:
        for frag in frag_weights:
            manager = Kairos(
                platform,
                weights=CostWeights(float(comm), float(frag)),
                validation_mode="skip",
            )
            point = (comm, frag)
            try:
                layout = manager.allocate(app)
            except AllocationFailure as failure:
                result.admitted[point] = False
                result.failures[point] = failure.phase.value
            else:
                result.admitted[point] = True
                manager.release(layout.app_id)
    return result


def format_fig10(result: Fig10Result) -> str:
    matrix = admission_matrix(
        result.comm_weights, result.frag_weights, result.admitted
    )
    lines = [
        "Fig. 10 (measured): admission of the beamforming application",
        matrix,
        "",
        f"admitted {result.admitted_count()} of "
        f"{len(result.comm_weights) * len(result.frag_weights)} grid points",
    ]
    return "\n".join(lines)


def case_study_timing(
    platform: Platform | None = None,
    weights: CostWeights = CostWeights(1.0, 1.0),
    repeats: int = 3,
) -> PhaseTimings:
    """E6: the Section IV-A per-phase timing of one admission.

    Runs ``repeats`` full allocations on an empty platform and keeps
    the fastest of each phase (minimum over runs filters scheduler
    noise, standard micro-benchmark practice).
    """
    platform = platform or default_platform()
    app = beamforming_application()
    best = PhaseTimings(
        binding=float("inf"), mapping=float("inf"),
        routing=float("inf"), validation=float("inf"),
    )
    for _ in range(repeats):
        manager = Kairos(platform, weights=weights, validation_mode="report")
        layout = manager.allocate(app)
        timings = layout.timings
        best.binding = min(best.binding, timings.binding)
        best.mapping = min(best.mapping, timings.mapping)
        best.routing = min(best.routing, timings.routing)
        best.validation = min(best.validation, timings.validation)
        manager.release(layout.app_id)
    return best


def main() -> None:  # pragma: no cover - CLI convenience
    result = run_fig10()
    print(format_fig10(result))
    timings = case_study_timing()
    print("\ncase study (measured ms):", timings.as_milliseconds())
    print("case study (paper ms):   ", PAPER_CASE_STUDY_MS)


if __name__ == "__main__":  # pragma: no cover
    main()
