"""The sequence-benchmark harness of the paper's evaluation protocol.

Section IV: each dataset initially contains 100 applications; those
that "cannot be mapped to an empty platform" are filtered out.  "For
each dataset, we generate 30 random sequences of the remaining
applications.  We benchmark the platform with each dataset, by
sequentially adding the applications to the platform.  Between
sequences the platform is emptied."

The harness is deterministic: dataset content, filtering, and the 30
shuffles all derive from explicit seeds.  Scale knobs (applications
per dataset, number of sequences) default to paper values but can be
reduced for quick runs; the benchmark suite honours the environment
variables ``REPRO_APPS``, ``REPRO_SEQUENCES`` and ``REPRO_POSITIONS``.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field

from repro.api.controller import AdmissionController
from repro.apps.datasets import ALL_SPECS, DatasetSpec, make_dataset
from repro.apps.taskgraph import Application
from repro.arch.builders import crisp
from repro.arch.topology import Platform
from repro.core.cost import BOTH, CostWeights
from repro.manager.metrics import SequenceRecorder

#: paper-scale defaults
PAPER_APPS = 100
PAPER_SEQUENCES = 30
PAPER_POSITIONS = 29  # Figs. 8/9 plot positions 1..29


@dataclass(frozen=True)
class HarnessScale:
    """How big to run: paper scale by default, smaller for smoke runs."""

    applications: int = PAPER_APPS
    sequences: int = PAPER_SEQUENCES
    positions: int = PAPER_POSITIONS

    @classmethod
    def from_environment(cls, default: "HarnessScale | None" = None) -> "HarnessScale":
        base = default or cls()
        return cls(
            applications=int(os.environ.get("REPRO_APPS", base.applications)),
            sequences=int(os.environ.get("REPRO_SEQUENCES", base.sequences)),
            positions=int(os.environ.get("REPRO_POSITIONS", base.positions)),
        )


#: a fast scale for unit tests and default benchmark runs
SMOKE = HarnessScale(applications=30, sequences=5, positions=20)


@dataclass
class PreparedDataset:
    """A dataset after the empty-platform filter."""

    spec: DatasetSpec
    generated: int
    applications: list[Application] = field(default_factory=list)

    @property
    def surviving(self) -> int:
        return len(self.applications)


#: element—router links are provisioned 4x wider than NoC links (a
#: network interface is not the bottleneck); see EXPERIMENTS.md for the
#: calibration rationale.
EXPERIMENT_ENDPOINT_BANDWIDTH = 400.0


def default_platform() -> Platform:
    """The platform of record for all experiments: CRISP."""
    return crisp(endpoint_bandwidth=EXPERIMENT_ENDPOINT_BANDWIDTH)


def prepare_dataset(
    spec: DatasetSpec,
    applications: int = PAPER_APPS,
    seed: int = 0,
    platform: Platform | None = None,
    weights: CostWeights = BOTH,
) -> PreparedDataset:
    """Generate and filter one dataset (the Table I ``#App`` column).

    An application survives when a full allocation attempt (binding,
    mapping, routing; validation in report mode) succeeds on an empty
    platform with the given cost weights.
    """
    platform = platform or default_platform()
    generated = make_dataset(spec, count=applications, seed=seed)
    survivors = []
    controller = AdmissionController(
        platform, weights=weights, validation_mode="skip"
    )
    for app in generated:
        decision = controller.admit(app)
        if not decision.admitted:
            continue
        controller.release(decision.app_id)
        survivors.append(app)
    return PreparedDataset(spec=spec, generated=len(generated),
                           applications=survivors)


def prepare_all_datasets(
    applications: int = PAPER_APPS,
    seed: int = 0,
    platform: Platform | None = None,
) -> dict[str, PreparedDataset]:
    platform = platform or default_platform()
    return {
        spec.name: prepare_dataset(spec, applications, seed, platform)
        for spec in ALL_SPECS
    }


def run_sequence(
    applications: list[Application],
    weights: CostWeights,
    platform: Platform | None = None,
    validation_mode: str = "skip",
    positions: int | None = None,
) -> SequenceRecorder:
    """Admit ``applications`` in order onto an empty platform.

    Applications are *not* released — "relatively early in the
    sequence, most platform resources are allocated, resulting in
    rejection of the remaining applications."  Returns the attempt
    records (admission, failing phase, hops, fragmentation, timings).
    """
    platform = platform or default_platform()
    controller = AdmissionController(
        platform, weights=weights, validation_mode=validation_mode
    )
    manager = controller.manager
    recorder = SequenceRecorder()
    limit = positions if positions is not None else len(applications)
    for position, app in enumerate(applications[:limit], start=1):
        decision = controller.admit(app, f"pos{position}")
        if decision.admitted:
            recorder.record_success(
                position=position,
                layout=decision.layout,
                fragmentation=manager.external_fragmentation(),
                tasks=len(app),
            )
        else:
            recorder.record_failure(
                position=position,
                app_name=app.name,
                phase=decision.phase,
                fragmentation=manager.external_fragmentation(),
                tasks=len(app),
            )
    return recorder


def run_dataset_sequences(
    prepared: PreparedDataset,
    weights: CostWeights,
    sequences: int = PAPER_SEQUENCES,
    seed: int = 0,
    platform: Platform | None = None,
    validation_mode: str = "skip",
    positions: int | None = None,
) -> list[SequenceRecorder]:
    """The paper's 30-random-sequence protocol for one dataset.

    Shuffle orders derive from ``seed`` and the sequence index only,
    so runs are reproducible and independent of dataset size.
    """
    platform = platform or default_platform()
    recorders = []
    for index in range(sequences):
        rng = random.Random((seed * 1_000_003 + index) & 0x7FFFFFFF)
        order = list(prepared.applications)
        rng.shuffle(order)
        recorders.append(
            run_sequence(order, weights, platform, validation_mode, positions)
        )
    return recorders
