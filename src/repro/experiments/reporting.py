"""Plain-text rendering of experiment outputs.

Every experiment prints the same rows/series the paper's tables and
figures report, as aligned ASCII — suitable for terminals, CI logs and
EXPERIMENTS.md diffs.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
) -> str:
    """Render rows as an aligned, pipe-separated table."""
    rendered = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def series_block(
    name: str,
    xs: Sequence,
    ys: Sequence,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one figure series as two aligned rows."""
    cells_x = [format_cell(x) for x in xs]
    cells_y = [format_cell(y) for y in ys]
    widths = [max(len(a), len(b)) for a, b in zip(cells_x, cells_y)]
    line_x = "  ".join(c.rjust(w) for c, w in zip(cells_x, widths))
    line_y = "  ".join(c.rjust(w) for c, w in zip(cells_y, widths))
    label_width = max(len(x_label), len(y_label))
    return (
        f"[{name}]\n"
        f"{x_label.ljust(label_width)}  {line_x}\n"
        f"{y_label.ljust(label_width)}  {line_y}"
    )


def admission_matrix(
    comm_weights: Sequence[float],
    frag_weights: Sequence[float],
    admitted: dict[tuple[float, float], bool],
    mark: str = "#",
    miss: str = ".",
) -> str:
    """Render the Fig. 10 admission map (frag weight rows, descending)."""
    lines = ["fragmentation weight rows (top = max), communication weight cols"]
    for frag in sorted(frag_weights, reverse=True):
        cells = "".join(
            mark if admitted.get((comm, frag)) else miss
            for comm in comm_weights
        )
        lines.append(f"{frag:>7g} | {cells}")
    footer_marks = " ".join(f"{c:g}" for c in comm_weights)
    lines.append(f"{'':>7} +-{'-' * len(comm_weights)}")
    lines.append(f"{'':>9}comm: {footer_marks}")
    return "\n".join(lines)
