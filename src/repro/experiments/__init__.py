"""Experiment harness: one module per paper table/figure.

==========  ==========================================================
module      regenerates
==========  ==========================================================
table1      Table I — failure distribution per phase
fig7        Fig. 7 — per-phase runtime vs application size
fig89       Figs. 8/9 — hops & fragmentation vs sequence position
fig10       Fig. 10 — beamforming admission map + case-study timing
==========  ==========================================================
"""

from repro.experiments.fig7 import Fig7Result, format_fig7, run_fig7
from repro.experiments.fig10 import (
    PAPER_CASE_STUDY_MS,
    Fig10Result,
    case_study_timing,
    format_fig10,
    run_fig10,
)
from repro.experiments.fig89 import (
    Fig89Result,
    ObjectiveSeries,
    format_fig8,
    format_fig9,
    run_fig89,
)
from repro.experiments.harness import (
    PAPER_APPS,
    PAPER_POSITIONS,
    PAPER_SEQUENCES,
    SMOKE,
    HarnessScale,
    PreparedDataset,
    default_platform,
    prepare_all_datasets,
    prepare_dataset,
    run_dataset_sequences,
    run_sequence,
)
from repro.experiments.workload import (
    CHURN_BENCH_CONFIG,
    CHURN_BENCH_POOL_SIZE,
    ROLLBACK_BENCH_OCCUPIES,
    ROLLBACK_BENCH_ROUTES,
    ChurnConfig,
    ChurnResult,
    WorkloadConfig,
    WorkloadStats,
    churn_pool,
    measure_mesh_rollback_seconds,
    run_admission_churn,
    run_workload,
    saturation_point,
)
from repro.experiments.table1 import (
    PAPER_TABLE1,
    Table1Result,
    Table1Row,
    format_table1,
    run_table1,
)

__all__ = [
    "CHURN_BENCH_CONFIG",
    "CHURN_BENCH_POOL_SIZE",
    "ChurnConfig",
    "ChurnResult",
    "Fig10Result",
    "Fig7Result",
    "Fig89Result",
    "HarnessScale",
    "ObjectiveSeries",
    "PAPER_APPS",
    "PAPER_CASE_STUDY_MS",
    "PAPER_POSITIONS",
    "PAPER_SEQUENCES",
    "PAPER_TABLE1",
    "PreparedDataset",
    "ROLLBACK_BENCH_OCCUPIES",
    "ROLLBACK_BENCH_ROUTES",
    "SMOKE",
    "Table1Result",
    "Table1Row",
    "WorkloadConfig",
    "WorkloadStats",
    "case_study_timing",
    "churn_pool",
    "default_platform",
    "format_fig10",
    "format_fig7",
    "format_fig8",
    "format_fig9",
    "format_table1",
    "measure_mesh_rollback_seconds",
    "prepare_all_datasets",
    "prepare_dataset",
    "run_admission_churn",
    "run_dataset_sequences",
    "run_fig10",
    "run_fig7",
    "run_fig89",
    "run_sequence",
    "run_table1",
    "run_workload",
    "saturation_point",
]
