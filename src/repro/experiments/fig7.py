"""Experiment E2 — Fig. 7: Kairos runtime per phase vs application size.

"For successful resource allocation attempts, the average execution
time of each phase in the resource manager is plotted in Fig. 7.
This approach scales quite well for realistic application sizes,
except for the validation phase."

We reproduce the measurement protocol: run the sequence benchmark with
validation in *report* mode (so its time is measured but never causes
rejection), keep only successful attempts, and average the per-phase
wall-clock milliseconds bucketed by the application's task count
(3..16).  Absolute numbers are host-Python, not 200 MHz-ARM; the
claims under test are the *shapes*: binding/mapping/routing grow
gently, validation grows fastest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.datasets import ALL_SPECS
from repro.arch.topology import Platform
from repro.core.cost import BOTH, CostWeights
from repro.experiments.harness import (
    HarnessScale,
    default_platform,
    prepare_dataset,
    run_dataset_sequences,
)
from repro.experiments.reporting import ascii_table
from repro.manager.layout import Phase
from repro.manager.metrics import timings_by_task_count

#: Fig. 7's x-axis
TASK_RANGE = range(3, 17)


@dataclass
class Fig7Result:
    #: task count -> phase name -> mean milliseconds
    series: dict[int, dict[str, float]]
    scale: HarnessScale

    def phase_series(self, phase: Phase) -> list[tuple[int, float]]:
        return [
            (tasks, values[phase.value])
            for tasks, values in sorted(self.series.items())
        ]

    def slowest_phase_at(self, tasks: int) -> str:
        values = self.series[tasks]
        return max(values, key=values.get)


def run_fig7(
    scale: HarnessScale = HarnessScale(),
    seed: int = 0,
    platform: Platform | None = None,
    weights: CostWeights = BOTH,
) -> Fig7Result:
    """Measure per-phase runtimes across all six datasets."""
    platform = platform or default_platform()
    recorders = []
    for spec in ALL_SPECS:
        prepared = prepare_dataset(
            spec, applications=scale.applications, seed=seed,
            platform=platform, weights=weights,
        )
        recorders.extend(
            run_dataset_sequences(
                prepared, weights, sequences=scale.sequences, seed=seed,
                platform=platform, validation_mode="report",
            )
        )
    series = timings_by_task_count(recorders)
    return Fig7Result(series=series, scale=scale)


def format_fig7(result: Fig7Result) -> str:
    headers = ["#tasks"] + [phase.value for phase in Phase] + ["total"]
    rows = []
    for tasks in sorted(result.series):
        values = result.series[tasks]
        per_phase = [values[phase.value] for phase in Phase]
        rows.append([tasks] + per_phase + [sum(per_phase)])
    return ascii_table(
        headers, rows,
        title=(
            "Fig. 7 (measured): mean per-phase runtime in ms by "
            "application size (successful attempts)"
        ),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    scale = HarnessScale.from_environment()
    print(format_fig7(run_fig7(scale)))


if __name__ == "__main__":  # pragma: no cover
    main()
