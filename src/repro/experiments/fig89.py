"""Experiments E3/E4 — Figs. 8 and 9: sequence-position series per
mapping objective.

Fig. 8: "the allocated number of hops per communication channel"
against the position in the application sequence, for the four cost
configurations None / Communication / Fragmentation / Both, with the
mapping success rate overlaid.

Fig. 9: "the external resource fragmentation of the elements in the
platform, in relation to the progression of the application
sequence", same four configurations, "averaged over all datasets".

Both figures share one measurement run (they are two projections of
the same records), so this module computes them together; the
``fig8``/``fig9`` wrappers expose the individual views the benchmark
suite regenerates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.datasets import ALL_SPECS
from repro.arch.topology import Platform
from repro.core.cost import NAMED_WEIGHTS
from repro.experiments.harness import (
    HarnessScale,
    default_platform,
    prepare_dataset,
    run_dataset_sequences,
)
from repro.experiments.reporting import series_block
from repro.manager.metrics import PositionSummary, summarize_positions


@dataclass
class ObjectiveSeries:
    """Per-position aggregates for one cost configuration."""

    objective: str
    summaries: list[PositionSummary] = field(default_factory=list)

    def positions(self) -> list[int]:
        return [s.position for s in self.summaries]

    def success_rate(self) -> list[float]:
        return [s.success_rate for s in self.summaries]

    def hops(self) -> list[float | None]:
        return [s.mean_hops for s in self.summaries]

    def fragmentation(self) -> list[float]:
        return [s.mean_fragmentation for s in self.summaries]

    def final_fragmentation(self) -> float:
        return self.summaries[-1].mean_fragmentation if self.summaries else 0.0

    def final_success_rate(self) -> float:
        return self.summaries[-1].success_rate if self.summaries else 0.0


@dataclass
class Fig89Result:
    series: dict[str, ObjectiveSeries]
    scale: HarnessScale

    def objective(self, name: str) -> ObjectiveSeries:
        return self.series[name]


def run_fig89(
    scale: HarnessScale = HarnessScale(),
    seed: int = 0,
    platform: Platform | None = None,
    objectives: dict | None = None,
) -> Fig89Result:
    """Run the shared Figs. 8/9 measurement over all datasets.

    For every objective, the full 30-sequence protocol is run on every
    dataset; positions are aggregated across datasets and sequences,
    matching "averaged over all datasets".
    """
    platform = platform or default_platform()
    objectives = objectives or NAMED_WEIGHTS
    result = Fig89Result(series={}, scale=scale)
    prepared = [
        prepare_dataset(
            spec, applications=scale.applications, seed=seed,
            platform=platform,
        )
        for spec in ALL_SPECS
    ]
    for name, weights in objectives.items():
        recorders = []
        for dataset in prepared:
            recorders.extend(
                run_dataset_sequences(
                    dataset, weights, sequences=scale.sequences, seed=seed,
                    platform=platform, validation_mode="skip",
                    positions=scale.positions,
                )
            )
        result.series[name] = ObjectiveSeries(
            objective=name,
            summaries=summarize_positions(recorders, scale.positions),
        )
    return result


def format_fig8(result: Fig89Result) -> str:
    """Fig. 8 view: hops per channel + success rate per objective."""
    blocks = [
        "Fig. 8 (measured): average communication resources allocated "
        "per channel"
    ]
    for name, series in result.series.items():
        blocks.append(
            series_block(
                f"{name}: hops/channel",
                series.positions(),
                series.hops(),
                x_label="position",
                y_label="hops",
            )
        )
        blocks.append(
            series_block(
                f"{name}: success rate %",
                series.positions(),
                series.success_rate(),
                x_label="position",
                y_label="rate",
            )
        )
    return "\n\n".join(blocks)


def format_fig9(result: Fig89Result) -> str:
    """Fig. 9 view: external fragmentation + success rate per objective."""
    blocks = [
        "Fig. 9 (measured): external fragmentation of platform resources"
    ]
    for name, series in result.series.items():
        blocks.append(
            series_block(
                f"{name}: fragmentation %",
                series.positions(),
                series.fragmentation(),
                x_label="position",
                y_label="frag",
            )
        )
        blocks.append(
            series_block(
                f"{name}: success rate %",
                series.positions(),
                series.success_rate(),
                x_label="position",
                y_label="rate",
            )
        )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI convenience
    scale = HarnessScale.from_environment()
    result = run_fig89(scale)
    print(format_fig8(result))
    print()
    print(format_fig9(result))


if __name__ == "__main__":  # pragma: no cover
    main()
