"""repro — reproduction of "Run-time Spatial Resource Management for
Real-Time Applications on Heterogeneous MPSoCs" (ter Braak, Hölzenspies,
Kuper, Hurink, Smit — DATE 2010).

The library implements the Kairos run-time resource manager and every
substrate it depends on:

* :mod:`repro.arch` — heterogeneous MPSoC platform model (elements,
  NoC topology, allocation state, fault injection, CRISP builder),
* :mod:`repro.apps` — annotated task graphs, implementations,
  constraints, the TGFF-like generator, the six paper datasets and the
  53-task beamforming case study,
* :mod:`repro.binding` — regret-ordered implementation selection,
* :mod:`repro.core` — **the paper's contribution**: the incremental
  MapApplication algorithm (ring search + GAP + two-objective cost),
* :mod:`repro.routing` — BFS / Dijkstra virtual-channel routing,
* :mod:`repro.validation` — SDF modelling and state-space throughput,
* :mod:`repro.manager` — the four-phase Kairos manager, bootstrap
  plans, fault recovery and evaluation metrics,
* :mod:`repro.baselines` — first-fit, random and exact mappers,
* :mod:`repro.experiments` — regeneration of Table I and Figs. 7-10,
* :mod:`repro.io` — the Kairos binary application format,
* :mod:`repro.sim` — the discrete-event admission service: event
  kernel, Poisson/MMPP traffic, QoS queue policies, SLA metrics and
  deterministic trace replay (``docs/simulation.md``),
* :mod:`repro.api` — **the public entry layer**: the
  :class:`AdmissionController` plan/commit façade with structured
  :class:`Decision` results and the :class:`PhasePipeline` strategy
  registry (``docs/api.md``).

Quick start::

    from repro import AdmissionController, crisp, beamforming_application

    controller = AdmissionController(crisp())
    decision = controller.admit(beamforming_application())
    print(decision.admitted, decision.layout.timings.as_milliseconds())

What-if probing without holding resources::

    plan = controller.plan(app)       # pipeline runs, state untouched
    ...                               # inspect plan.describe(), timings
    decision = controller.commit(plan)  # cheap apply (replans if stale)

(``Kairos.allocate`` still works but is a deprecated shim over
plan+commit; see the migration table in ``docs/api.md``.)
"""

from repro.apps import (
    Application,
    Channel,
    GeneratorConfig,
    Implementation,
    LatencyConstraint,
    Task,
    ThroughputConstraint,
    beamforming_application,
    generate,
    make_dataset,
    paper_datasets,
)
from repro.arch import (
    AllocationState,
    ElementType,
    Platform,
    ProcessingElement,
    ResourceVector,
    Router,
    crisp,
    heterogeneous_mesh,
    irregular,
    line,
    mesh,
    torus,
)
from repro.binding import BindingError, bind
from repro.core import (
    BOTH,
    COMMUNICATION,
    FRAGMENTATION,
    NONE,
    CostWeights,
    MappingCost,
    MappingError,
    MappingOptions,
    map_application,
)
from repro.manager import (
    AllocationFailure,
    ExecutionLayout,
    Kairos,
    Phase,
    generate_plan,
)
from repro.api import (
    AdmissionController,
    Decision,
    PhasePipeline,
    Plan,
)
from repro.reasons import ReasonCode
from repro.routing import BfsRouter, DijkstraRouter, RoutingError
from repro.validation import (
    SdfGraph,
    ValidationReport,
    analyze_throughput,
    validate_layout,
)

__version__ = "1.0.0"

__all__ = [
    "AdmissionController",
    "AllocationFailure",
    "AllocationState",
    "Application",
    "Decision",
    "PhasePipeline",
    "Plan",
    "ReasonCode",
    "BOTH",
    "BfsRouter",
    "BindingError",
    "COMMUNICATION",
    "Channel",
    "CostWeights",
    "DijkstraRouter",
    "ElementType",
    "ExecutionLayout",
    "FRAGMENTATION",
    "GeneratorConfig",
    "Implementation",
    "Kairos",
    "LatencyConstraint",
    "MappingCost",
    "MappingError",
    "MappingOptions",
    "NONE",
    "Phase",
    "Platform",
    "ProcessingElement",
    "ResourceVector",
    "Router",
    "RoutingError",
    "SdfGraph",
    "Task",
    "ThroughputConstraint",
    "ValidationReport",
    "analyze_throughput",
    "beamforming_application",
    "bind",
    "crisp",
    "generate",
    "generate_plan",
    "heterogeneous_mesh",
    "irregular",
    "line",
    "make_dataset",
    "map_application",
    "mesh",
    "paper_datasets",
    "torus",
    "validate_layout",
    "__version__",
]
