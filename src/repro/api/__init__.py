"""repro.api — the public admission entry layer (plan/commit façade).

* :class:`AdmissionController` — ``admit`` / ``plan`` / ``commit`` /
  ``plan_batch`` over a :class:`~repro.manager.kairos.Kairos`, with
  structured :class:`Decision` results and epoch-stamped :class:`Plan`
  objects (see :mod:`repro.api.controller`).
* :class:`PhasePipeline` + the strategy registry — named binder /
  mapper / router / validator strategies, including the four
  :mod:`repro.baselines` algorithms (see :mod:`repro.api.pipeline`).
* :class:`ReasonCode` — machine-readable failure classification,
  re-exported from :mod:`repro.reasons`.

The package ``__init__`` resolves its exports lazily (PEP 562): the
manager imports :mod:`repro.api.pipeline` while this package's
controller imports the manager, and laziness is what keeps that pair
acyclic.
"""

from __future__ import annotations

__all__ = [
    "AdmissionController",
    "Decision",
    "PhaseContext",
    "PhasePipeline",
    "Plan",
    "ReasonCode",
    "available_strategies",
    "register_binder",
    "register_mapper",
    "register_router",
    "register_validator",
]

_CONTROLLER_EXPORTS = {"AdmissionController", "Decision", "Plan"}
_PIPELINE_EXPORTS = {
    "PhaseContext",
    "PhasePipeline",
    "available_strategies",
    "register_binder",
    "register_mapper",
    "register_router",
    "register_validator",
}


def __getattr__(name: str):
    if name in _CONTROLLER_EXPORTS:
        from repro.api import controller

        return getattr(controller, name)
    if name in _PIPELINE_EXPORTS:
        from repro.api import pipeline

        return getattr(pipeline, name)
    if name == "ReasonCode":
        from repro.reasons import ReasonCode

        return ReasonCode
    raise AttributeError(f"module 'repro.api' has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
