"""The admission façade: plan → commit over :class:`~repro.manager.kairos.Kairos`.

This is the library's single public admission entry layer.  Three ways
in, all returning structured results instead of raising control-flow
exceptions on the hot path:

``admit(app)``
    one-shot plan+commit fused: runs the four-phase pipeline once and
    keeps a successful attempt's resources — the historical
    ``Kairos.allocate`` hot path, returning a :class:`Decision`.
``plan(app)`` → ``commit(plan)``
    the two-phase protocol.  ``plan`` runs binding / mapping / routing
    / validation inside a transaction and *rolls it back*: the
    returned :class:`Plan` is stamped with the capacity epoch it was
    computed against and holds **no resources** — what-if probing is
    free.  ``commit`` applies the planned layout atomically iff the
    epoch is unchanged (an O(mutations) replay, no pipeline re-run)
    and transparently replans otherwise.
``plan_batch([...])``
    plans a whole batch in one pass, each plan computed against the
    state its predecessors would leave behind, then unwinds everything
    — committing the batch in order replays each plan at exactly the
    epoch it expects, so the pipeline runs once per application total.

**Soundness of commit-by-replay.**  The capacity epoch is a monotonic
counter of committed ledger mutations; rollback rewinds counter and
ledgers together, so within a journal-consistent history equal epochs
certify bit-identical allocation state (see
:class:`~repro.arch.state.AllocationState`).  The pipeline is a
deterministic function of (specification, state); a successful plan's
net mutations are exactly one ``occupy`` per placement (in mapping
order) and one ``reserve_route`` per channel (in routing order).
Replaying those mutations against the same epoch therefore reproduces
the pipeline's post-admission state — same ledgers, same epoch, same
subsequent decisions — which is what the lockstep churn-digest tests
assert against ``benchmarks/seed_reference``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.apps.taskgraph import Application
from repro.arch.state import AllocationState, ChannelReservation
from repro.arch.topology import Platform
from repro.manager.kairos import Kairos
from repro.manager.layout import (
    AllocationFailure,
    ExecutionLayout,
    Phase,
    PhaseTimings,
)
from repro.reasons import ReasonCode

__all__ = ["AdmissionController", "Decision", "Plan"]


@dataclass
class Plan:
    """An epoch-stamped admission plan: a layout the platform *could*
    host, with no resources held.

    Produced by :meth:`AdmissionController.plan`.  ``epoch`` is the
    capacity epoch the plan was computed against;
    :meth:`AdmissionController.commit` applies the layout cheaply when
    the state still sits at that epoch and replans otherwise.  A plan
    whose pipeline failed has ``layout=None`` and carries the
    structured failure instead (phase, reason, code) — committing it
    yields a failed :class:`Decision` without re-running anything,
    unless the epoch moved (then the failure may no longer hold and
    commit replans).
    """

    app: Application = field(repr=False)
    app_id: str
    epoch: int
    layout: ExecutionLayout | None = field(default=None, repr=False)
    failure: AllocationFailure | None = field(default=None, repr=False)
    timings: PhaseTimings | None = field(default=None, repr=False)
    committed: bool = False

    @property
    def ok(self) -> bool:
        """True when the pipeline produced a committable layout."""
        return self.layout is not None

    @property
    def phase(self) -> Phase | None:
        return None if self.failure is None else self.failure.phase

    @property
    def reason(self) -> str | None:
        return None if self.failure is None else self.failure.reason

    @property
    def code(self) -> ReasonCode | None:
        return None if self.failure is None else self.failure.code

    def describe(self) -> str:
        """Human-readable plan summary (the CLI's ``repro plan`` body)."""
        lines = [
            f"plan for {self.app.name!r} as {self.app_id} "
            f"@ epoch {self.epoch}: "
            + ("ADMISSIBLE" if self.ok else "REJECTED")
        ]
        if self.timings is not None:
            recorded = self.timings.recorded_items()
            if recorded:
                lines.append(
                    "  per-phase timings (ms): "
                    + ", ".join(
                        f"{phase} {seconds * 1000.0:.2f}"
                        for phase, seconds in recorded
                    )
                )
        if self.ok:
            placement = self.layout.placement
            lines.append(
                f"  {len(placement)} tasks over "
                f"{len(set(placement.values()))} elements, "
                f"{len(self.layout.routes)} routed + "
                f"{len(self.layout.local_channels)} local channels"
            )
        else:
            lines.append(
                f"  failed in {self.phase.value} "
                f"[code: {self.code}]: {self.reason}"
            )
        lines.append(
            "  resources held: none (plans are free until committed)"
        )
        return "\n".join(lines)


@dataclass
class Decision:
    """The structured outcome of an admission attempt.

    Replaces :class:`AllocationFailure` control flow on the façade's
    hot path: ``admitted`` tells you what happened, ``code`` tells a
    machine why not, ``reason`` tells a human, and the original
    exception object (when any) rides along in ``failure`` for the
    compatibility shim.
    """

    admitted: bool
    app_id: str
    #: committed capacity epoch observed right after the decision
    epoch: int
    layout: ExecutionLayout | None = field(default=None, repr=False)
    phase: Phase | None = None
    reason: str | None = None
    code: ReasonCode | None = None
    timings: PhaseTimings | None = field(default=None, repr=False)
    #: commit() found the plan's epoch stale and re-ran the pipeline
    replanned: bool = False
    #: the fast path served this decision without running the pipeline
    memoized: bool = False
    gated: bool = False
    failure: AllocationFailure | None = field(default=None, repr=False)
    plan: Plan | None = field(default=None, repr=False)


def _failed_decision(
    failure: AllocationFailure,
    epoch: int,
    *,
    replanned: bool = False,
    plan: Plan | None = None,
) -> Decision:
    return Decision(
        admitted=False,
        app_id=failure.app_id,
        epoch=epoch,
        phase=failure.phase,
        reason=failure.reason,
        code=failure.code,
        timings=failure.timings,
        replanned=replanned,
        memoized=failure.memoized,
        gated=failure.gated,
        failure=failure,
        plan=plan,
    )


class AdmissionController:
    """Plan/commit admission façade over one :class:`Kairos` manager.

    Construct over a platform (keyword arguments are forwarded to
    :class:`Kairos`, including ``pipeline=`` for a custom
    :class:`~repro.api.pipeline.PhasePipeline`), or wrap an existing
    manager with :meth:`wrap` — either way there is exactly one
    controller per manager and ``manager.controller`` returns it.
    """

    def __init__(self, platform: Platform, **kairos_kwargs) -> None:
        manager = Kairos(platform, **kairos_kwargs)
        self._bind(manager)

    @classmethod
    def wrap(cls, manager: Kairos) -> "AdmissionController":
        """The controller of an existing manager (one per manager)."""
        existing = manager._controller
        if existing is not None:
            return existing
        controller = cls.__new__(cls)
        controller._bind(manager)
        return controller

    def _bind(self, manager: Kairos) -> None:
        if manager._controller is not None:
            raise ValueError("manager already has a controller")
        self.manager = manager
        manager._controller = self
        # registry handles, interned once per controller — admission
        # outcome counters live under ``admit.*`` in a snapshot
        obs = manager.obs
        self._obs = obs
        self._c_attempts = obs.registry.counter("admit.attempts")
        self._c_admitted = obs.registry.counter("admit.admitted")
        self._c_rejected = obs.registry.counter("admit.rejected")
        self._c_plans = obs.registry.counter("admit.plans")
        self._c_commits = obs.registry.counter("admit.commits")
        self._c_replans = obs.registry.counter("admit.replans")

    # -- convenient views ---------------------------------------------------

    @property
    def platform(self) -> Platform:
        return self.manager.platform

    @property
    def state(self) -> AllocationState:
        return self.manager.state

    @property
    def pipeline(self):
        return self.manager.pipeline

    @property
    def admitted(self) -> dict[str, ExecutionLayout]:
        return self.manager.admitted

    # -- one-shot admission -------------------------------------------------

    def admit(self, app: Application, app_id: str | None = None) -> Decision:
        """One atomic admission attempt; never raises on rejection.

        This is the hot path the sim service, the experiment harness
        and the benchmarks run on: pipeline once, keep on success —
        byte-for-byte the decisions ``Kairos.allocate`` historically
        made, as a :class:`Decision` instead of an exception.
        """
        manager = self.manager
        self._c_attempts.inc()
        with self._obs.tracer.span("admit"):
            try:
                layout = manager._admit_direct(app, app_id)
            except AllocationFailure as failure:
                self._c_rejected.inc()
                return _failed_decision(failure, manager.state.epoch)
        self._c_admitted.inc()
        return Decision(
            admitted=True,
            app_id=layout.app_id,
            epoch=manager.state.epoch,
            layout=layout,
            timings=layout.timings,
        )

    # -- the two-phase protocol ---------------------------------------------

    def plan(self, app: Application, app_id: str | None = None) -> Plan:
        """Run the pipeline transactionally and unwind: a free probe.

        After this returns, the allocation state is bit-identical to
        before the call — journal fully unwound, capacity epoch
        restored — whatever the outcome.  The returned plan is stamped
        with that epoch.
        """
        manager = self.manager
        epoch = manager.state.epoch
        self._c_plans.inc()
        with self._obs.tracer.span("plan"):
            try:
                layout = manager._attempt(app, app_id, hold=False)
            except AllocationFailure as failure:
                return Plan(
                    app=app,
                    app_id=failure.app_id,
                    epoch=epoch,
                    failure=failure,
                    timings=failure.timings,
                )
        return Plan(
            app=app,
            app_id=layout.app_id,
            epoch=epoch,
            layout=layout,
            timings=layout.timings,
        )

    def commit(self, plan: Plan) -> Decision:
        """Apply a plan atomically, replanning if the epoch moved on.

        * plan epoch == state epoch, plan ok: the planned layout is
          applied by replaying its mutations inside one transaction —
          O(placements + route hops), no pipeline re-run — and the
          application is registered as admitted.
        * plan epoch == state epoch, plan failed: the recorded failure
          is replayed (the pipeline would fail identically).
        * epoch moved (either direction of outcome): the admission is
          recomputed against the current state in a single held
          pipeline pass (no plan-then-replay double work);
          ``Decision.replanned`` is set.

        A plan commits at most once (``ValueError`` on reuse; a commit
        that raises — e.g. on a duplicate ``app_id`` — does not burn
        the plan).
        """
        if plan.committed:
            raise ValueError(
                f"plan for {plan.app_id!r} has already been committed"
            )
        manager = self.manager
        state = manager.state
        self._c_commits.inc()
        if state.epoch != plan.epoch:
            # the capacity landscape changed under the plan: replan
            # transparently at the current epoch.  A stale *failure*
            # is reconsidered too — capacity may have been freed.
            # One held pipeline pass, not plan-then-replay.
            self._c_replans.inc()
            with self._obs.tracer.span("commit.replan"):
                try:
                    layout = manager._admit_direct(plan.app, plan.app_id)
                except AllocationFailure as failure:
                    plan.committed = True
                    return _failed_decision(
                        failure, state.epoch, replanned=True, plan=plan
                    )
            plan.committed = True
            return Decision(
                admitted=True,
                app_id=layout.app_id,
                epoch=state.epoch,
                layout=layout,
                timings=layout.timings,
                replanned=True,
                plan=plan,
            )
        if not plan.ok:
            plan.committed = True
            return _failed_decision(plan.failure, state.epoch, plan=plan)
        if plan.app_id in manager.admitted:
            raise ValueError(f"app_id {plan.app_id!r} already admitted")
        with self._obs.tracer.span("commit.apply"):
            layout = self._apply_layout(plan.layout, plan.app)
        plan.committed = True
        return Decision(
            admitted=True,
            app_id=layout.app_id,
            epoch=state.epoch,
            layout=layout,
            timings=layout.timings,
            plan=plan,
        )

    def plan_batch(
        self,
        apps: list[Application],
        app_ids: list[str] | None = None,
    ) -> list[Plan]:
        """Plan a batch in one pass; the state is untouched afterwards.

        Plans are computed *sequentially*: each one against the state
        its committed predecessors would produce, inside one outer
        transaction that is rolled back at the end.  Committing the
        returned plans in order therefore finds each plan's epoch
        unchanged and applies it without re-running the pipeline —
        the batch runs the pipeline once per application, and the
        binder/mapping scratch pools plus the gate's demand cache stay
        warm across the whole pass.
        """
        if app_ids is not None and len(app_ids) != len(apps):
            raise ValueError("app_ids must match apps one to one")
        manager = self.manager
        state = manager.state
        plans: list[Plan] = []
        mark = state._tx_begin()
        try:
            for index, app in enumerate(apps):
                app_id = None if app_ids is None else app_ids[index]
                epoch = state.epoch
                try:
                    layout = manager._attempt(app, app_id, hold=True)
                except AllocationFailure as failure:
                    plans.append(Plan(
                        app=app, app_id=failure.app_id, epoch=epoch,
                        failure=failure, timings=failure.timings,
                    ))
                else:
                    plans.append(Plan(
                        app=app, app_id=layout.app_id, epoch=epoch,
                        layout=layout, timings=layout.timings,
                    ))
        finally:
            state._tx_rollback(mark)
        return plans

    def commit_batch(self, plans: list[Plan]) -> list[Decision]:
        """Commit plans in order (the cheap path for a fresh batch)."""
        return [self.commit(plan) for plan in plans]

    # -- lifecycle passthroughs ---------------------------------------------

    def release(self, app_id: str) -> None:
        self.manager.release(app_id)

    def release_all(self) -> None:
        self.manager.release_all()

    def recover(self, applications=None, order: str = "admission"):
        """One immediate recovery pass (see :meth:`Kairos.recover`).

        For structured per-application :class:`Decision` outcomes, a
        requeue and retry budgets, use :meth:`recovery_engine`.
        """
        return self.manager.recover(applications, order=order)

    def recovery_engine(self, policy=None):
        """A :class:`~repro.resilience.RecoveryEngine` over this manager.

        The engine's passes re-admit through :meth:`admit`, so every
        recovery outcome is a structured :class:`Decision` with its
        :class:`~repro.reasons.ReasonCode` — the policy controls
        ordering, requeue and backoff.
        """
        from repro.resilience.recovery import RecoveryEngine

        return RecoveryEngine(
            self.manager, policy, health=self.manager.health
        )

    # -- internals -----------------------------------------------------------

    def _apply_layout(
        self, layout: ExecutionLayout, app: Application
    ) -> ExecutionLayout:
        """Replay a planned layout's mutations and register it.

        Applies exactly the mutations the pipeline made when the plan
        was computed, in the same order — one ``occupy`` per placement
        (mapping order) then one ``reserve_route`` per channel
        (routing order).  The epoch check certified the state is the
        one the pipeline succeeded against, so the replay cannot fail;
        a failure therefore indicates a certification bug, and the
        partial admission is unwound via ``release_application``
        (journal-free atomicity: the commit hot path pays no undo-log
        tax).  Reservation objects are re-minted by the state; the
        registered layout carries the live ones.
        """
        manager = self.manager
        state = manager.state
        binding = layout.binding
        app_id = layout.app_id
        occupy = state.occupy
        reserve = state.reserve_route
        routes: dict[str, ChannelReservation] = {}
        try:
            for task, element in layout.placement.items():
                occupy(element, app_id, task, binding[task].requirement)
            for channel, reservation in layout.routes.items():
                routes[channel] = reserve(
                    app_id, channel, reservation.path, reservation.bandwidth
                )
        except BaseException:  # pragma: no cover - certification bug
            # everything applied so far belongs to app_id and nothing
            # else does: releasing the app is an exact undo
            state.release_application(app_id)
            raise
        final = replace(layout, routes=routes)
        manager.admitted[app_id] = final
        manager.specifications[app_id] = app
        return final
