"""The phase-strategy registry and the :class:`PhasePipeline`.

The paper's work-flow (Fig. 1) is four phases — binding, mapping,
routing, validation — and until this module every alternative
algorithm for a phase was a parallel code path: the manager hardcoded
``bind`` / ``map_application`` / a router object / ``validate_layout``
while :mod:`repro.baselines` offered first-fit, random, annealing and
branch-and-bound mappers behind different call conventions.

Here each phase becomes a *named strategy* with one uniform signature,
resolved from a registry:

* **binder**\\ ``(app, state, ctx) -> dict[task, Implementation]``
* **mapper**\\ ``(app, binding, state, ctx) -> MappingResult``
* **router**\\ ``(app, placement, state, ctx) -> RoutingResult``
* **validator**\\ ``(app, binding, mapping, routing, state, ctx) ->
  ValidationReport | None``

``ctx`` is a :class:`PhaseContext` — the state-container-injection
shape: one object carrying the cost callable, phase options, the
attempt's ``app_id`` and the manager's distance-field engine, so a
strategy never reaches back into the manager.

A :class:`PhasePipeline` bundles one strategy per phase (plus per-
strategy keyword parameters) and runs them in order with per-phase
wall-clock timing, translating each phase error into an
:class:`~repro.manager.layout.AllocationFailure` tagged with the
failing :class:`~repro.manager.layout.Phase` and its
:class:`~repro.reasons.ReasonCode` — exactly the behaviour
``Kairos._run_phases`` had, now swappable piecewise.

Register your own strategy with the ``register_*`` decorators::

    from repro.api import register_mapper

    @register_mapper("my_mapper")
    def my_mapper(app, binding, state, ctx):
        ...  # occupy elements, return MappingResult

    controller = AdmissionController(platform,
                                     pipeline=PhasePipeline(mapper="my_mapper"))
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.apps.implementations import Implementation
from repro.apps.taskgraph import Application
from repro.arch.state import AllocationError, AllocationState
from repro.baselines.annealing import annealed_map
from repro.baselines.exhaustive import (
    InstanceTooLargeError,
    optimal_map,
)
from repro.baselines.first_fit import first_fit_map
from repro.baselines.random_map import random_map
from repro.binding.binder import BindingError, bind
from repro.core.mapping import (
    MappingError,
    MappingOptions,
    MappingResult,
    map_application,
)
from repro.manager.layout import AllocationFailure, Phase, PhaseTimings
from repro.obs import DISABLED, Observability
from repro.reasons import ReasonCode
from repro.routing.router import (
    BaseRouter,
    BfsRouter,
    DijkstraRouter,
    RoutingError,
    RoutingResult,
)
from repro.validation.builder import SdfModelOptions
from repro.validation.validator import validate_layout

__all__ = [
    "PhaseContext",
    "PhasePipeline",
    "available_strategies",
    "register_binder",
    "register_mapper",
    "register_router",
    "register_validator",
]


@dataclass
class PhaseContext:
    """Per-attempt dependency container injected into every strategy.

    One instance travels through all four phases of one attempt; it is
    the only channel between the manager's configuration and the
    strategies, so a pipeline can be rehosted (sim service, CLI,
    experiments, tests) without re-plumbing keyword arguments.
    """

    app_id: str
    #: the mapping cost callable (MappingCost, CompositeCost or custom)
    cost: Any = None
    mapping_options: MappingOptions = field(default_factory=MappingOptions)
    sdf_options: SdfModelOptions = field(default_factory=SdfModelOptions)
    validation_mode: str = "report"
    validation_max_firings: int | None = None
    #: the manager's DistanceFieldEngine (None when incremental=False)
    engine: Any = None
    #: binder quality weight (see repro.binding.binder.bind)
    quality_weight: float = 0.0
    #: the manager's HealthRegistry (None when resilience is off) —
    #: custom strategies may query element/link health; the default
    #: mapping cost already carries its soft penalties via
    #: :class:`~repro.resilience.HealthAwareCost`
    health: Any = None
    #: the manager's observability bundle (repro.obs) — DISABLED by
    #: default; the pipeline publishes ``phase.*.seconds`` histograms
    #: and phase spans through it, and custom strategies may add their
    #: own metrics/spans (never read them back into decisions)
    obs: Observability = DISABLED


# -- the registry ------------------------------------------------------------

_BINDERS: dict[str, Callable] = {}
_MAPPERS: dict[str, Callable] = {}
_ROUTERS: dict[str, Callable] = {}
_VALIDATORS: dict[str, Callable] = {}

_KIND_TABLES = {
    "binder": _BINDERS,
    "mapper": _MAPPERS,
    "router": _ROUTERS,
    "validator": _VALIDATORS,
}


def _register(table: dict[str, Callable], name: str) -> Callable:
    def decorate(strategy: Callable) -> Callable:
        if name in table:
            raise ValueError(f"strategy {name!r} is already registered")
        table[name] = strategy
        return strategy

    return decorate


def register_binder(name: str) -> Callable:
    """Decorator: register ``fn(app, state, ctx) -> binding dict``."""
    return _register(_BINDERS, name)


def register_mapper(name: str) -> Callable:
    """Decorator: register ``fn(app, binding, state, ctx) -> MappingResult``."""
    return _register(_MAPPERS, name)


def register_router(name: str) -> Callable:
    """Decorator: register ``fn(app, placement, state, ctx) -> RoutingResult``."""
    return _register(_ROUTERS, name)


def register_validator(name: str) -> Callable:
    """Decorator: register ``fn(app, binding, mapping, routing, state, ctx)``."""
    return _register(_VALIDATORS, name)


def available_strategies() -> dict[str, tuple[str, ...]]:
    """Registered strategy names per phase kind (for CLIs and docs)."""
    return {
        kind: tuple(sorted(table)) for kind, table in _KIND_TABLES.items()
    }


def _resolve(kind: str, name: str) -> Callable:
    table = _KIND_TABLES[kind]
    strategy = table.get(name)
    if strategy is None:
        raise ValueError(
            f"unknown {kind} strategy {name!r}; registered: {sorted(table)}"
        )
    return strategy


# -- built-in strategies -----------------------------------------------------


@register_binder("regret")
def _regret_binder(app, state, ctx, **params):
    """The paper's regret-ordered implementation selection."""
    result = bind(app, state, quality_weight=ctx.quality_weight, **params)
    return result.choice


@register_mapper("kairos")
def _kairos_mapper(app, binding, state, ctx, **params):
    """MapApplication (ring search + GAP + two-objective cost)."""
    return map_application(
        app, binding, state,
        cost=ctx.cost, options=ctx.mapping_options,
        app_id=ctx.app_id, engine=ctx.engine, **params,
    )


@register_mapper("first_fit")
def _first_fit_mapper(app, binding, state, ctx, **params):
    """Plain first-fit (ablation A3's strawman) as a pipeline strategy."""
    return first_fit_map(app, binding, state, app_id=ctx.app_id, **params)


@register_mapper("random")
def _random_mapper(app, binding, state, ctx, *, seed: int = 0, **params):
    """Uniformly random feasible placement (the sanity floor)."""
    return random_map(
        app, binding, state, seed=seed, app_id=ctx.app_id, **params
    )


@register_mapper("annealing")
def _annealing_mapper(app, binding, state, ctx, **params):
    """Simulated-annealing placement (the design-time comparator)."""
    return annealed_map(app, binding, state, app_id=ctx.app_id, **params)


@register_mapper("optimal")
def _optimal_mapper(app, binding, state, ctx, **params):
    """Branch-and-bound optimum, committed into the state like the others.

    :func:`~repro.baselines.exhaustive.optimal_map` deliberately leaves
    the state untouched; as a pipeline strategy its winning placement
    is occupied here so the routing phase sees the same contract every
    other mapper provides.  Oversized instances and infeasible apps
    surface as :class:`MappingError` (→ a mapping-phase failure), not
    as foreign exception types.
    """
    try:
        solution = optimal_map(app, binding, state, **params)
    except (InstanceTooLargeError, ValueError) as exc:
        raise MappingError(str(exc)) from exc
    result = MappingResult(placement={}, anchors={})
    for task in sorted(solution.placement):
        element = solution.placement[task]
        try:
            state.occupy(element, ctx.app_id, task, binding[task].requirement)
        except AllocationError as exc:  # pragma: no cover - solver-verified
            raise MappingError(str(exc)) from exc
        result.placement[task] = element
    return result


def _route_with(router: BaseRouter, app, placement, state, ctx) -> RoutingResult:
    return router.route_application(
        app, placement, state, app_id=ctx.app_id, engine=ctx.engine
    )


@register_router("bfs")
def _bfs_router(app, placement, state, ctx, **params):
    """Breadth-first routing (the paper's default)."""
    return _route_with(BfsRouter(**params), app, placement, state, ctx)


@register_router("dijkstra")
def _dijkstra_router(app, placement, state, ctx, **params):
    """Congestion-aware Dijkstra routing (the comparator)."""
    return _route_with(DijkstraRouter(**params), app, placement, state, ctx)


def _validate_with_method(method):
    def validator(app, binding, mapping, routing, state, ctx, **params):
        kwargs = dict(params)
        kwargs.setdefault("max_firings", ctx.validation_max_firings)
        if kwargs["max_firings"] is None:
            del kwargs["max_firings"]
        return validate_layout(
            app, binding, mapping.placement, routing.routes, state,
            options=ctx.sdf_options, method=method, **kwargs,
        )

    return validator


#: exact state-space exploration (the paper's approach)
register_validator("simulation")(_validate_with_method("simulation"))
#: maximum cycle ratio (the Section V future-work scheme)
register_validator("analytical")(_validate_with_method("analytical"))


@register_validator("skip")
def _skip_validator(app, binding, mapping, routing, state, ctx, **params):
    """Omit the validation phase entirely (no report, no timing)."""
    return None


# -- the pipeline ------------------------------------------------------------


class PhasePipeline:
    """One strategy per phase, run in the Fig. 1 order with timing.

    Parameters are strategy *names* (resolved against the registry) or
    direct callables with the strategy signature; ``router`` also
    accepts a ready :class:`~repro.routing.router.BaseRouter` instance
    (the manager's pre-PR 5 calling convention).  ``*_params`` are
    keyword arguments forwarded to the strategy on every call — e.g.
    ``mapper="random", mapper_params={"seed": 7}``.

    :meth:`run` mutates ``state`` (occupations + route reservations);
    the caller provides atomicity, exactly as with the old
    ``Kairos._run_phases``.
    """

    def __init__(
        self,
        binder: str | Callable = "regret",
        mapper: str | Callable = "kairos",
        router: str | Callable | BaseRouter = "bfs",
        validator: str | Callable = "simulation",
        binder_params: dict | None = None,
        mapper_params: dict | None = None,
        router_params: dict | None = None,
        validator_params: dict | None = None,
    ) -> None:
        self.binder_name = binder if isinstance(binder, str) else getattr(
            binder, "__name__", "custom")
        self.mapper_name = mapper if isinstance(mapper, str) else getattr(
            mapper, "__name__", "custom")
        self.validator_name = (
            validator if isinstance(validator, str)
            else getattr(validator, "__name__", "custom")
        )
        self.binder = _resolve("binder", binder) if isinstance(
            binder, str) else binder
        self.mapper = _resolve("mapper", mapper) if isinstance(
            mapper, str) else mapper
        if isinstance(router, BaseRouter):
            instance = router
            self.router = (
                lambda app, placement, state, ctx, **params:
                _route_with(instance, app, placement, state, ctx)
            )
            self.router_name = type(router).__name__
            self.router_instance: BaseRouter | None = router
        else:
            self.router = _resolve("router", router) if isinstance(
                router, str) else router
            self.router_name = router if isinstance(router, str) else getattr(
                router, "__name__", "custom")
            self.router_instance = None
        self.validator = _resolve("validator", validator) if isinstance(
            validator, str) else validator
        self.binder_params = dict(binder_params or {})
        self.mapper_params = dict(mapper_params or {})
        self.router_params = dict(router_params or {})
        self.validator_params = dict(validator_params or {})

    def describe(self) -> dict[str, str]:
        """Strategy names per phase (diagnostics, docs, CLI)."""
        return {
            "binder": self.binder_name,
            "mapper": self.mapper_name,
            "router": self.router_name,
            "validator": self.validator_name,
        }

    def run(
        self,
        app: Application,
        app_id: str,
        state: AllocationState,
        ctx: PhaseContext,
        timings: PhaseTimings,
    ):
        """Binding, mapping, routing, validation — one attempt.

        Returns ``(binding, mapping, routing, report)``; raises
        :class:`AllocationFailure` tagged with the failing phase and
        reason code.  Mutates ``state``; the caller provides atomicity.
        """
        obs = ctx.obs
        tracer = obs.tracer
        registry = obs.registry

        # 1. binding
        started = time.perf_counter()
        try:
            with tracer.span("phase.binding"):
                binding = self.binder(app, state, ctx, **self.binder_params)
        except BindingError as exc:
            raise AllocationFailure(
                Phase.BINDING, app_id, str(exc),
                code=getattr(exc, "code", None),
            ) from exc
        finally:
            elapsed = time.perf_counter() - started
            timings.record(Phase.BINDING, elapsed)
            registry.histogram("phase.binding.seconds").observe(elapsed)

        # 2. mapping
        started = time.perf_counter()
        try:
            with tracer.span("phase.mapping"):
                mapping = self.mapper(
                    app, binding, state, ctx, **self.mapper_params
                )
        except MappingError as exc:
            raise AllocationFailure(
                Phase.MAPPING, app_id, str(exc),
                code=getattr(exc, "code", None),
            ) from exc
        finally:
            elapsed = time.perf_counter() - started
            timings.record(Phase.MAPPING, elapsed)
            registry.histogram("phase.mapping.seconds").observe(elapsed)

        # 3. routing
        started = time.perf_counter()
        try:
            with tracer.span("phase.routing"):
                routing = self.router(
                    app, mapping.placement, state, ctx, **self.router_params
                )
        except RoutingError as exc:
            raise AllocationFailure(
                Phase.ROUTING, app_id, str(exc),
                code=getattr(exc, "code", None),
            ) from exc
        finally:
            elapsed = time.perf_counter() - started
            timings.record(Phase.ROUTING, elapsed)
            registry.histogram("phase.routing.seconds").observe(elapsed)

        # 4. validation (the "skip" strategy records no timing at all,
        # matching the manager's historical validation_mode="skip")
        report = None
        if self.validator is not _skip_validator:
            started = time.perf_counter()
            try:
                with tracer.span("phase.validation"):
                    report = self.validator(
                        app, binding, mapping, routing, state, ctx,
                        **self.validator_params,
                    )
            finally:
                elapsed = time.perf_counter() - started
                timings.record(Phase.VALIDATION, elapsed)
                registry.histogram(
                    "phase.validation.seconds"
                ).observe(elapsed)
            if (
                report is not None
                and ctx.validation_mode == "enforce"
                and not report.satisfied
            ):
                reasons = "; ".join(
                    f"{c.constraint.describe()} (achieved {c.achieved:g})"
                    for c in report.violations()
                ) or "deadlocked dataflow graph"
                code = (
                    ReasonCode.VALIDATION_CONSTRAINT
                    if report.violations()
                    else ReasonCode.VALIDATION_DEADLOCK
                )
                raise AllocationFailure(
                    Phase.VALIDATION, app_id, reasons, code=code
                )

        return binding, mapping, routing, report
