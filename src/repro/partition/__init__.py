"""Design-time partitioning: operation graphs -> annotated task graphs."""

from repro.partition.cluster import (
    Ceiling,
    Partition,
    PartitionError,
    partition_operations,
    partition_to_application,
)
from repro.partition.opgraph import (
    DataEdge,
    Operation,
    OperationGraph,
    OpGraphError,
    random_operation_graph,
)

__all__ = [
    "Ceiling",
    "DataEdge",
    "Operation",
    "OperationGraph",
    "OpGraphError",
    "Partition",
    "PartitionError",
    "partition_operations",
    "partition_to_application",
    "random_operation_graph",
]
