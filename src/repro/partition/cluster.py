"""Design-time partitioning: operations -> tasks (paper Fig. 1, step 0).

The partitioner turns an :class:`OperationGraph` into the annotated
task graph the run-time phases consume.  The optimisation problem is
the classic one behind [4]: group operations into clusters such that

* every cluster fits a per-task resource ceiling (so the binding phase
  can find an element for it), and
* the *cut traffic* — data crossing cluster boundaries, which becomes
  NoC channels at run time — is minimal.

Algorithm: greedy heavy-edge agglomeration followed by a
Kernighan–Lin-style refinement sweep:

1. start with singleton clusters;
2. repeatedly merge the pair of clusters joined by the heaviest
   inter-cluster traffic whose union still fits the ceiling;
3. refine: repeatedly move a single operation to a neighbouring
   cluster when that strictly reduces the cut and respects the
   ceiling, until a sweep makes no move (the KL/FM move step without
   the tentative-negative-gain phase — monotone, hence terminating).

The result converts to an :class:`~repro.apps.taskgraph.Application`
whose channels aggregate the surviving inter-cluster edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.implementations import Implementation
from repro.apps.taskgraph import Application, Channel, Task
from repro.arch.elements import ElementType, default_capacity
from repro.arch.resources import ResourceVector
from repro.partition.opgraph import OperationGraph


class PartitionError(ValueError):
    """Raised when no feasible partition exists."""


@dataclass(frozen=True)
class Ceiling:
    """Per-task resource budget (defaults: one DSP tile)."""

    cycles: int = 100
    memory: int = 32

    def fits(self, cycles: int, memory: int) -> bool:
        return cycles <= self.cycles and memory <= self.memory


@dataclass
class Partition:
    """Clusters of operation names plus derived statistics."""

    graph: OperationGraph
    clusters: list[set[str]] = field(default_factory=list)

    def cluster_of(self, operation: str) -> int:
        for index, cluster in enumerate(self.clusters):
            if operation in cluster:
                return index
        raise PartitionError(f"operation {operation!r} not in any cluster")

    def cluster_cycles(self, index: int) -> int:
        return sum(
            self.graph.operations[op].cycles for op in self.clusters[index]
        )

    def cluster_memory(self, index: int) -> int:
        return sum(
            self.graph.operations[op].memory for op in self.clusters[index]
        )

    def cut_traffic(self) -> float:
        """Total traffic on edges whose endpoints live in different
        clusters — the run-time NoC demand this partition induces."""
        assignment = {}
        for index, cluster in enumerate(self.clusters):
            for op in cluster:
                assignment[op] = index
        return sum(
            edge.traffic
            for edge in self.graph.edges
            if assignment[edge.source] != assignment[edge.target]
        )

    def validate(self, ceiling: Ceiling) -> None:
        seen: set[str] = set()
        for index, cluster in enumerate(self.clusters):
            if not cluster:
                raise PartitionError(f"cluster {index} is empty")
            overlap = seen & cluster
            if overlap:
                raise PartitionError(f"operations {overlap} in two clusters")
            seen |= cluster
            if not ceiling.fits(self.cluster_cycles(index),
                                self.cluster_memory(index)):
                raise PartitionError(f"cluster {index} exceeds the ceiling")
        missing = set(self.graph.operations) - seen
        if missing:
            raise PartitionError(f"operations {missing} unassigned")


def partition_operations(
    graph: OperationGraph,
    ceiling: Ceiling = Ceiling(),
) -> Partition:
    """Partition ``graph`` under ``ceiling``; see module docstring.

    Raises :class:`PartitionError` when some single operation exceeds
    the ceiling (no partition can fix that).
    """
    graph.validate()
    for op in graph.operations.values():
        if not ceiling.fits(op.cycles, op.memory):
            raise PartitionError(
                f"operation {op.name!r} alone exceeds the ceiling "
                f"({op.cycles} cycles / {op.memory} memory)"
            )

    # union-find over operations
    parent: dict[str, str] = {name: name for name in graph.operations}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    cycles = {name: op.cycles for name, op in graph.operations.items()}
    memory = {name: op.memory for name, op in graph.operations.items()}

    # 1+2. heavy-edge agglomeration
    ordered = sorted(
        graph.edges, key=lambda e: (-e.traffic, e.source, e.target)
    )
    for edge in ordered:
        root_a, root_b = find(edge.source), find(edge.target)
        if root_a == root_b:
            continue
        merged_cycles = cycles[root_a] + cycles[root_b]
        merged_memory = memory[root_a] + memory[root_b]
        if not ceiling.fits(merged_cycles, merged_memory):
            continue
        parent[root_b] = root_a
        cycles[root_a] = merged_cycles
        memory[root_a] = merged_memory

    clusters_by_root: dict[str, set[str]] = {}
    for name in graph.operations:
        clusters_by_root.setdefault(find(name), set()).add(name)
    clusters = [clusters_by_root[root] for root in sorted(clusters_by_root)]
    partition = Partition(graph=graph, clusters=clusters)

    # 3. single-move refinement (monotone cut reduction)
    _refine(partition, ceiling)
    partition.validate(ceiling)
    return partition


def _refine(partition: Partition, ceiling: Ceiling) -> None:
    graph = partition.graph
    assignment = {}
    for index, cluster in enumerate(partition.clusters):
        for op in cluster:
            assignment[op] = index

    # per-operation traffic towards each cluster
    def traffic_to(op: str) -> dict[int, float]:
        totals: dict[int, float] = {}
        for edge in graph.edges:
            if edge.source == op:
                other = assignment[edge.target]
            elif edge.target == op:
                other = assignment[edge.source]
            else:
                continue
            totals[other] = totals.get(other, 0.0) + edge.traffic
        return totals

    improved = True
    sweeps = 0
    while improved and sweeps < 2 * len(graph.operations):
        improved = False
        sweeps += 1
        for op in sorted(graph.operations):
            home = assignment[op]
            if len(partition.clusters[home]) == 1:
                continue  # moving the last op just renames the cluster
            towards = traffic_to(op)
            internal = towards.get(home, 0.0)
            op_cycles = graph.operations[op].cycles
            op_memory = graph.operations[op].memory
            best_gain = 0.0
            best_target: int | None = None
            for target, external in sorted(towards.items()):
                if target == home:
                    continue
                gain = external - internal
                if gain <= best_gain:
                    continue
                if not ceiling.fits(
                    partition.cluster_cycles(target) + op_cycles,
                    partition.cluster_memory(target) + op_memory,
                ):
                    continue
                best_gain = gain
                best_target = target
            if best_target is not None:
                partition.clusters[home].discard(op)
                partition.clusters[best_target].add(op)
                assignment[op] = best_target
                improved = True
        # drop emptied clusters (possible if a singleton guard raced a
        # previous move in the same sweep)
        partition.clusters = [c for c in partition.clusters if c]
        assignment = {}
        for index, cluster in enumerate(partition.clusters):
            for op in cluster:
                assignment[op] = index


def partition_to_application(
    partition: Partition,
    name: str | None = None,
    target_kind: ElementType = ElementType.DSP,
    execution_time_per_cycle: float = 0.02,
) -> Application:
    """Convert a partition into an annotated task graph.

    One task per cluster; its implementation requires the cluster's
    summed cycles/memory on ``target_kind`` and its execution time is
    proportional to the cluster's cycle count.  Inter-cluster edges
    aggregate into one channel per (source, target) cluster pair with
    the summed traffic as bandwidth.
    """
    graph = partition.graph
    app = Application(name or f"{graph.name}_tasks")
    cluster_names = [f"task{i}" for i in range(len(partition.clusters))]
    capacity = default_capacity(target_kind)

    for index, task_name in enumerate(cluster_names):
        cycles = partition.cluster_cycles(index)
        memory = partition.cluster_memory(index)
        requirement = {"cycles": cycles}
        if memory:
            requirement["memory"] = memory
        implementation = Implementation(
            name=f"{task_name}_impl",
            requirement=ResourceVector(requirement),
            execution_time=max(execution_time_per_cycle * cycles, 1e-6),
            cost=1.0,
            target_kind=target_kind,
        )
        if not implementation.requirement.fits_in(capacity):
            raise PartitionError(
                f"cluster {index} does not fit a {target_kind.value} tile; "
                "lower the ceiling"
            )
        app.add_task(Task(task_name, (implementation,)))

    assignment = {}
    for index, cluster in enumerate(partition.clusters):
        for op in cluster:
            assignment[op] = index
    aggregated: dict[tuple[int, int], float] = {}
    for edge in graph.edges:
        source = assignment[edge.source]
        target = assignment[edge.target]
        if source == target:
            continue
        key = (source, target)
        aggregated[key] = aggregated.get(key, 0.0) + edge.traffic

    # Clustering a DAG can create cluster-level cycles.  Order clusters
    # by the earliest topological position of their operations: in any
    # cluster cycle at least one channel then runs against the order,
    # and that feedback channel carries an initial token so the cycle
    # can start firing (without it the SDF model deadlocks).
    topological = _topological_index(graph)
    rank = {
        index: min(topological[op] for op in cluster)
        for index, cluster in enumerate(partition.clusters)
    }
    for (source, target), bandwidth in sorted(aggregated.items()):
        feedback = (rank[source], source) > (rank[target], target)
        app.add_channel(Channel(
            name=f"c{source}_{target}",
            source=cluster_names[source],
            target=cluster_names[target],
            bandwidth=bandwidth,
            initial_tokens=1 if feedback else 0,
        ))
    return app


def _topological_index(graph: OperationGraph) -> dict[str, int]:
    """Kahn topological positions of the (acyclic) operation graph."""
    in_degree = {name: 0 for name in graph.operations}
    for edge in graph.edges:
        in_degree[edge.target] += 1
    ready = sorted(name for name, degree in in_degree.items() if degree == 0)
    index: dict[str, int] = {}
    position = 0
    while ready:
        current = ready.pop(0)
        index[current] = position
        position += 1
        for edge in graph.edges:
            if edge.source == current:
                in_degree[edge.target] -= 1
                if in_degree[edge.target] == 0:
                    ready.append(edge.target)
        ready.sort()
    # cyclic operation graphs are rejected upstream, but stay safe:
    for name in graph.operations:
        index.setdefault(name, position)
    return index
