"""Operation graphs: the input of the design-time partitioning phase.

Fig. 1 of the paper starts with *partitioning*: "An application is
partitioned in multiple tasks [4], resulting in an application
specification, which contains an annotated task graph."  The input of
that step is a finer-grained description of the computation — here an
**operation graph**: small operations (filter taps, butterflies,
accumulations...) annotated with cycle and memory footprints, connected
by data edges annotated with the traffic they carry.

The partitioner (:mod:`repro.partition.cluster`) groups operations
into tasks subject to a per-task resource ceiling, minimising the
traffic that crosses task boundaries — cut traffic becomes NoC
channels at run time, so the design-time cut is exactly the run-time
communication demand.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


class OpGraphError(ValueError):
    """Raised for malformed operation graphs."""


@dataclass(frozen=True)
class Operation:
    """One fine-grained unit of computation."""

    name: str
    cycles: int
    memory: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise OpGraphError("operation needs a non-empty name")
        if self.cycles <= 0:
            raise OpGraphError(f"operation {self.name!r} needs positive cycles")
        if self.memory < 0:
            raise OpGraphError(f"operation {self.name!r} has negative memory")


@dataclass(frozen=True)
class DataEdge:
    """Directed data dependency with a traffic annotation."""

    source: str
    target: str
    traffic: float = 1.0

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise OpGraphError("self-dependencies are not allowed")
        if self.traffic <= 0:
            raise OpGraphError("traffic must be positive")


@dataclass
class OperationGraph:
    """A DAG of operations with traffic-weighted edges."""

    name: str
    operations: dict[str, Operation] = field(default_factory=dict)
    edges: list[DataEdge] = field(default_factory=list)

    def add_operation(self, operation: Operation) -> Operation:
        if operation.name in self.operations:
            raise OpGraphError(f"duplicate operation {operation.name!r}")
        self.operations[operation.name] = operation
        return operation

    def add_edge(self, source: str, target: str, traffic: float = 1.0) -> DataEdge:
        for endpoint in (source, target):
            if endpoint not in self.operations:
                raise OpGraphError(f"unknown operation {endpoint!r}")
        edge = DataEdge(source, target, traffic)
        self.edges.append(edge)
        return edge

    def __len__(self) -> int:
        return len(self.operations)

    def neighbors(self, operation: str) -> set[str]:
        found = set()
        for edge in self.edges:
            if edge.source == operation:
                found.add(edge.target)
            elif edge.target == operation:
                found.add(edge.source)
        return found

    def total_cycles(self) -> int:
        return sum(op.cycles for op in self.operations.values())

    def total_traffic(self) -> float:
        return sum(edge.traffic for edge in self.edges)

    def is_connected(self) -> bool:
        if not self.operations:
            return True
        start = next(iter(self.operations))
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for neighbor in self.neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return len(seen) == len(self.operations)

    def validate(self) -> None:
        if not self.operations:
            raise OpGraphError(f"operation graph {self.name!r} is empty")
        if not self.is_connected():
            raise OpGraphError(f"operation graph {self.name!r} is disconnected")


def random_operation_graph(
    operations: int,
    seed: int = 0,
    cycles_range: tuple[int, int] = (2, 20),
    memory_range: tuple[int, int] = (0, 8),
    traffic_range: tuple[float, float] = (1.0, 10.0),
    extra_edge_probability: float = 0.15,
    name: str | None = None,
) -> OperationGraph:
    """A random connected DAG of operations (deterministic per seed).

    Structure: a random spanning arborescence (every operation after
    the first receives an edge from a random earlier one) plus optional
    density edges, which is the same recipe the task-graph generator
    uses one level up.
    """
    if operations < 1:
        raise OpGraphError("need at least one operation")
    rng = random.Random(seed)
    graph = OperationGraph(name or f"ops_{operations}_s{seed}")
    names = [f"op{i}" for i in range(operations)]
    for op_name in names:
        graph.add_operation(Operation(
            op_name,
            cycles=rng.randint(*cycles_range),
            memory=rng.randint(*memory_range),
        ))
    for position in range(1, operations):
        source = names[rng.randrange(position)]
        graph.add_edge(source, names[position],
                       traffic=rng.uniform(*traffic_range))
    for i in range(operations):
        for j in range(i + 1, operations):
            if rng.random() < extra_edge_probability:
                existing = any(
                    e.source == names[i] and e.target == names[j]
                    for e in graph.edges
                )
                if not existing:
                    graph.add_edge(names[i], names[j],
                                   traffic=rng.uniform(*traffic_range))
    return graph
