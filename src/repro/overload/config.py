"""Overload-control policies and the JSON-able `OverloadConfig` bundle.

Every sub-policy is a frozen dataclass with ``describe()`` /
``from_params()`` so the bundle round-trips through recipe headers
exactly like :class:`~repro.resilience.ResilienceConfig`.  Each field
of :class:`OverloadConfig` is optional — ``None`` disables that
component entirely, and a fully-``None`` config is behaviourally
identical to no config at all.  The recipe key is emitted only when a
config is present, so pre-overload recipes (and the traces recorded
from them) stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "BreakerPolicy",
    "BrownoutPolicy",
    "DeadlinePolicy",
    "OverloadConfig",
    "RetryBudgetPolicy",
    "WatermarkPolicy",
]


@dataclass(frozen=True)
class DeadlinePolicy:
    """Absolute sim-time admission deadlines.

    Every arrival is stamped with ``arrival + budget`` (per-class
    overrides win); a queued request whose deadline passes is dropped
    with :data:`~repro.reasons.ReasonCode.DEADLINE_EXPIRED` — a
    distinct traced outcome, not a generic timeout — and the retry
    policy refuses to schedule a retry that could only land past the
    deadline, skipping the doomed probe entirely.
    """

    budget: float = 25.0
    #: class name -> budget override (e.g. tighter interactive SLOs)
    class_budgets: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ValueError("deadline budget must be positive")
        for name, budget in self.class_budgets.items():
            if budget <= 0:
                raise ValueError(
                    f"deadline budget for class {name!r} must be positive"
                )

    def budget_for(self, class_name: str) -> float:
        return self.class_budgets.get(class_name, self.budget)

    def describe(self) -> dict:
        return {
            "budget": self.budget,
            "class_budgets": dict(sorted(self.class_budgets.items())),
        }

    @classmethod
    def from_params(cls, params: "dict | DeadlinePolicy | None"):
        if params is None or isinstance(params, cls):
            return params
        return cls(
            budget=float(params.get("budget", 25.0)),
            class_budgets={
                str(name): float(budget)
                for name, budget in (
                    params.get("class_budgets") or {}
                ).items()
            },
        )


@dataclass(frozen=True)
class WatermarkPolicy:
    """High/low queue-occupancy watermarks with hysteresis shedding.

    When queue occupancy (depth / capacity) reaches ``high`` the
    policy enters *shedding* mode; it exits once occupancy falls back
    to ``low``.  While shedding, arrivals with ``priority <
    protect_priority`` are dropped at admission time with
    :data:`~repro.reasons.ReasonCode.SHED_WATERMARK` instead of aging
    out in the queue.  With the default traffic classes
    (interactive=2, bursty=1, batch=0) the default protects
    interactive traffic and sheds the rest.
    """

    high: float = 0.75
    low: float = 0.375
    protect_priority: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.high <= 1.0:
            raise ValueError("watermark high must lie in (0, 1]")
        if not 0.0 <= self.low < self.high:
            raise ValueError("watermark low must lie in [0, high)")

    def describe(self) -> dict:
        return {
            "high": self.high,
            "low": self.low,
            "protect_priority": self.protect_priority,
        }

    @classmethod
    def from_params(cls, params: "dict | WatermarkPolicy | None"):
        if params is None or isinstance(params, cls):
            return params
        return cls(
            high=float(params.get("high", 0.75)),
            low=float(params.get("low", 0.375)),
            protect_priority=int(params.get("protect_priority", 2)),
        )


@dataclass(frozen=True)
class RetryBudgetPolicy:
    """A token bucket throttling the retry policy's re-arrivals.

    Each scheduled retry costs one token; tokens refill at
    ``refill_rate`` per unit sim-time up to ``capacity``.  A retry
    denied for lack of tokens drops the request with
    :data:`~repro.reasons.ReasonCode.RETRY_BUDGET_EXHAUSTED` — the
    brake that stops a saturated mesh amplifying its own load.
    """

    capacity: float = 16.0
    refill_rate: float = 0.5

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("retry budget capacity must be at least 1")
        if self.refill_rate <= 0:
            raise ValueError("retry budget refill_rate must be positive")

    def describe(self) -> dict:
        return {"capacity": self.capacity, "refill_rate": self.refill_rate}

    @classmethod
    def from_params(cls, params: "dict | RetryBudgetPolicy | None"):
        if params is None or isinstance(params, cls):
            return params
        return cls(
            capacity=float(params.get("capacity", 16.0)),
            refill_rate=float(params.get("refill_rate", 0.5)),
        )


@dataclass(frozen=True)
class BreakerPolicy:
    """Per-shard circuit breaker: closed → open → half-open.

    A closed breaker trips when at least ``min_samples`` of the last
    ``window`` probe outcomes are recorded and the failure fraction
    reaches ``failure_threshold``.  An open breaker refuses probes for
    ``cooldown`` sim-time, then admits up to ``half_open_probes``
    trial probes: one success closes it, one failure re-opens it.
    """

    window: int = 8
    failure_threshold: float = 0.5
    min_samples: int = 4
    cooldown: float = 10.0
    half_open_probes: int = 2

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("breaker window must be at least 1")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError("breaker failure_threshold must lie in (0, 1]")
        if not 1 <= self.min_samples <= self.window:
            raise ValueError("breaker min_samples must lie in [1, window]")
        if self.cooldown <= 0:
            raise ValueError("breaker cooldown must be positive")
        if self.half_open_probes < 1:
            raise ValueError("breaker half_open_probes must be at least 1")

    def describe(self) -> dict:
        return {
            "window": self.window,
            "failure_threshold": self.failure_threshold,
            "min_samples": self.min_samples,
            "cooldown": self.cooldown,
            "half_open_probes": self.half_open_probes,
        }

    @classmethod
    def from_params(cls, params: "dict | BreakerPolicy | None"):
        if params is None or isinstance(params, cls):
            return params
        return cls(
            window=int(params.get("window", 8)),
            failure_threshold=float(params.get("failure_threshold", 0.5)),
            min_samples=int(params.get("min_samples", 4)),
            cooldown=float(params.get("cooldown", 10.0)),
            half_open_probes=int(params.get("half_open_probes", 2)),
        )


@dataclass(frozen=True)
class BrownoutPolicy:
    """Sustained-pressure hysteresis driving the degradation ladder.

    Modeled on the distance-field engine's dormancy controller: each
    queue-occupancy observation at or above ``high`` raises pressure,
    each at or below ``low`` raises relief, anything in the hysteresis
    band resets both.  ``step_up`` consecutive high observations
    escalate one ladder level (to at most ``max_level``); ``step_down``
    consecutive low ones restore a level.  The ladder (see
    :class:`~repro.overload.brownout.BrownoutController`): 1 — swap
    the mapper to ``first_fit``; 2 — cap the ring-search depth at
    ``ring_cap``; 3 — force the distance-field engine dormant.
    """

    high: float = 0.75
    low: float = 0.25
    step_up: int = 2
    step_down: int = 3
    max_level: int = 3
    ring_cap: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.high <= 1.0:
            raise ValueError("brownout high must lie in (0, 1]")
        if not 0.0 <= self.low < self.high:
            raise ValueError("brownout low must lie in [0, high)")
        if self.step_up < 1 or self.step_down < 1:
            raise ValueError("brownout steps must be at least 1")
        if not 1 <= self.max_level <= 3:
            raise ValueError("brownout max_level must lie in [1, 3]")
        if self.ring_cap < 1:
            raise ValueError("brownout ring_cap must be at least 1")

    def describe(self) -> dict:
        return {
            "high": self.high,
            "low": self.low,
            "step_up": self.step_up,
            "step_down": self.step_down,
            "max_level": self.max_level,
            "ring_cap": self.ring_cap,
        }

    @classmethod
    def from_params(cls, params: "dict | BrownoutPolicy | None"):
        if params is None or isinstance(params, cls):
            return params
        return cls(
            high=float(params.get("high", 0.75)),
            low=float(params.get("low", 0.25)),
            step_up=int(params.get("step_up", 2)),
            step_down=int(params.get("step_down", 3)),
            max_level=int(params.get("max_level", 3)),
            ring_cap=int(params.get("ring_cap", 2)),
        )


@dataclass(frozen=True)
class OverloadConfig:
    """The sim-facing overload bundle; every component optional.

    Present in a recipe under the ``"overload"`` key; absent means no
    overload control at all — recipes and traces recorded before this
    subsystem replay byte-identically.  ``describe()`` emits only the
    enabled components, so a config survives a recipe round trip
    byte-for-byte.
    """

    deadline: DeadlinePolicy | None = None
    watermark: WatermarkPolicy | None = None
    retry_budget: RetryBudgetPolicy | None = None
    breaker: BreakerPolicy | None = None
    brownout: BrownoutPolicy | None = None

    @classmethod
    def defaults(cls) -> "OverloadConfig":
        """Every component enabled with its default policy."""
        return cls(
            deadline=DeadlinePolicy(),
            watermark=WatermarkPolicy(),
            retry_budget=RetryBudgetPolicy(),
            breaker=BreakerPolicy(),
            brownout=BrownoutPolicy(),
        )

    def describe(self) -> dict:
        """JSON-able form for recipe headers (see :func:`from_spec`)."""
        spec: dict = {}
        if self.deadline is not None:
            spec["deadline"] = self.deadline.describe()
        if self.watermark is not None:
            spec["watermark"] = self.watermark.describe()
        if self.retry_budget is not None:
            spec["retry_budget"] = self.retry_budget.describe()
        if self.breaker is not None:
            spec["breaker"] = self.breaker.describe()
        if self.brownout is not None:
            spec["brownout"] = self.brownout.describe()
        return spec

    @classmethod
    def from_spec(cls, spec: "dict | OverloadConfig | None"):
        """Coerce a recipe value into a config (None stays None)."""
        if spec is None or isinstance(spec, cls):
            return spec
        return cls(
            deadline=DeadlinePolicy.from_params(spec.get("deadline")),
            watermark=WatermarkPolicy.from_params(spec.get("watermark")),
            retry_budget=RetryBudgetPolicy.from_params(
                spec.get("retry_budget")
            ),
            breaker=BreakerPolicy.from_params(spec.get("breaker")),
            brownout=BrownoutPolicy.from_params(spec.get("brownout")),
        )
