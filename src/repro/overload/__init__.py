"""repro.overload — deadline budgets, shedding, breakers, brownout.

The stack's defense against *overload* (as opposed to *faults*, which
:mod:`repro.resilience` and :mod:`repro.cluster` own): classic
admission-control mechanisms layered between the sim service and the
cluster router, all opt-in via :class:`OverloadConfig` and all pure
functions of the sim clock and event stream, so ``--record/--replay``
bit-identity holds and legacy traces stay digest-identical when the
config is absent.

Four components, composable independently:

* **deadline budgets** (:class:`DeadlinePolicy`) — every arrival
  carries an absolute sim-time deadline; queued requests expire at it
  (a distinct ``deadline_expired`` traced outcome, not a generic
  timeout) and doomed retries are skipped outright.
* **watermark backpressure** (:class:`WatermarkPolicy`,
  :class:`~repro.overload.shedding.WatermarkController`) — high/low
  occupancy hysteresis shedding low-priority arrivals at admission
  time, plus a token :class:`RetryBudgetPolicy` so the retry policy
  cannot storm a saturated mesh.
* **per-shard circuit breakers** (:class:`BreakerPolicy`,
  :class:`~repro.overload.breaker.BreakerBoard`) — a closed → open →
  half-open automaton around the shard router's candidates, shielding
  a sick-but-not-yet-dead shard during the liveness detection window.
* **brownout** (:class:`BrownoutPolicy`,
  :class:`~repro.overload.brownout.BrownoutController`) — sustained
  pressure degrades placement quality in announced, reversible steps.

See ``docs/overload.md`` for semantics, trace schema and the replay
contract.
"""

from __future__ import annotations

from repro.overload.breaker import (
    BreakerBoard,
    BreakerState,
    BreakerTransition,
    CircuitBreaker,
)
from repro.overload.brownout import (
    LEVEL_ACTIONS,
    BrownoutController,
    BrownoutLevers,
)
from repro.overload.config import (
    BreakerPolicy,
    BrownoutPolicy,
    DeadlinePolicy,
    OverloadConfig,
    RetryBudgetPolicy,
    WatermarkPolicy,
)
from repro.overload.shedding import RetryBudget, WatermarkController

__all__ = [
    "BreakerBoard",
    "BreakerPolicy",
    "BreakerState",
    "BreakerTransition",
    "BrownoutController",
    "BrownoutLevers",
    "BrownoutPolicy",
    "CircuitBreaker",
    "DeadlinePolicy",
    "LEVEL_ACTIONS",
    "OverloadConfig",
    "RetryBudget",
    "RetryBudgetPolicy",
    "WatermarkController",
    "WatermarkPolicy",
]
