"""Arrival-time shedding: watermark hysteresis and the retry budget.

Both controllers are deterministic functions of the event stream —
no randomness, no wall clock — so a recorded trace replays them
bit-identically.
"""

from __future__ import annotations

from repro.overload.config import RetryBudgetPolicy, WatermarkPolicy

__all__ = ["RetryBudget", "WatermarkController"]


class WatermarkController:
    """High/low occupancy hysteresis deciding arrival-time sheds.

    The mode only matters (and is only observed) when the service is
    about to queue an arrival, so :meth:`observe` is called exactly
    there: at each queue-admission attempt, with the pre-admission
    depth.  Entering at ``occupancy >= high`` and exiting at
    ``occupancy <= low`` gives the controller a band in which it
    keeps its previous answer — the hysteresis that stops a queue
    hovering at one threshold from flapping the mode every event.
    """

    def __init__(self, policy: WatermarkPolicy) -> None:
        self.policy = policy
        self.shedding = False
        self.transitions = 0

    def observe(self, depth: int, capacity: int) -> bool | None:
        """Update the mode; returns the new mode on a transition."""
        occupancy = depth / capacity if capacity else 0.0
        if not self.shedding and occupancy >= self.policy.high:
            self.shedding = True
            self.transitions += 1
            return True
        if self.shedding and occupancy <= self.policy.low:
            self.shedding = False
            self.transitions += 1
            return False
        return None

    def should_shed(self, priority: int) -> bool:
        return self.shedding and priority < self.policy.protect_priority

    def describe_state(self) -> dict:
        return {"shedding": self.shedding, "transitions": self.transitions}


class RetryBudget:
    """Token bucket with lazy sim-time refill.

    ``grant(now)`` refills ``(now - last) * refill_rate`` tokens
    (capped at capacity), then spends one if at least one whole token
    is available.  Lazy refill keeps the bucket O(1) per decision and
    — because ``now`` comes from the event kernel — fully
    deterministic.
    """

    def __init__(self, policy: RetryBudgetPolicy) -> None:
        self.policy = policy
        self.tokens = policy.capacity
        self._last = 0.0
        self.granted = 0
        self.denied = 0

    def grant(self, now: float) -> bool:
        if now > self._last:
            self.tokens = min(
                self.policy.capacity,
                self.tokens + (now - self._last) * self.policy.refill_rate,
            )
            self._last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.granted += 1
            return True
        self.denied += 1
        return False

    def describe_state(self) -> dict:
        return {
            "tokens": self.tokens,
            "granted": self.granted,
            "denied": self.denied,
        }
