"""The brownout controller: announced quality degradation under pressure.

Under sustained queue pressure the service trades placement *quality*
for decision *throughput* in announced, reversible steps — the
brownout pattern.  The controller is modeled on the distance-field
engine's dormancy hysteresis: consecutive high-occupancy observations
raise pressure, consecutive low ones raise relief, and crossing the
configured step counts moves one level up or down the ladder:

====== =================== ===========================================
level  action              effect
====== =================== ===========================================
1      ``mapper_first_fit``  swap the annealing/kairos mapper for the
                             cheap first-fit baseline
2      ``depth_capped``      cap the per-layer ring-search radius at
                             ``ring_cap``
3      ``repair_disabled``   force the distance-field engine dormant
                             (decision-neutral: it only serves caches)
====== =================== ===========================================

Levels are cumulative (level 2 includes level 1) and fully unwound on
recovery: level 0 restores the manager's original pipeline, mapping
options and engine mode *objects*, so a run that browned out and
recovered ends configured exactly as it started.

Every transition is traced and — because levels change the decision
function — bumps the manager's capacity epoch via ``state.touch()``,
keeping the gate memo and the failed-probe short-circuit sound.
Observations happen at the kernel's TICK events with queue occupancy
as the pressure signal, so the whole controller is a deterministic
function of the event stream and replays bit-identically.
"""

from __future__ import annotations

from dataclasses import replace

from repro.overload.config import BrownoutPolicy

__all__ = ["BrownoutController", "BrownoutLevers", "LEVEL_ACTIONS"]

#: level -> the announced action entering it ("normal" is level 0)
LEVEL_ACTIONS = {
    0: "normal",
    1: "mapper_first_fit",
    2: "depth_capped",
    3: "repair_disabled",
}


class BrownoutLevers:
    """Apply / unwind the degradation ladder on one Kairos manager."""

    def __init__(self, manager) -> None:
        self.manager = manager
        self._original_pipeline = manager.pipeline
        self._original_options = manager.mapping_options
        self._degraded_pipeline = None
        self._capped_options = None

    def _build_degraded_pipeline(self):
        from repro.api.pipeline import PhasePipeline

        original = self._original_pipeline
        return PhasePipeline(
            binder=original.binder,
            mapper="first_fit",
            router=(
                original.router_instance
                if original.router_instance is not None
                else original.router
            ),
            validator=original.validator,
            binder_params=original.binder_params,
            router_params=original.router_params,
            validator_params=original.validator_params,
        )

    def apply(self, level: int, ring_cap: int) -> None:
        manager = self.manager
        if level >= 1:
            if self._degraded_pipeline is None:
                self._degraded_pipeline = self._build_degraded_pipeline()
            manager.pipeline = self._degraded_pipeline
        else:
            manager.pipeline = self._original_pipeline
        if level >= 2:
            if self._capped_options is None:
                original = self._original_options
                cap = (
                    ring_cap if original.max_rings is None
                    else min(ring_cap, original.max_rings)
                )
                self._capped_options = replace(original, max_rings=cap)
            manager.mapping_options = self._capped_options
        else:
            manager.mapping_options = self._original_options
        engine = getattr(manager, "_distfield", None)
        if engine is not None:
            engine.forced_dormant = level >= 3


class BrownoutController:
    """Pressure hysteresis over one or more managers' levers.

    ``targets`` are Kairos managers (for a cluster: every shard's
    manager — a cluster-wide pressure signal degrades all shards in
    lockstep, which keeps the trace schema shard-free).
    """

    def __init__(self, policy: BrownoutPolicy, targets) -> None:
        self.policy = policy
        self.levers = [BrownoutLevers(target) for target in targets]
        self.level = 0
        self.max_level_seen = 0
        self._pressure = 0
        self._relief = 0

    def observe(self, occupancy: float) -> list[tuple[int, int, str]]:
        """One occupancy observation; returns ``(was, level, action)``
        transitions (at most one per observation)."""
        policy = self.policy
        if occupancy >= policy.high:
            self._relief = 0
            self._pressure += 1
            if self._pressure >= policy.step_up and (
                self.level < policy.max_level
            ):
                self._pressure = 0
                return [self._move(self.level + 1)]
        elif occupancy <= policy.low:
            self._pressure = 0
            self._relief += 1
            if self._relief >= policy.step_down and self.level > 0:
                self._relief = 0
                return [self._move(self.level - 1)]
        else:
            self._pressure = 0
            self._relief = 0
        return []

    def _move(self, level: int) -> tuple[int, int, str]:
        was = self.level
        self.level = level
        self.max_level_seen = max(self.max_level_seen, level)
        for lever in self.levers:
            lever.apply(level, self.policy.ring_cap)
        action = LEVEL_ACTIONS[level] if level > was else "restored"
        return (was, level, action)

    def describe_state(self) -> dict:
        return {
            "level": self.level,
            "max_level_seen": self.max_level_seen,
            "action": LEVEL_ACTIONS[self.level],
        }
