"""Per-shard circuit breakers: the closed → open → half-open automaton.

A breaker wraps one shard's probe stream.  Closed, it watches a
sliding window of outcomes and trips when failures dominate; open, it
refuses probes until a sim-clock cooldown elapses; half-open, it
admits a bounded number of trial probes — one success closes it, one
failure re-opens it.  All state is a deterministic function of the
(probe outcome, sim-time) stream, so recorded traces replay breakers
bit-identically.

The breaker complements — not replaces — the heartbeat liveness
registry: liveness needs missed deadlines to demote a shard, while a
breaker reacts to the very first failed probes, shielding a
sick-but-not-yet-dead shard during the detection window.  Breaker
failures also feed :meth:`LivenessRegistry.note_fault`, so a genuinely
dying shard still reaches the storm-demotion path.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass

from repro.overload.config import BreakerPolicy

__all__ = ["BreakerBoard", "BreakerState", "BreakerTransition", "CircuitBreaker"]


class BreakerState(enum.StrEnum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerTransition:
    """One automaton edge, for tracing and metrics."""

    shard_id: str
    previous: BreakerState
    state: BreakerState
    reason: str


class CircuitBreaker:
    """One shard's breaker; see the module docstring for the automaton."""

    def __init__(self, policy: BreakerPolicy) -> None:
        self.policy = policy
        self.state = BreakerState.CLOSED
        self._outcomes: deque[bool] = deque(maxlen=policy.window)
        self._opened_at = 0.0
        self._probes_left = 0
        self.opens = 0

    def allow(self, now: float) -> tuple[bool, str | None]:
        """May this shard be probed right now?

        Returns ``(allowed, edge)`` where ``edge`` is non-None when
        the call itself moved the automaton (open → half-open after
        the cooldown).  A half-open allowance consumes one of the
        bounded trial-probe slots.
        """
        if self.state is BreakerState.CLOSED:
            return True, None
        if self.state is BreakerState.OPEN:
            if now - self._opened_at >= self.policy.cooldown:
                self.state = BreakerState.HALF_OPEN
                self._probes_left = self.policy.half_open_probes - 1
                return True, "cooldown_elapsed"
            return False, None
        # half-open: bounded trial probes
        if self._probes_left > 0:
            self._probes_left -= 1
            return True, None
        return False, None

    def record_success(self, now: float) -> str | None:
        """A probe on this shard produced a non-breaker-failure outcome."""
        if self.state is BreakerState.HALF_OPEN:
            self.state = BreakerState.CLOSED
            self._outcomes.clear()
            return "probe_succeeded"
        if self.state is BreakerState.CLOSED:
            self._outcomes.append(False)
        return None

    def record_failure(self, now: float) -> str | None:
        """A probe failed in a way that indicts the shard (SHARD_DOWN)."""
        if self.state is BreakerState.HALF_OPEN:
            self.state = BreakerState.OPEN
            self._opened_at = now
            self.opens += 1
            return "probe_failed"
        if self.state is BreakerState.CLOSED:
            self._outcomes.append(True)
            window = self._outcomes
            if (
                len(window) >= self.policy.min_samples
                and sum(window) / len(window) >= self.policy.failure_threshold
            ):
                self.state = BreakerState.OPEN
                self._opened_at = now
                self._outcomes.clear()
                self.opens += 1
                return "failure_rate"
        return None


class BreakerBoard:
    """The cluster's breakers, one per shard, keyed by shard id."""

    def __init__(self, policy: BreakerPolicy, shard_ids) -> None:
        self.policy = policy
        self.breakers = {
            shard_id: CircuitBreaker(policy)
            for shard_id in sorted(shard_ids)
        }

    def allow(
        self, shard_id: str, now: float
    ) -> tuple[bool, BreakerTransition | None]:
        breaker = self.breakers[shard_id]
        previous = breaker.state
        allowed, edge = breaker.allow(now)
        if edge is None:
            return allowed, None
        return allowed, BreakerTransition(
            shard_id, previous, breaker.state, edge
        )

    def record(
        self, shard_id: str, success: bool, now: float
    ) -> BreakerTransition | None:
        breaker = self.breakers[shard_id]
        previous = breaker.state
        edge = (
            breaker.record_success(now) if success
            else breaker.record_failure(now)
        )
        if edge is None:
            return None
        return BreakerTransition(shard_id, previous, breaker.state, edge)

    def state(self, shard_id: str) -> BreakerState:
        return self.breakers[shard_id].state

    def summary(self) -> dict:
        return {
            shard_id: {
                "state": breaker.state.value,
                "opens": breaker.opens,
            }
            for shard_id, breaker in self.breakers.items()
        }
