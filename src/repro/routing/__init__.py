"""Routing phase: BFS (default) and Dijkstra (comparator) routers."""

from repro.routing.router import (
    BaseRouter,
    BfsRouter,
    DijkstraRouter,
    RoutingError,
    RoutingResult,
    release_routes,
)

__all__ = [
    "BaseRouter",
    "BfsRouter",
    "DijkstraRouter",
    "RoutingError",
    "RoutingResult",
    "release_routes",
]
