"""Routing phase: per-channel path search with virtual-channel reservation.

"We use virtual channels to time-share communication resources in the
platform [11].  The less complex breadth-first search is used for
routing, because it has no noticeable performance differences in terms
of successful routes and energy consumption, compared to Dijkstra's
algorithm [11]."  (Paper Section II.)

Both routers are provided: :class:`BfsRouter` (the paper's default)
and :class:`DijkstraRouter` (the comparator, with a congestion-aware
edge cost) — ablation A1 benchmarks them against each other.  A route
claims one virtual channel plus the channel's bandwidth on every
directed link it crosses; channels whose endpoints share an element
need no network resources at all.

Internally both routers search over the platform's interned node ids
and directed link slots — the per-hop capacity check is three array
reads instead of string hashing — and translate back to names only in
the public ``find_path`` wrapper and the reservations they return.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.apps.taskgraph import Application, Channel
from repro.arch.state import AllocationError, AllocationState, ChannelReservation
from repro.reasons import ReasonCode


class RoutingError(RuntimeError):
    """The routing phase could not establish every channel.

    ``code`` classifies the failure machine-readably (see
    :class:`~repro.reasons.ReasonCode`); the manager copies it onto
    the failure object / decision it produces.
    """

    def __init__(
        self, message: str, code: ReasonCode = ReasonCode.ROUTING_INFEASIBLE
    ):
        super().__init__(message)
        self.code = code


@dataclass
class RoutingResult:
    """Reservations made for one application's channels."""

    routes: dict[str, ChannelReservation] = field(default_factory=dict)
    #: channels whose tasks share an element (no network route needed)
    local_channels: tuple[str, ...] = ()

    @property
    def total_hops(self) -> int:
        return sum(r.hops for r in self.routes.values())

    def hops_per_channel(self) -> float:
        """Average allocated links per channel (the Fig. 8 metric).

        Local channels count as zero-hop allocations.
        """
        count = len(self.routes) + len(self.local_channels)
        if count == 0:
            return 0.0
        return self.total_hops / count


class BaseRouter:
    """Shared channel-iteration and reservation logic."""

    def route_application(
        self,
        app: Application,
        placement: dict[str, str],
        state: AllocationState,
        app_id: str | None = None,
        engine=None,
    ) -> RoutingResult:
        """Route every channel of ``app``; raises :class:`RoutingError`.

        Channels are processed by descending bandwidth (fattest first:
        they have the fewest path options), ties broken by name for
        determinism.  Reservations mutate ``state``; the caller is
        responsible for transaction/rollback on failure.

        ``engine`` optionally supplies the manager's
        :class:`~repro.core.distfield.DistanceFieldEngine`: its cached
        congestion fields are admissible route-length lower bounds
        (every route hop needs a free virtual channel, so a route path
        is always field-traversable), which lets a channel whose
        endpoints a clean field proves disconnected fail fast — same
        exception, same message, no path search.  The probe never
        computes or repairs a field, so it is free when the cache is
        cold or stale.
        """
        app_id = app_id or app.name
        platform = state.platform
        node_ids = platform._node_ids
        result = RoutingResult()
        local: list[str] = []
        ordered = app.channels_by_bandwidth()
        # Saturation fast-fail: a channel whose mapped source element
        # cannot emit one more virtual channel (or whose target cannot
        # absorb one) is unroutable whatever the path search does, so
        # the attempt is rejected before any BFS runs or reservations
        # are made.  Purely a necessary condition — surviving channels
        # still go through the full search below.  Note the failure
        # *reason* may name a different channel than the sequential
        # search would (a later locally-saturated channel is detected
        # before an earlier mid-mesh dead end); the decision and its
        # phase are identical either way.
        neighbor_slots = platform._neighbor_slots
        slot_bw = platform._slot_bw
        bw_used = state._bw_used
        saturated = state._slot_saturated
        failed_links = state._failed_links
        for channel in ordered:
            source = placement.get(channel.source)
            target = placement.get(channel.target)
            if source is None or target is None:
                break  # the main loop raises the unmapped-endpoint error
            if source == target:
                continue
            bandwidth = channel.bandwidth
            for endpoint, reverse in (
                (node_ids[source], 0), (node_ids[target], 1)
            ):
                for slot in neighbor_slots[endpoint]:
                    if reverse:
                        slot ^= 1
                    if (
                        not saturated[slot]
                        and slot_bw[slot] - bw_used[slot] >= bandwidth
                        and not (
                            failed_links and (slot >> 1) in failed_links
                        )
                    ):
                        break
                else:
                    raise RoutingError(
                        f"no route for channel {channel.name!r} "
                        f"({source} -> {target}, bw {bandwidth:g})",
                        code=ReasonCode.ROUTING_SATURATED,
                    )
        for channel in ordered:
            source = placement.get(channel.source)
            target = placement.get(channel.target)
            if source is None or target is None:
                raise RoutingError(
                    f"channel {channel.name!r} has unmapped endpoints",
                    code=ReasonCode.ROUTING_UNMAPPED_ENDPOINT,
                )
            if source == target:
                local.append(channel.name)
                continue
            source_id, target_id = node_ids[source], node_ids[target]
            if engine is not None and engine.unreachable(source_id, target_id):
                # provably partitioned by congestion/faults: the path
                # search below would return None — identical failure,
                # none of the BFS
                id_path = None
            else:
                id_path = self.find_path_ids(
                    state, source_id, target_id, channel.bandwidth
                )
            if id_path is None:
                raise RoutingError(
                    f"no route for channel {channel.name!r} "
                    f"({source} -> {target}, bw {channel.bandwidth:g})",
                    code=ReasonCode.ROUTING_NO_PATH,
                )
            try:
                reservation = state.reserve_route_ids(
                    app_id, channel.name, id_path, channel.bandwidth
                )
            except AllocationError as exc:  # pragma: no cover - find_path
                raise RoutingError(str(exc)) from exc   # guarantees capacity
            result.routes[channel.name] = reservation
        result.local_channels = tuple(local)
        return result

    def find_path(
        self,
        state: AllocationState,
        source: str,
        target: str,
        bandwidth: float,
    ) -> list[str] | None:
        """Name-based wrapper over :meth:`find_path_ids`."""
        platform = state.platform
        id_path = self.find_path_ids(
            state,
            platform.node_id(source),
            platform.node_id(target),
            bandwidth,
        )
        if id_path is None:
            return None
        nodes = platform.nodes
        return [nodes[node_id].name for node_id in id_path]

    def find_path_ids(
        self,
        state: AllocationState,
        source_id: int,
        target_id: int,
        bandwidth: float,
    ) -> list[int] | None:
        raise NotImplementedError


class BfsRouter(BaseRouter):
    """Breadth-first (minimum-hop) routing — the paper's default."""

    def find_path_ids(
        self,
        state: AllocationState,
        source_id: int,
        target_id: int,
        bandwidth: float,
    ) -> list[int] | None:
        platform = state.platform
        neighbor_ids = platform._neighbor_ids
        neighbor_slots = platform._neighbor_slots
        slot_bw = platform.slot_bw
        bw_used = state._bw_used
        saturated = state._slot_saturated
        failed_links = state._failed_links
        # parent ids with generation-stamped lazy clearing: a cell is
        # visited iff its stamp equals this call's generation, so the
        # per-call O(nodes) rebuild is one counter bump instead
        scratch = state.scratch
        parents, stamp, generation = scratch.stamped(
            "router.bfs", platform.node_count
        )
        parents[source_id] = -1  # -1 marks the root
        stamp[source_id] = generation
        if source_id == target_id:
            return _unwind(parents, target_id)
        queue = scratch.deque("router.bfs.queue")
        queue.append(source_id)
        while queue:
            current = queue.popleft()
            ids = neighbor_ids[current]
            slots = neighbor_slots[current]
            for neighbor, slot in zip(ids, slots):
                if stamp[neighbor] == generation:
                    continue
                if saturated[slot]:
                    continue
                if slot_bw[slot] - bw_used[slot] < bandwidth:
                    continue
                if failed_links and (slot >> 1) in failed_links:
                    continue
                stamp[neighbor] = generation
                parents[neighbor] = current
                if neighbor == target_id:
                    # the BFS parent of a node is fixed at discovery,
                    # so returning here yields the exact path the
                    # dequeue-time check would — minus expanding the
                    # rest of the frontier
                    return _unwind(parents, target_id)
                queue.append(neighbor)
        return None


class DijkstraRouter(BaseRouter):
    """Congestion-aware shortest-path routing (the [11] comparator).

    Edge cost is ``1 + congestion_weight * utilization`` of the
    directed link, so lightly loaded detours are preferred over
    saturated shortcuts.  With ``congestion_weight = 0`` this reduces
    to BFS up to tie-breaking.
    """

    def __init__(self, congestion_weight: float = 1.0):
        if congestion_weight < 0:
            raise ValueError("congestion_weight must be non-negative")
        self.congestion_weight = congestion_weight

    def find_path_ids(
        self,
        state: AllocationState,
        source_id: int,
        target_id: int,
        bandwidth: float,
    ) -> list[int] | None:
        platform = state.platform
        neighbor_ids = platform._neighbor_ids
        neighbor_slots = platform._neighbor_slots
        slot_bw = platform.slot_bw
        bw_used = state._bw_used
        saturated = state._slot_saturated
        failed_links = state._failed_links
        nodes = platform.nodes
        congestion_weight = self.congestion_weight
        infinity = float("inf")
        # dist/parent/done arrays with generation-stamped lazy clearing
        scratch = state.scratch
        node_count = platform.node_count
        # parents needs no stamp: cells are written on discovery and
        # read only along the found path, every node of which was
        # discovered this call
        parents = scratch.plain("router.dijkstra.parents", node_count)
        best, best_stamp, best_generation = scratch.stamped(
            "router.dijkstra.best", node_count
        )
        _done, done_stamp, done_generation = scratch.stamped(
            "router.dijkstra.done", node_count
        )
        parents[source_id] = -1
        best[source_id] = 0.0
        best_stamp[source_id] = best_generation
        # ties broken by node *name* to keep historical determinism
        heap = scratch.list("router.dijkstra.heap")
        heap.append((0.0, nodes[source_id].name, source_id))
        while heap:
            cost, _name, current = heapq.heappop(heap)
            if done_stamp[current] == done_generation:
                continue
            done_stamp[current] = done_generation
            if current == target_id:
                return _unwind(parents, target_id)
            ids = neighbor_ids[current]
            slots = neighbor_slots[current]
            for neighbor, slot in zip(ids, slots):
                if done_stamp[neighbor] == done_generation:
                    continue
                if saturated[slot]:
                    continue
                capacity = slot_bw[slot]
                if capacity - bw_used[slot] < bandwidth:
                    continue
                if failed_links and (slot >> 1) in failed_links:
                    continue
                edge = 1.0 + congestion_weight * (bw_used[slot] / capacity)
                candidate = cost + edge
                known = (
                    best[neighbor]
                    if best_stamp[neighbor] == best_generation else infinity
                )
                if candidate < known:
                    best[neighbor] = candidate
                    best_stamp[neighbor] = best_generation
                    parents[neighbor] = current
                    heapq.heappush(
                        heap, (candidate, nodes[neighbor].name, neighbor)
                    )
        return None


def _unwind(parents: list[int], target_id: int) -> list[int]:
    path = [target_id]
    while parents[path[-1]] != -1:
        path.append(parents[path[-1]])
    path.reverse()
    return path


def release_routes(
    state: AllocationState, app_id: str, result: RoutingResult
) -> None:
    """Release every reservation in ``result`` (failure cleanup)."""
    for channel_name in list(result.routes):
        state.release_route(app_id, channel_name)
        del result.routes[channel_name]
