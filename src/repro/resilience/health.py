"""Element and link health: the registry behind graceful degradation.

The paper motivates run-time management with fault tolerance — "to
circumvent hardware faults" from imperfect production and wear — and
a binary alive/dead model undersells that story: real hardware
*flaps* (a thermal throttle clears, a marginal via re-anneals), and a
tile that has failed three times this hour is a worse bet than one
that never has, even while both are nominally up.

:class:`HealthRegistry` tracks a small per-element / per-link state
machine driven by fault and repair events::

    live ──fault──▶ dead ──repair──▶ repairing
                                        │ probation elapsed
                     ┌──────────────────┤
                     ▼                  ▼
      (few faults) live        suspect / degraded (wear)
                     ▲                  │
                     └── clean window ──┘   (degraded is sticky)

``dead`` is the *hard* state — the allocation state's failed sets
already exclude those resources from every phase.  The other states
are *soft*: ``repairing``, ``suspect`` and ``degraded`` elements stay
usable but carry an avoidance penalty that
:class:`HealthAwareCost` adds to the mapping cost, so placement
drifts away from flaky silicon while capacity is plentiful and
returns to it under pressure — graceful degradation instead of a
cliff.  Hysteresis (the probation windows) keeps a flapping element
from oscillating between trusted and avoided on every event.

Determinism: transitions depend only on the event sequence and the
observation times the caller supplies — the registry draws no
randomness and reads no wall clock, so simulation traces that
include health-driven decisions replay bit-identically.

This registry is also the liveness component ROADMAP item 2's shard
demotion will reuse (the RuntimeRegistry live/stale/dead pattern).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.arch.faults import Fault

__all__ = [
    "HealthAwareCost",
    "HealthPolicy",
    "HealthRegistry",
    "HealthState",
    "HealthTransition",
]


class HealthState(enum.StrEnum):
    """Health of one element or link; values appear in trace records."""

    LIVE = "live"
    #: recently repaired or flaky — usable, softly avoided
    SUSPECT = "suspect"
    #: worn (repeatedly faulted) — usable, permanently discounted
    DEGRADED = "degraded"
    #: currently failed — excluded hard by the allocation state
    DEAD = "dead"
    #: repair completed, probation running — usable, strongly avoided
    REPAIRING = "repairing"


@dataclass(frozen=True)
class HealthPolicy:
    """Tunables of the health automaton.

    ``probation`` is the hysteresis window (sim-time): a repaired
    resource spends it in ``repairing``, then settles by lifetime
    fault count — ``degraded`` at ``degrade_after`` or more faults
    (sticky wear), ``suspect`` at ``suspect_after`` or more (another
    clean probation window promotes it back to ``live``), ``live``
    below that.  The penalties are mapping-cost addends; zero
    disables avoidance of that state.
    """

    probation: float = 10.0
    suspect_after: int = 2
    degrade_after: int = 4
    repairing_penalty: float = 6.0
    suspect_penalty: float = 3.0
    degraded_penalty: float = 1.5

    def __post_init__(self) -> None:
        if self.probation <= 0:
            raise ValueError("probation must be positive")
        if self.suspect_after < 1:
            raise ValueError("suspect_after must be at least 1")
        if self.degrade_after < self.suspect_after:
            raise ValueError("degrade_after must be >= suspect_after")
        for name in ("repairing_penalty", "suspect_penalty",
                     "degraded_penalty"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def describe(self) -> dict:
        """JSON-able parameters (recipe headers round-trip through this)."""
        return {
            "probation": self.probation,
            "suspect_after": self.suspect_after,
            "degrade_after": self.degrade_after,
            "repairing_penalty": self.repairing_penalty,
            "suspect_penalty": self.suspect_penalty,
            "degraded_penalty": self.degraded_penalty,
        }

    @classmethod
    def from_params(cls, params: dict | None) -> "HealthPolicy":
        return cls(**(params or {}))


@dataclass(frozen=True)
class HealthTransition:
    """One state change, for trace records and metrics."""

    kind: str  # "element" or "link"
    target: tuple[str, ...]
    previous: HealthState
    state: HealthState


class _Entry:
    """Mutable health record of one resource."""

    __slots__ = ("state", "faults", "repaired_at", "settled_at")

    def __init__(self) -> None:
        self.state = HealthState.LIVE
        self.faults = 0
        self.repaired_at = 0.0
        self.settled_at = 0.0


class HealthRegistry:
    """Per-element / per-link health, driven by fault and repair events.

    Entries are created lazily — a resource that never faulted is
    ``live`` with zero penalty and costs nothing to ask about.  The
    element-penalty dict is exposed *by identity* to
    :class:`HealthAwareCost`, so penalty updates reach the mapping
    hot path without any per-call indirection.

    Whoever mutates the registry must revoke epoch-keyed decision
    caches when a *soft* penalty changes without a ledger mutation
    (promotions out of ``repairing``/``suspect``): call
    :meth:`~repro.arch.state.AllocationState.touch` when
    :meth:`observe` returns transitions.  Fault and repair events
    bump the epoch through ``fail_*``/``heal_*`` anyway.
    """

    def __init__(self, policy: HealthPolicy | None = None) -> None:
        self.policy = policy or HealthPolicy()
        self._elements: dict[str, _Entry] = {}
        self._links: dict[tuple[str, str], _Entry] = {}
        #: element name -> current soft penalty (shared by identity
        #: with HealthAwareCost; never rebound)
        self._element_penalties: dict[str, float] = {}

    # -- event hooks --------------------------------------------------------

    def on_fault(self, fault: Fault, now: float) -> list[HealthTransition]:
        """A fault hit ``fault.target``: mark it dead, count the wear."""
        entry, key = self._entry(fault)
        previous = entry.state
        entry.faults += 1
        entry.state = HealthState.DEAD
        self._set_penalty(fault, key, 0.0)
        if previous is HealthState.DEAD:
            return []
        return [HealthTransition(fault.kind, fault.target, previous,
                                 HealthState.DEAD)]

    def on_repair(self, fault: Fault, now: float) -> list[HealthTransition]:
        """``fault.target`` was repaired: probation starts now."""
        entry, key = self._entry(fault)
        previous = entry.state
        if previous is not HealthState.DEAD:
            # a repair crew arriving after a heal-by-other-means (or a
            # double repair) changes nothing
            return []
        entry.state = HealthState.REPAIRING
        entry.repaired_at = now
        self._set_penalty(fault, key, self.policy.repairing_penalty)
        return [HealthTransition(fault.kind, fault.target, previous,
                                 HealthState.REPAIRING)]

    def observe(self, now: float) -> list[HealthTransition]:
        """Advance every probation that has elapsed by ``now``.

        Deterministic given the call times; iteration order is sorted
        so the emitted transition order never depends on dict history.
        """
        transitions: list[HealthTransition] = []
        policy = self.policy
        for kind, key, entry in self._entries_sorted():
            target = (key,) if kind == "element" else key
            if entry.state is HealthState.REPAIRING:
                if now - entry.repaired_at >= policy.probation:
                    if entry.faults >= policy.degrade_after:
                        settled = HealthState.DEGRADED
                        penalty = policy.degraded_penalty
                    elif entry.faults >= policy.suspect_after:
                        settled = HealthState.SUSPECT
                        penalty = policy.suspect_penalty
                    else:
                        settled = HealthState.LIVE
                        penalty = 0.0
                    transitions.append(HealthTransition(
                        kind, target, entry.state, settled
                    ))
                    entry.state = settled
                    entry.settled_at = now
                    self._set_penalty_key(kind, key, penalty)
            elif entry.state is HealthState.SUSPECT:
                if now - entry.settled_at >= policy.probation:
                    transitions.append(HealthTransition(
                        kind, target, entry.state, HealthState.LIVE
                    ))
                    entry.state = HealthState.LIVE
                    self._set_penalty_key(kind, key, 0.0)
        return transitions

    # -- queries ------------------------------------------------------------

    def element_state(self, name: str) -> HealthState:
        entry = self._elements.get(name)
        return HealthState.LIVE if entry is None else entry.state

    def link_state(self, a: str, b: str) -> HealthState:
        entry = self._links.get(self._link_key(a, b))
        return HealthState.LIVE if entry is None else entry.state

    def element_penalty(self, name: str) -> float:
        return self._element_penalties.get(name, 0.0)

    def fault_count(self, fault_or_name: Fault | str) -> int:
        if isinstance(fault_or_name, str):
            entry = self._elements.get(fault_or_name)
        else:
            entry = self._entry(fault_or_name, create=False)[0]
        return 0 if entry is None else entry.faults

    @property
    def element_penalties(self) -> dict[str, float]:
        """The live penalty dict (identity-shared with the cost wrapper)."""
        return self._element_penalties

    def summary(self) -> dict:
        """State counts, JSON-able (metrics and the CLI render this)."""
        counts: dict[str, int] = {}
        for _kind, _key, entry in self._entries_sorted():
            counts[entry.state.value] = counts.get(entry.state.value, 0) + 1
        return {
            "tracked": len(self._elements) + len(self._links),
            "states": dict(sorted(counts.items())),
            "penalized_elements": len(self._element_penalties),
        }

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _link_key(a: str, b: str) -> tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def _entry(self, fault: Fault, create: bool = True):
        if fault.kind == "element":
            key = fault.target[0]
            table = self._elements
        else:
            key = self._link_key(*fault.target)
            table = self._links
        entry = table.get(key)
        if entry is None and create:
            entry = table[key] = _Entry()
        return entry, key

    def _entries_sorted(self):
        for key in sorted(self._elements):
            yield "element", key, self._elements[key]
        for key in sorted(self._links):
            yield "link", key, self._links[key]

    def _set_penalty(self, fault: Fault, key, penalty: float) -> None:
        self._set_penalty_key(fault.kind, key, penalty)

    def _set_penalty_key(self, kind: str, key, penalty: float) -> None:
        # only element penalties feed the mapping cost; link health is
        # tracked for observability (routing already avoids dead links
        # hard via the failed set and saturation walls)
        if kind != "element":
            return
        if penalty > 0.0:
            self._element_penalties[key] = penalty
        else:
            self._element_penalties.pop(key, None)


class HealthAwareCost:
    """Wrap a mapping-cost callable with the registry's soft penalties.

    Bit-identity contract: with no penalized elements the wrapper
    returns the base cost *unchanged* (not ``base + 0.0`` — the exact
    same float object path), so a manager with a health registry
    attached makes byte-identical decisions to one without until the
    first soft penalty actually exists.
    """

    __slots__ = ("base", "registry", "_penalties")

    def __init__(self, base, registry: HealthRegistry) -> None:
        self.base = base
        self.registry = registry
        self._penalties = registry.element_penalties  # identity share

    def __call__(
        self,
        app,
        app_id,
        task,
        element,
        state,
        placement,
        distances,
        _comm_peers=None,
        _frag_peers=None,
        _frag_status=None,
    ) -> float:
        cost = self.base(
            app, app_id, task, element, state, placement, distances,
            _comm_peers, _frag_peers, _frag_status,
        )
        penalties = self._penalties
        if not penalties:
            return cost
        penalty = penalties.get(element.name)
        if penalty is None:
            return cost
        return cost + penalty
