"""repro.resilience — health registry, transient faults, recovery engine.

The resilience subsystem turns the binary permanent-fault story into
the full lifecycle the paper's motivation implies: faults arrive
(possibly in correlated storms), repairs restore capacity after an
MTTR, element health degrades gracefully instead of cliff-dropping,
and applications recovery cannot re-place *now* wait in a requeue
that drains when capacity returns.

Three pieces, composable independently:

* :class:`HealthRegistry` (:mod:`repro.resilience.health`) — the
  ``live → suspect → degraded → dead → repairing`` automaton with
  hysteresis, plus :class:`HealthAwareCost`, the mapping-cost wrapper
  that softly steers placement away from flaky elements.
* :class:`RecoveryEngine` (:mod:`repro.resilience.recovery`) — policy-
  ordered recovery passes, the requeue, and exponential backoff.
* :class:`ResilienceConfig` — the JSON-able bundle the sim recipes
  and the ``repro sim`` CLI round-trip.

See ``docs/resilience.md`` for the full model and trace schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.resilience.health import (
    HealthAwareCost,
    HealthPolicy,
    HealthRegistry,
    HealthState,
    HealthTransition,
)
from repro.resilience.recovery import (
    DrainAttempt,
    PendingRecovery,
    RecoveryEngine,
    RecoveryOutcome,
    RecoveryPolicy,
)

__all__ = [
    "DrainAttempt",
    "HealthAwareCost",
    "HealthPolicy",
    "HealthRegistry",
    "HealthState",
    "HealthTransition",
    "PendingRecovery",
    "RecoveryEngine",
    "RecoveryOutcome",
    "RecoveryPolicy",
    "ResilienceConfig",
]


@dataclass(frozen=True)
class ResilienceConfig:
    """The sim-facing bundle: health policy + recovery policy.

    Present in a recipe under the ``"resilience"`` key; absent means
    the legacy behaviour (permanent faults, immediate all-or-nothing
    alphabetical recovery) — recipes and traces recorded before this
    subsystem replay byte-identically.
    """

    health: HealthPolicy = field(default_factory=HealthPolicy)
    recovery: RecoveryPolicy = field(default_factory=RecoveryPolicy)

    def describe(self) -> dict:
        """JSON-able form for recipe headers (see :func:`from_spec`)."""
        return {
            "health": self.health.describe(),
            "recovery": self.recovery.describe(),
        }

    @classmethod
    def from_spec(cls, spec: "dict | ResilienceConfig | None"):
        """Coerce a recipe value into a config (None stays None)."""
        if spec is None or isinstance(spec, cls):
            return spec
        return cls(
            health=HealthPolicy.from_params(spec.get("health")),
            recovery=RecoveryPolicy.from_params(spec.get("recovery")),
        )
