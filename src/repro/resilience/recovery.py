"""Policy-driven fault recovery: ordering, retry with backoff, requeue.

Replaces the inline loop :meth:`repro.manager.kairos.Kairos.recover`
historically ran — release every stranded application in alphabetical
``app_id`` order and retry each exactly once, losing forever whatever
did not fit the degraded platform.  Two failure modes motivated the
upgrade:

* **Ordering starvation** — alphabetical order is deterministic but
  arbitrary: under scarce degraded capacity a small early-alphabet
  application can grab the last feasible region and starve a large or
  high-priority one whose id merely sorts later.
  :class:`RecoveryPolicy` makes the order explicit: ``admission``
  (oldest admitted first — the default for bare ``recover()``),
  ``priority`` (QoS class first), ``size`` (largest first), or
  ``name`` (the legacy order, kept for trace compatibility).
* **Lost forever** — a permanent-fault world has no later; a
  transient-fault world does.  With ``requeue`` enabled, applications
  recovery cannot re-place *now* move to a pending requeue instead of
  being lost; the requeue drains when a repair or a departure frees
  capacity, and each entry retries with exponential backoff up to a
  budget, expiring at the application's natural departure instant
  (reviving an app whose service time already ended would leak it).

Every re-admission runs through the manager's
:class:`~repro.api.AdmissionController`, so recovery outcomes are
structured :class:`~repro.api.Decision` objects and each attempt is
transactional: a failure unwinds in O(mutations of that attempt), and
a pass over an already-consistent state is a no-op — the engine is
idempotent (asserted by ``tests/test_resilience.py``).

The engine is simulation-agnostic: it never touches the event kernel.
The sim service schedules :data:`~repro.sim.events.EventKind.RECOVERY_RETRY`
events from the delays the engine reports and calls :meth:`drain`
when capacity returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.taskgraph import Application
from repro.obs import DISABLED
from repro.reasons import ReasonCode

__all__ = [
    "DrainAttempt",
    "PendingRecovery",
    "RecoveryEngine",
    "RecoveryOutcome",
    "RecoveryPolicy",
]

#: recognised re-admission orders (see RecoveryPolicy)
RECOVERY_ORDERS = ("admission", "priority", "size", "name")


@dataclass(frozen=True)
class RecoveryPolicy:
    """How a recovery pass orders, retries and requeues applications."""

    #: re-admission order over stranded applications; ties break by
    #: admission sequence then app_id, so every order is total and
    #: deterministic
    order: str = "admission"
    #: total allocation attempts per requeued application (the failed
    #: attempt inside the recovery pass counts as the first)
    max_attempts: int = 6
    base_delay: float = 3.0
    backoff: float = 2.0
    #: keep unplaceable applications pending instead of losing them
    requeue: bool = True

    def __post_init__(self) -> None:
        if self.order not in RECOVERY_ORDERS:
            raise ValueError(
                f"order must be one of {RECOVERY_ORDERS}, got {self.order!r}"
            )
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay <= 0 or self.backoff < 1.0:
            raise ValueError("need base_delay > 0 and backoff >= 1")

    def describe(self) -> dict:
        return {
            "order": self.order,
            "max_attempts": self.max_attempts,
            "base_delay": self.base_delay,
            "backoff": self.backoff,
            "requeue": self.requeue,
        }

    @classmethod
    def from_params(cls, params: dict | None) -> "RecoveryPolicy":
        return cls(**(params or {}))


@dataclass
class PendingRecovery:
    """One application waiting in the requeue for capacity to return."""

    app_id: str
    app: Application = field(repr=False)
    priority: int = 0
    #: allocation attempts consumed so far (>= 1: the pass's own try)
    attempts: int = 1
    #: sim-time the application was stranded and deferred
    deferred_at: float = 0.0
    #: insertion sequence (the requeue's notion of admission order)
    seq: int = 0
    #: capacity epoch of the last failed attempt — an unchanged epoch
    #: proves a re-attempt would fail identically, so it is skipped
    #: without consuming retry budget
    last_epoch: int | None = None
    #: service-owned slot for the scheduled backoff event (the engine
    #: never touches it)
    retry_event: object | None = field(default=None, repr=False)


@dataclass
class DrainAttempt:
    """Outcome of one requeue drain attempt on one application."""

    app_id: str
    attempt: int
    #: "recovered" | "deferred" | "exhausted"
    outcome: str
    decision: object | None = field(default=None, repr=False)
    #: next backoff delay (set when outcome == "deferred")
    delay: float | None = None
    #: sim-time spent in the requeue (set when outcome == "recovered")
    waited: float | None = None


@dataclass
class RecoveryOutcome:
    """Everything one recovery pass decided, structurally.

    ``decisions`` holds the :class:`~repro.api.Decision` of every
    re-admission attempted (recovered, deferred and lost alike);
    applications lost without an attempt (no specification) appear
    only in ``lost``/``lost_codes``.
    """

    stranded: tuple[str, ...] = ()
    decisions: dict[str, object] = field(default_factory=dict)
    recovered: dict[str, object] = field(default_factory=dict)
    #: app_id -> human-readable reason it sits in the requeue
    deferred: dict[str, str] = field(default_factory=dict)
    lost: dict[str, str] = field(default_factory=dict)
    lost_codes: dict[str, ReasonCode] = field(default_factory=dict)

    def report(self):
        """The legacy :class:`~repro.manager.kairos.RecoveryReport` view."""
        from repro.manager.kairos import RecoveryReport

        return RecoveryReport(
            stranded=self.stranded,
            recovered=dict(self.recovered),
            lost=dict(self.lost),
            lost_codes=dict(self.lost_codes),
        )


class RecoveryEngine:
    """Recovery passes and the requeue, over one Kairos manager."""

    def __init__(
        self,
        manager,
        policy: RecoveryPolicy | None = None,
        health=None,
    ) -> None:
        self.manager = manager
        self.policy = policy or RecoveryPolicy()
        self.health = health
        #: app_id -> QoS priority, maintained by the service (bare
        #: library use leaves it empty: every app ranks equal and the
        #: admission-sequence tie-break decides)
        self.priorities: dict[str, int] = {}
        self._pending: dict[str, PendingRecovery] = {}
        self._seq = 0
        # recovery counters ride the manager's registry (``recovery.*``
        # in a snapshot); the manager defaults to the DISABLED bundle
        obs = getattr(manager, "obs", None) or DISABLED
        self._obs = obs
        registry = obs.registry
        self._c_passes = registry.counter("recovery.passes")
        self._c_recovered = registry.counter("recovery.recovered")
        self._c_deferred = registry.counter("recovery.deferred")
        self._c_lost = registry.counter("recovery.lost")
        self._c_retries = registry.counter("recovery.retries")
        self._c_exhausted = registry.counter("recovery.exhausted")

    # -- bookkeeping hooks (the service calls these) -------------------------

    def note_priority(self, app_id: str, priority: int) -> None:
        self.priorities[app_id] = priority

    def note_departed(self, app_id: str) -> None:
        self.priorities.pop(app_id, None)

    @property
    def pending(self) -> tuple[PendingRecovery, ...]:
        return tuple(self._pending.values())

    def pending_entry(self, app_id: str) -> PendingRecovery | None:
        return self._pending.get(app_id)

    def expire(self, app_id: str) -> PendingRecovery | None:
        """Drop a requeue entry whose departure deadline passed."""
        return self._pending.pop(app_id, None)

    def flush(self) -> tuple[PendingRecovery, ...]:
        """Drop and return every pending entry (end of run)."""
        entries = tuple(self._pending.values())
        self._pending.clear()
        return entries

    # -- the recovery pass ---------------------------------------------------

    def recovery_pass(
        self,
        now: float = 0.0,
        applications: dict[str, Application] | None = None,
    ) -> RecoveryOutcome:
        """Re-place every stranded application on the degraded platform.

        Idempotent: when nothing admitted touches a failed resource
        the pass returns an empty outcome without mutating anything.
        Strandedness is recomputed after each round, so applications
        stranded *by a fault arriving mid-recovery* (between an outer
        caller's ``stranded_by_faults()`` observation and this pass)
        are picked up rather than corrupting state — each individual
        re-admission is transactional on its own.
        """
        manager = self.manager
        lookup = (
            manager.specifications if applications is None else applications
        )
        self._c_passes.inc()
        outcome = RecoveryOutcome()
        handled: set[str] = set()
        first_round = True
        with self._obs.tracer.span("recovery.pass"):
            self._pass_rounds(manager, lookup, now, outcome, handled,
                              first_round)
        outcome.stranded = tuple(sorted(handled))
        self._c_recovered.inc(len(outcome.recovered))
        self._c_deferred.inc(len(outcome.deferred))
        self._c_lost.inc(len(outcome.lost))
        return outcome

    def _pass_rounds(
        self, manager, lookup, now, outcome, handled, first_round
    ) -> None:
        while True:
            stranded = [
                app_id for app_id in manager.stranded_by_faults()
                if app_id not in handled
            ]
            if not stranded:
                break
            if first_round and manager._distfield is not None:
                # fault boundaries churn placements and routes
                # wholesale; starting the engine cold keeps its flip
                # log short and its fields honest about the degraded
                # topology
                manager._distfield.reset()
                first_round = False
            seq = {
                app_id: index
                for index, app_id in enumerate(manager.admitted)
            }
            stranded.sort(key=self._pass_key(seq, lookup))
            for app_id in stranded:
                handled.add(app_id)
                self._recover_one(app_id, lookup, now, outcome)

    def _recover_one(
        self,
        app_id: str,
        lookup: dict[str, Application],
        now: float,
        outcome: RecoveryOutcome,
    ) -> None:
        manager = self.manager
        if app_id not in lookup:
            outcome.lost[app_id] = "no application specification supplied"
            outcome.lost_codes[app_id] = ReasonCode.RECOVERY_NO_SPECIFICATION
            manager.release(app_id)
            return
        app = lookup[app_id]
        manager.release(app_id)
        epoch = manager.state.epoch
        decision = manager.controller.admit(app, app_id)
        outcome.decisions[app_id] = decision
        if decision.admitted:
            outcome.recovered[app_id] = decision.layout
            return
        reason = f"{decision.phase.value}: {decision.reason}"
        if not self.policy.requeue:
            outcome.lost[app_id] = reason
            outcome.lost_codes[app_id] = decision.code
            return
        self._seq += 1
        self._pending[app_id] = PendingRecovery(
            app_id=app_id,
            app=app,
            priority=self.priorities.get(app_id, 0),
            attempts=1,
            deferred_at=now,
            seq=self._seq,
            last_epoch=epoch,
        )
        outcome.deferred[app_id] = reason

    # -- the requeue ---------------------------------------------------------

    def drain(self, now: float) -> list[DrainAttempt]:
        """Try to re-admit pending applications (capacity may be back).

        Entries whose capacity epoch is unchanged since their last
        failed attempt are skipped for free — the deterministic
        pipeline would reject identically, so no retry budget burns on
        a platform that has not changed.  Attempt order follows the
        policy (requeue insertion sequence standing in for admission
        order).
        """
        if not self._pending:
            return []
        results: list[DrainAttempt] = []
        manager = self.manager
        policy = self.policy
        entries = sorted(self._pending.values(), key=self._drain_key)
        with self._obs.tracer.span("recovery.drain"):
            self._drain_entries(entries, manager, policy, now, results)
        return results

    def _drain_entries(self, entries, manager, policy, now, results) -> None:
        for entry in entries:
            epoch = manager.state.epoch
            if entry.last_epoch == epoch:
                continue
            entry.attempts += 1
            self._c_retries.inc()
            decision = manager.controller.admit(entry.app, entry.app_id)
            if decision.admitted:
                del self._pending[entry.app_id]
                results.append(DrainAttempt(
                    entry.app_id, entry.attempts, "recovered",
                    decision=decision, waited=now - entry.deferred_at,
                ))
                continue
            entry.last_epoch = epoch
            if entry.attempts >= policy.max_attempts:
                del self._pending[entry.app_id]
                self._c_exhausted.inc()
                results.append(DrainAttempt(
                    entry.app_id, entry.attempts, "exhausted",
                    decision=decision,
                ))
            else:
                delay = (
                    policy.base_delay
                    * policy.backoff ** (entry.attempts - 1)
                )
                results.append(DrainAttempt(
                    entry.app_id, entry.attempts, "deferred",
                    decision=decision, delay=delay,
                ))

    # -- ordering ------------------------------------------------------------

    def _pass_key(self, seq: dict[str, int], lookup: dict):
        order = self.policy.order
        priorities = self.priorities

        def size_of(app_id: str) -> int:
            app = lookup.get(app_id)
            return 0 if app is None else len(app.tasks)

        if order == "name":
            return lambda app_id: (app_id,)
        if order == "admission":
            return lambda app_id: (seq.get(app_id, 0), app_id)
        if order == "priority":
            return lambda app_id: (
                -priorities.get(app_id, 0), seq.get(app_id, 0), app_id
            )
        return lambda app_id: (  # size
            -size_of(app_id), seq.get(app_id, 0), app_id
        )

    def _drain_key(self, entry: PendingRecovery):
        order = self.policy.order
        if order == "name":
            return (entry.app_id,)
        if order == "priority":
            return (-entry.priority, entry.seq, entry.app_id)
        if order == "size":
            return (-len(entry.app.tasks), entry.seq, entry.app_id)
        return (entry.seq, entry.app_id)  # admission
