"""Command-line interface to the Kairos reproduction.

Subcommands mirror the library's main entry points::

    python -m repro info                      # platform & library summary
    python -m repro allocate APP.kair         # four-phase allocation
    python -m repro allocate APP.kair --dry-run   # plan, commit nothing
    python -m repro plan APP.kair             # epoch-stamped plan summary
    python -m repro pack --beamformer out.kair
    python -m repro pack --generate SEED out.kair
    python -m repro inspect APP.kair          # decode a binary
    python -m repro table1 | fig7 | fig8 | fig9 | fig10
                                              # regenerate paper artifacts
    python -m repro sim --policy fifo --duration 120
                                              # discrete-event service sim
    python -m repro sim --replay trace.jsonl  # bit-identical replay check
    python -m repro sim --batch-plan 8        # batched queue drain
    python -m repro sim --metrics-out m.json --trace-spans s.jsonl
                                              # instrumented run
    python -m repro cluster sim --shards 4 --kills 2
                                              # sharded service with
                                              # shard-kill campaign
    python -m repro obs show m.json           # pretty-print a snapshot
    python -m repro obs diff a.json b.json    # delta of two snapshots

Scale knobs are taken from the environment (``REPRO_APPS``,
``REPRO_SEQUENCES``, ``REPRO_POSITIONS``, ``REPRO_FIG10_*``) exactly
as in the benchmark suite.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__
from repro.api import AdmissionController
from repro.apps import GeneratorConfig, beamforming_application, generate
from repro.arch import crisp
from repro.core import CostWeights
from repro.io import load_application, pack_application, save_application, sniff
from repro.manager import generate_plan


def _add_weights(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--comm-weight", type=float, default=1.0,
        help="communication objective weight (default 1.0)",
    )
    parser.add_argument(
        "--frag-weight", type=float, default=1.0,
        help="fragmentation objective weight (default 1.0)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Run-time Spatial Resource Management for "
            "Real-Time Applications on Heterogeneous MPSoCs' (DATE 2010)"
        ),
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("info", help="platform and library summary")

    allocate = commands.add_parser(
        "allocate", help="run a four-phase allocation of a .kair binary"
    )
    allocate.add_argument("binary", help="application binary (.kair)")
    allocate.add_argument("--validation", default="report",
                          choices=("enforce", "report", "skip"))
    allocate.add_argument("--method", default="simulation",
                          choices=("simulation", "analytical"))
    allocate.add_argument("--plan", action="store_true",
                          help="print the bootstrap configuration plan")
    allocate.add_argument("--dry-run", action="store_true",
                          help="plan only: run the four phases and print "
                               "the plan summary (per-phase timings, "
                               "epoch, reason code) without committing "
                               "any resources")
    _add_weights(allocate)

    plan = commands.add_parser(
        "plan",
        help="plan (but never commit) a four-phase allocation: prints "
             "the epoch-stamped plan summary and holds no resources",
    )
    plan.add_argument("binary", help="application binary (.kair)")
    plan.add_argument("--validation", default="report",
                      choices=("enforce", "report", "skip"))
    plan.add_argument("--method", default="simulation",
                      choices=("simulation", "analytical"))
    _add_weights(plan)

    pack = commands.add_parser("pack", help="write an application binary")
    source = pack.add_mutually_exclusive_group(required=True)
    source.add_argument("--beamformer", action="store_true",
                        help="pack the 53-task case-study beamformer")
    source.add_argument("--generate", type=int, metavar="SEED",
                        help="pack a generated application with this seed")
    pack.add_argument("output", help="output path (.kair)")

    inspect = commands.add_parser("inspect", help="decode a .kair binary")
    inspect.add_argument("binary")

    sim = commands.add_parser(
        "sim",
        help="discrete-event admission-service simulation (QoS queueing, "
             "faults, trace record/replay)",
    )
    sim.add_argument("--platform", default="12x12",
                     help="'crisp', a RxC mesh spec, or a family spec — "
                          "mesh:RxC, torus:RxC, hetmesh:RxC, "
                          "fat_tree:N[:arity] (default 12x12)")
    sim.add_argument("--duration", type=float, default=120.0,
                     help="sim-time to run (default 120)")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--policy", default="fifo",
                     choices=("reject", "fifo", "priority", "retry"),
                     help="queue policy (default fifo)")
    sim.add_argument("--rate-scale", type=float, default=4.0,
                     help="multiplies every class arrival rate (default 4.0)")
    sim.add_argument("--traffic", default="default",
                     help="named traffic shape: default, hot_spot, "
                          "diurnal_mmpp, flash_crowd (default: default)")
    sim.add_argument("--mapper", default="kairos",
                     help="placement strategy from the pipeline registry "
                          "(kairos, first_fit, random, annealing, optimal; "
                          "default kairos)")
    sim.add_argument("--pool-size", type=int, default=8,
                     help="generated applications per traffic class")
    sim.add_argument("--sample-interval", type=float, default=5.0,
                     help="sim-time between utilization samples")
    sim.add_argument("--faults", type=int, default=0,
                     help="random element faults spread over the run")
    sim.add_argument("--fault-mttr", type=float, default=None,
                     metavar="TIME",
                     help="make every fault transient: the resource is "
                          "repaired TIME sim-time after injection "
                          "(default: faults are permanent)")
    sim.add_argument("--fault-links", type=float, default=0.0,
                     metavar="FRACTION",
                     help="fraction of the fault campaign drawn as link "
                          "faults instead of element faults (default 0)")
    sim.add_argument("--fault-storm", type=int, default=0,
                     metavar="RADIUS",
                     help="correlated fault storms: --faults becomes the "
                          "epicenter count and each storm takes down the "
                          "whole RADIUS-hop neighbourhood (default 0: "
                          "uncorrelated)")
    sim.add_argument("--resilience", action="store_true",
                     help="enable the resilience subsystem: health "
                          "registry with soft avoidance penalties, and "
                          "requeue-with-backoff recovery of applications "
                          "a fault displaced (see docs/resilience.md)")
    sim.add_argument("--recovery-order", default="admission",
                     choices=("admission", "priority", "size", "name"),
                     help="re-admission order of the resilience recovery "
                          "engine (default admission; implies "
                          "--resilience semantics only when that flag "
                          "is set)")
    sim.add_argument("--overload", action="store_true",
                     help="enable overload control (deadline budgets, "
                          "watermark shedding, retry budget, brownout) "
                          "with default policies")
    sim.add_argument("--deadline-budget", type=float, default=None,
                     metavar="T",
                     help="per-request sim-time deadline budget "
                          "(implies --overload)")
    sim.add_argument("--watermark-high", type=float, default=None,
                     metavar="F",
                     help="queue occupancy fraction that starts "
                          "load-shedding (implies --overload)")
    sim.add_argument("--watermark-low", type=float, default=None,
                     metavar="F",
                     help="queue occupancy fraction that stops "
                          "load-shedding (implies --overload)")
    sim.add_argument("--retry-tokens", type=float, default=None,
                     metavar="N",
                     help="retry-budget token capacity (implies "
                          "--overload)")
    sim.add_argument("--no-brownout", action="store_true",
                     help="with --overload: keep placement quality, "
                          "never degrade under sustained pressure")
    sim.add_argument("--warmup", type=float, default=0.0,
                     help="SLA warmup window in sim-time: requests "
                          "resolved earlier are excluded from the "
                          "steady-state blocking/wait figures "
                          "(metrics only; decisions are unaffected)")
    sim.add_argument("--no-incremental", action="store_true",
                     help="disable the incremental distance-field "
                          "engine (comparison runs; decisions are "
                          "bit-identical either way)")
    sim.add_argument("--record", metavar="PATH",
                     help="write the decision trace as JSONL (replayable)")
    sim.add_argument("--replay", metavar="PATH",
                     help="re-run a recorded trace and verify bit-identity")
    sim.add_argument("--profile", action="store_true",
                     help="print per-phase wall-clock latency percentiles "
                          "(bind/map/route/validate, p50/p95/p99)")
    sim.add_argument("--metrics-out", metavar="PATH",
                     help="enable the metric registry and write a JSON "
                          "snapshot (admit/gate/distfield/recovery "
                          "counters, per-phase latency histograms) — "
                          "read it back with 'repro obs show'")
    sim.add_argument("--trace-spans", metavar="PATH",
                     help="enable the span tracer and write the "
                          "hierarchical phase spans as JSONL")
    sim.add_argument("--batch-plan", type=int, default=1, metavar="N",
                     help="drain the admission queue in plan_batch "
                          "windows of N requests (default 1: one probe "
                          "per request; decisions are bit-identical "
                          "either way)")

    cluster = commands.add_parser(
        "cluster",
        help="sharded admission cluster (heartbeat liveness, shard "
             "kill/revive campaigns, cross-shard 2PC; see "
             "docs/cluster.md)",
    )
    cluster_commands = cluster.add_subparsers(
        dest="cluster_command", required=True
    )
    csim = cluster_commands.add_parser(
        "sim",
        help="discrete-event simulation of a sharded admission service",
    )
    csim.add_argument("--platform", default="12x12",
                      help="RxC mesh spec partitioned into column bands "
                           "(default 12x12)")
    csim.add_argument("--shards", type=int, default=2,
                      help="shard count; must divide the mesh columns "
                           "(default 2)")
    csim.add_argument("--duration", type=float, default=120.0)
    csim.add_argument("--seed", type=int, default=0)
    csim.add_argument("--policy", default="fifo",
                      choices=("reject", "fifo", "priority", "retry"))
    csim.add_argument("--rate-scale", type=float, default=4.0)
    csim.add_argument("--pool-size", type=int, default=8)
    csim.add_argument("--sample-interval", type=float, default=5.0)
    csim.add_argument("--warmup", type=float, default=0.0)
    csim.add_argument("--kills", type=int, default=0,
                      help="shard kills spread evenly over the run")
    csim.add_argument("--downtime", type=float, default=20.0,
                      help="sim-time between a kill and its revival "
                           "(default 20)")
    csim.add_argument("--overload", action="store_true",
                      help="enable overload control (deadline budgets, "
                           "watermark shedding, retry budget, per-shard "
                           "circuit breakers, brownout) with default "
                           "policies")
    csim.add_argument("--no-split", action="store_true",
                      help="disable cross-shard admission of "
                           "applications no single shard can host")
    csim.add_argument("--record", metavar="PATH",
                      help="write the decision trace as JSONL (replayable)")
    csim.add_argument("--replay", metavar="PATH",
                      help="re-run a recorded cluster trace and verify "
                           "bit-identity")
    csim.add_argument("--metrics-out", metavar="PATH",
                      help="enable the metric registry and write a JSON "
                           "snapshot (cluster.*, shard.<id>.* counters)")
    csim.add_argument("--trace-spans", metavar="PATH",
                      help="enable the span tracer and write spans "
                           "(coordinator.plan/commit/unwind) as JSONL")

    sweep = commands.add_parser(
        "sweep",
        help="scenario-matrix strategy sweep: topology x traffic x "
             "mapper grids with per-condition statistics (see "
             "docs/scenarios.md)",
    )
    sweep.add_argument("--preset", default="default",
                       choices=("smoke", "default", "storm", "large",
                                "cluster"),
                       help="built-in matrix preset (default: default)")
    sweep.add_argument("--smoke", action="store_true",
                       help="shorthand for --preset smoke --verify (the "
                            "CI gate)")
    sweep.add_argument("--matrix", metavar="PATH",
                       help="load the matrix spec from a JSON file "
                            "instead of a preset")
    sweep.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="run cells in an N-process pool (default 1: "
                            "serial; results are identical either way)")
    sweep.add_argument("--seed", type=int, default=None,
                       help="override the matrix seed")
    sweep.add_argument("--output", metavar="PATH",
                       help="write the sweep report JSON")
    sweep.add_argument("--report", metavar="PATH",
                       help="write the markdown report")
    sweep.add_argument("--verify", action="store_true",
                       help="run the sweep twice — serial and pooled — "
                            "and require byte-identical canonical "
                            "payloads (exit 1 on divergence)")

    obs = commands.add_parser(
        "obs",
        help="inspect observability snapshots written by "
             "sim --metrics-out (see docs/observability.md)",
    )
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)
    obs_show = obs_commands.add_parser(
        "show", help="pretty-print one metrics snapshot"
    )
    obs_show.add_argument("snapshot", help="snapshot JSON path")
    obs_diff = obs_commands.add_parser(
        "diff", help="delta between two snapshots (after minus before)"
    )
    obs_diff.add_argument("before", help="baseline snapshot JSON path")
    obs_diff.add_argument("after", help="comparison snapshot JSON path")

    for name, description in (
        ("table1", "Table I — failure distribution per phase"),
        ("fig7", "Fig. 7 — per-phase runtime vs application size"),
        ("fig8", "Fig. 8 — hops per channel vs sequence position"),
        ("fig9", "Fig. 9 — fragmentation vs sequence position"),
        ("fig10", "Fig. 10 — beamforming admission map"),
    ):
        commands.add_parser(name, help=description)

    return parser


def _cmd_info() -> int:
    platform = crisp()
    kinds: dict[str, int] = {}
    for element in platform.elements:
        kinds[element.kind.value] = kinds.get(element.kind.value, 0) + 1
    print(f"repro {__version__} — Kairos run-time resource manager")
    print(f"platform of record: {platform}")
    print("element census:",
          ", ".join(f"{count}x {kind}" for kind, count in sorted(kinds.items())))
    print(f"links: {len(platform.links)} "
          f"(adjacent element pairs: {len(platform.element_pairs)})")
    app = beamforming_application()
    print(f"case study: {app.name} — {len(app)} tasks, "
          f"{len(app.channels)} channels")
    return 0


def _make_controller(args) -> AdmissionController:
    return AdmissionController(
        crisp(),
        weights=CostWeights(args.comm_weight, args.frag_weight),
        validation_mode=args.validation,
        validation_method=args.method,
    )


def _cmd_allocate(args) -> int:
    try:
        app = load_application(args.binary)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load {args.binary}: {exc}", file=sys.stderr)
        return 2
    controller = _make_controller(args)
    if args.dry_run:
        plan = controller.plan(app)
        print(plan.describe())
        return 0 if plan.ok else 1
    decision = controller.commit(controller.plan(app))
    if not decision.admitted:
        print(f"REJECTED in {decision.phase.value}: {decision.reason}")
        print(f"reason code: {decision.code}")
        return 1
    layout = decision.layout
    print(layout.describe())
    print()
    print("per-phase timings (ms):",
          {k: round(v, 2) for k, v in layout.timings.as_milliseconds().items()})
    if layout.validation is not None:
        print(f"constraints satisfied: {layout.validation.satisfied}")
    if args.plan:
        print()
        print(generate_plan(app, layout).as_script())
    return 0


def _cmd_plan(args) -> int:
    try:
        app = load_application(args.binary)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load {args.binary}: {exc}", file=sys.stderr)
        return 2
    controller = _make_controller(args)
    plan = controller.plan(app)
    print(plan.describe())
    if plan.ok and plan.layout.validation is not None:
        print(f"constraints satisfied: {plan.layout.validation.satisfied}")
    return 0 if plan.ok else 1


def _cmd_pack(args) -> int:
    if args.beamformer:
        app = beamforming_application()
    else:
        app = generate(
            GeneratorConfig(inputs=1, internals=4, outputs=1,
                            pin_io_probability=1.0,
                            io_elements=("fpga", "arm")),
            seed=args.generate,
            name=f"generated_{args.generate}",
        )
    save_application(app, args.output)
    print(f"packed {app.name!r}: {len(app)} tasks, "
          f"{len(app.channels)} channels -> {args.output}")
    return 0


def _cmd_inspect(args) -> int:
    try:
        with open(args.binary, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not sniff(data):
        print(f"{args.binary}: not a Kairos application binary")
        return 1
    from repro.io import unpack_application
    app = unpack_application(data)
    print(f"application {app.name!r} ({len(data)} bytes)")
    for task in sorted(app.tasks):
        spec = app.task(task)
        targets = ", ".join(
            impl.target_element or impl.target_kind.value
            for impl in spec.implementations
        )
        print(f"  task {task} [{spec.role}] -> {targets}")
    for name in sorted(app.channels):
        channel = app.channel(name)
        print(f"  channel {name}: {channel.source} -> {channel.target} "
              f"@ {channel.bandwidth:g}")
    for constraint in app.constraints:
        print(f"  constraint: {constraint.describe()}")
    return 0


def _overload_config(args):
    """Build the CLI's OverloadConfig; None when nothing asked for it.

    ``--overload`` turns everything on with defaults; any granular
    tuning flag implies it.  Works for both the sim and cluster
    parsers — flags a parser does not define simply read as unset.
    """
    import dataclasses

    from repro.overload import DeadlinePolicy, OverloadConfig

    budget = getattr(args, "deadline_budget", None)
    high = getattr(args, "watermark_high", None)
    low = getattr(args, "watermark_low", None)
    tokens = getattr(args, "retry_tokens", None)
    tuned = any(v is not None for v in (budget, high, low, tokens))
    if not (args.overload or tuned):
        return None
    config = OverloadConfig.defaults()
    if budget is not None:
        config = dataclasses.replace(
            config, deadline=DeadlinePolicy(budget=budget)
        )
    if high is not None or low is not None:
        watermark = dataclasses.replace(
            config.watermark,
            high=config.watermark.high if high is None else high,
            low=config.watermark.low if low is None else low,
        )
        config = dataclasses.replace(config, watermark=watermark)
    if tokens is not None:
        config = dataclasses.replace(
            config,
            retry_budget=dataclasses.replace(
                config.retry_budget, capacity=tokens
            ),
        )
    if getattr(args, "no_brownout", False):
        config = dataclasses.replace(config, brownout=None)
    return config


def _print_overload_summary(summary: dict, cluster: bool = False) -> None:
    ov = summary["overload"]
    print(f"  overload         : {ov['shed_watermark']} shed, "
          f"{ov['deadline_expired']} deadline-expired, "
          f"{ov['retry_budget_exhausted']} retry-denied")
    print(f"  brownout         : max level {ov['max_brownout_level']}, "
          f"{ov['brownout_transitions']} transition(s)")
    if cluster:
        print(f"  breakers         : {ov['breaker_transitions']} "
              f"transition(s), {ov['breaker_open']} probe(s) refused")


def _cmd_sim(args) -> int:
    from repro.sim import build_recipe, replay_trace, run_recipe

    if args.replay:
        if args.record:
            print("error: --replay and --record are mutually exclusive "
                  "(replay re-runs the recorded recipe)", file=sys.stderr)
            return 2
        print("replaying the trace's recorded recipe; other sim flags "
              "are ignored")
        try:
            identical, differences, result = replay_trace(args.replay)
        except KeyError as exc:
            print(f"error: cannot replay {args.replay}: recipe header "
                  f"is missing {exc}", file=sys.stderr)
            return 2
        except (OSError, ValueError) as exc:
            print(f"error: cannot replay {args.replay}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"replayed {args.replay}: {len(result.trace)} records")
        if identical:
            print("REPLAY IDENTICAL: event ordering and admission "
                  "decisions reproduced bit-for-bit")
            return 0
        print("REPLAY DIVERGED:")
        for line in differences:
            print(f"  {line}")
        return 1

    resilience = None
    if args.resilience:
        from repro.resilience import RecoveryPolicy, ResilienceConfig
        resilience = ResilienceConfig(
            recovery=RecoveryPolicy(order=args.recovery_order)
        )
    try:
        recipe = build_recipe(
            platform=args.platform,
            duration=args.duration,
            seed=args.seed,
            policy=args.policy,
            rate_scale=args.rate_scale,
            pool_size=args.pool_size,
            sample_interval=args.sample_interval,
            faults=args.faults,
            warmup=args.warmup,
            fault_mttr=args.fault_mttr,
            fault_links=args.fault_links,
            fault_storm=args.fault_storm,
            resilience=resilience,
            overload=_overload_config(args),
            batch_plan=args.batch_plan,
            traffic=args.traffic,
            mapper=args.mapper,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    obs = None
    if args.metrics_out or args.trace_spans:
        from repro.obs import enabled
        obs = enabled()
    try:
        result = run_recipe(
            recipe, trace_path=args.record,
            incremental=not args.no_incremental,
            obs=obs,
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    summary = result.metrics.summary()
    waits = summary["admission_wait"]
    print(f"simulated {args.duration:g} time units on {args.platform} "
          f"({args.policy} policy, seed {args.seed})")
    print(f"  events processed : {result.events_processed} "
          f"({result.events_per_second:,.0f} events/s wall)")
    print(f"  offered/admitted : {summary['offered']} / "
          f"{summary['admitted']} "
          f"(blocking {summary['blocking_probability']:.3f})")
    print(f"  departures/drops : {summary['departed']} / "
          f"{summary['dropped']} {summary['drops_by_reason']}")
    print("  admission wait   : "
          + ", ".join(
              f"{key} {value:.3f}" if value is not None else f"{key} n/a"
              for key, value in waits.items()
          ))
    print(f"  mean utilization : {summary['mean_utilization']:.3f} "
          f"(peak queue depth {summary['peak_queue_depth']})")
    if args.warmup:
        steady = summary["steady_state"]
        steady_waits = ", ".join(
            f"{key} {value:.3f}" if value is not None else f"{key} n/a"
            for key, value in steady["admission_wait"].items()
        )
        print(f"  steady state     : blocking "
              f"{steady['blocking_probability']:.3f}, wait {steady_waits} "
              f"(warmup {steady['warmup']:g} excluded)")
    for name, stats in summary["per_class"].items():
        print(f"  class {name:<12}: {stats['admitted']}/{stats['offered']} "
              f"admitted ({stats['admission_ratio']:.2%})")
    if args.faults:
        faults = summary["faults"]
        print(f"  faults           : {faults['injected']} injected, "
              f"{faults['recovered']} recovered, {faults['lost']} lost")
    if args.resilience:
        res = summary["resilience"]
        mttr = "n/a" if res["mttr"] is None else f"{res['mttr']:.2f}"
        print(f"  resilience       : {res['repairs_completed']} repairs, "
              f"{res['quarantines']} quarantines, "
              f"availability {res['availability']:.4f}, mttr {mttr}")
        print(f"  requeue          : {res['recovery_retries']} retries, "
              f"{res['lost_recovered']} lost-then-recovered")
    if result.overload_stats is not None:
        _print_overload_summary(summary)
    if args.profile:
        print()
        print("per-phase wall-clock latency (ms per attempt):")
        print(f"  {'phase':<12} {'count':>7} {'p50':>9} {'p95':>9} "
              f"{'p99':>9} {'total':>10}")
        for phase, row in summary["phase_latency"].items():
            print(f"  {phase:<12} {row['count']:>7} "
                  f"{row['p50_ms']:>9.3f} {row['p95_ms']:>9.3f} "
                  f"{row['p99_ms']:>9.3f} {row['total_ms']:>10.1f}")
        print(f"  short-circuited probes: "
              f"{summary['probes_short_circuited']}")
        stats = result.distfield_stats
        if stats and stats.get("fetches"):
            print(f"  distance fields  : {stats['fetches']} fetches, "
                  f"{stats['hit_rate']:.0%} hit / "
                  f"{stats['repair_rate']:.0%} repair / "
                  f"{stats['miss_rate']:.0%} miss, "
                  f"ring reuse {stats['ring_reuse_ratio']:.0%}, "
                  f"{stats['bypasses']} bypasses")
    if args.record:
        print(f"  trace            : {len(result.trace)} records -> "
              f"{args.record}")
    if obs is not None:
        context = {
            "platform": args.platform,
            "policy": args.policy,
            "seed": args.seed,
            "duration": args.duration,
        }
        if args.metrics_out:
            from repro.obs import write_snapshot
            try:
                write_snapshot(obs.registry, args.metrics_out, context)
            except OSError as exc:
                print(f"error: cannot write {args.metrics_out}: {exc}",
                      file=sys.stderr)
                return 2
            print(f"  metrics snapshot : {args.metrics_out}")
        if args.trace_spans:
            from repro.obs import write_spans
            try:
                count = write_spans(obs.tracer, args.trace_spans)
            except OSError as exc:
                print(f"error: cannot write {args.trace_spans}: {exc}",
                      file=sys.stderr)
                return 2
            print(f"  spans            : {count} -> {args.trace_spans}")
    return 0


def _cmd_cluster(args) -> int:
    from repro.cluster import (
        build_cluster_recipe,
        replay_cluster_trace,
        run_cluster_recipe,
    )

    if args.replay:
        if args.record:
            print("error: --replay and --record are mutually exclusive "
                  "(replay re-runs the recorded recipe)", file=sys.stderr)
            return 2
        print("replaying the trace's recorded recipe; other flags are "
              "ignored")
        try:
            identical, differences, result = replay_cluster_trace(
                args.replay
            )
        except KeyError as exc:
            print(f"error: cannot replay {args.replay}: recipe header "
                  f"is missing {exc}", file=sys.stderr)
            return 2
        except (OSError, ValueError) as exc:
            print(f"error: cannot replay {args.replay}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"replayed {args.replay}: {len(result.trace)} records")
        if identical:
            print("REPLAY IDENTICAL: event ordering, liveness "
                  "transitions and admission decisions reproduced "
                  "bit-for-bit")
            return 0
        print("REPLAY DIVERGED:")
        for line in differences:
            print(f"  {line}")
        return 1

    try:
        recipe = build_cluster_recipe(
            platform=args.platform,
            shards=args.shards,
            duration=args.duration,
            seed=args.seed,
            policy=args.policy,
            rate_scale=args.rate_scale,
            pool_size=args.pool_size,
            sample_interval=args.sample_interval,
            warmup=args.warmup,
            kills=args.kills,
            downtime=args.downtime,
            allow_split=not args.no_split,
            overload=_overload_config(args),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    obs = None
    if args.metrics_out or args.trace_spans:
        from repro.obs import enabled
        obs = enabled()
    try:
        result = run_cluster_recipe(
            recipe, trace_path=args.record, obs=obs
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    summary = result.metrics.summary()
    print(f"simulated {args.duration:g} time units on {args.platform} "
          f"across {args.shards} shard(s) ({args.policy} policy, "
          f"seed {args.seed})")
    print(f"  events processed : {result.events_processed} "
          f"({result.events_per_second:,.0f} events/s wall)")
    print(f"  offered/admitted : {summary['offered']} / "
          f"{summary['admitted']} "
          f"(blocking {summary['blocking_probability']:.3f})")
    print(f"  departures/drops : {summary['departed']} / "
          f"{summary['dropped']} {summary['drops_by_reason']}")
    print(f"  mean utilization : {summary['mean_utilization']:.3f} "
          f"(peak queue depth {summary['peak_queue_depth']})")
    if args.kills:
        res = summary["resilience"]
        faults = summary["faults"]
        print(f"  shard kills      : {faults['injected']} injected, "
              f"{faults['recovered']} recovered immediately, "
              f"{faults['lost']} lost")
        print(f"  requeue          : {res['recovery_retries']} retries, "
              f"{res['lost_recovered']} lost-then-recovered")
        print(f"  availability     : {res['availability']:.4f}")
    if result.overload_stats is not None:
        _print_overload_summary(summary, cluster=True)
    if args.record:
        print(f"  trace            : {len(result.trace)} records -> "
              f"{args.record}")
    if obs is not None:
        context = {
            "platform": args.platform,
            "shards": args.shards,
            "policy": args.policy,
            "seed": args.seed,
            "duration": args.duration,
        }
        if args.metrics_out:
            from repro.obs import write_snapshot
            try:
                write_snapshot(obs.registry, args.metrics_out, context)
            except OSError as exc:
                print(f"error: cannot write {args.metrics_out}: {exc}",
                      file=sys.stderr)
                return 2
            print(f"  metrics snapshot : {args.metrics_out}")
        if args.trace_spans:
            from repro.obs import write_spans
            try:
                count = write_spans(obs.tracer, args.trace_spans)
            except OSError as exc:
                print(f"error: cannot write {args.trace_spans}: {exc}",
                      file=sys.stderr)
                return 2
            print(f"  spans            : {count} -> {args.trace_spans}")
    return 0


def _format_obs_number(value) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _cmd_obs(args) -> int:
    from repro.obs import diff_snapshots, load_snapshot

    def load(path: str) -> dict:
        return load_snapshot(path)

    try:
        if args.obs_command == "show":
            payload = load(args.snapshot)
        else:
            before = load(args.before)
            after = load(args.after)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.obs_command == "show":
        context = payload.get("context", {})
        if context:
            rendered = ", ".join(
                f"{key}={value}" for key, value in sorted(context.items())
            )
            print(f"context: {rendered}")
        metrics = payload.get("metrics", {})
        counters = metrics.get("counters", {})
        if counters:
            print("counters:")
            width = max(len(name) for name in counters)
            for name in sorted(counters):
                print(f"  {name:<{width}}  {counters[name]}")
        gauges = metrics.get("gauges", {})
        if gauges:
            print("gauges:")
            width = max(len(name) for name in gauges)
            for name in sorted(gauges):
                print(f"  {name:<{width}}  "
                      f"{_format_obs_number(gauges[name])}")
        histograms = metrics.get("histograms", {})
        if histograms:
            print("histograms:")
            for name in sorted(histograms):
                row = histograms[name]
                cells = ", ".join(
                    f"{key} {_format_obs_number(row.get(key))}"
                    for key in ("count", "mean", "p50", "p95", "p99")
                )
                print(f"  {name}: {cells}")
        if not (counters or gauges or histograms):
            print("snapshot holds no metrics")
        return 0

    delta = diff_snapshots(before, after)
    changed = False
    for kind in ("counters", "gauges"):
        rows = delta[kind]
        if not rows:
            continue
        changed = True
        print(f"{kind}:")
        width = max(len(name) for name in rows)
        for name in sorted(rows):
            row = rows[name]
            sign = "+" if row["delta"] >= 0 else ""
            print(f"  {name:<{width}}  {row['before']} -> {row['after']} "
                  f"({sign}{_format_obs_number(row['delta'])})")
    if delta["histograms"]:
        changed = True
        print("histograms:")
        for name in sorted(delta["histograms"]):
            row = delta["histograms"][name]
            after_row = row["after"]
            print(f"  {name}: +{row['count_delta']} samples, "
                  f"+{_format_obs_number(row['sum_delta'])}s; now "
                  f"p50 {_format_obs_number(after_row.get('p50'))}, "
                  f"p95 {_format_obs_number(after_row.get('p95'))}")
    if not changed:
        print("snapshots are identical")
    return 0


def _cmd_sweep(args) -> int:
    import json

    from repro.scenarios import (
        ScenarioMatrix,
        canonical_payload,
        cluster_matrix,
        default_matrix,
        large_matrix,
        render_reports,
        run_sweep,
        smoke_matrix,
        storm_matrix,
    )

    presets = {
        "smoke": smoke_matrix,
        "default": default_matrix,
        "storm": storm_matrix,
        "large": large_matrix,
        "cluster": cluster_matrix,
    }
    preset = "smoke" if args.smoke else args.preset
    verify = args.verify or args.smoke
    seed = 0 if args.seed is None else args.seed
    try:
        if args.matrix:
            with open(args.matrix, encoding="utf-8") as handle:
                spec = json.load(handle)
            if args.seed is not None:
                spec["seed"] = args.seed
            matrix = ScenarioMatrix.from_spec(spec)
        else:
            matrix = presets[preset](seed=seed)
        matrix.expand()  # surface axis errors before any cell runs
    except (OSError, ValueError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = run_sweep(matrix, jobs=args.jobs, progress=print)
    if verify:
        pooled = run_sweep(matrix, jobs=max(2, args.jobs), progress=print)
        if canonical_payload(report) != canonical_payload(pooled):
            print("SWEEP DIVERGED: pooled run does not match the serial "
                  "run", file=sys.stderr)
            return 1
        print("SWEEP VERIFIED: serial and pooled runs are byte-identical")
    cells = report["cells"]
    blocking = [
        cell["decisions"]["blocking_probability"] for cell in cells
    ]
    print(f"swept matrix '{matrix.name}': {len(cells)} cells, "
          f"blocking {min(blocking):.3f}..{max(blocking):.3f}")
    for condition, row in report["analysis"]["best_strategy"].items():
        print(f"  {condition:<40} best={row['mapper']} "
              f"(goodput {row['goodput']:.3f}, margin "
              f"{row['margin']:+.3f} vs {row['runner_up']})")
    if args.output:
        try:
            with open(args.output, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
                handle.write("\n")
        except OSError as exc:
            print(f"error: cannot write {args.output}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"  report JSON -> {args.output}")
    if args.report:
        document = render_reports(
            [report], f"Scenario sweep: {matrix.name}"
        )
        try:
            with open(args.report, "w", encoding="utf-8") as handle:
                handle.write(document)
                handle.write("\n")
        except OSError as exc:
            print(f"error: cannot write {args.report}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"  report markdown -> {args.report}")
    return 0


def _cmd_experiment(command: str) -> int:
    from repro.experiments import (
        HarnessScale,
        format_fig7,
        format_fig8,
        format_fig9,
        format_fig10,
        format_table1,
        run_fig7,
        run_fig10,
        run_fig89,
        run_table1,
    )
    scale = HarnessScale.from_environment()
    if command == "table1":
        print(format_table1(run_table1(scale)))
    elif command == "fig7":
        print(format_fig7(run_fig7(scale)))
    elif command in ("fig8", "fig9"):
        result = run_fig89(scale)
        print(format_fig8(result) if command == "fig8" else format_fig9(result))
    elif command == "fig10":
        print(format_fig10(run_fig10()))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "allocate":
        return _cmd_allocate(args)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "pack":
        return _cmd_pack(args)
    if args.command == "inspect":
        return _cmd_inspect(args)
    if args.command == "sim":
        return _cmd_sim(args)
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "obs":
        return _cmd_obs(args)
    return _cmd_experiment(args.command)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
