"""Plain-text platform visualisation.

Renders a frozen platform's element grid with per-element occupancy —
the textual analogue of the paper's Fig. 6 overlay (the beamformer
drawn over the CRISP die photo).  Elements are placed by their
``position`` attribute; platforms without positions fall back to a
simple listing.

Used by the examples and handy in a REPL::

    >>> from repro import crisp, Kairos, beamforming_application
    >>> from repro.viz import render_occupancy
    >>> manager = Kairos(crisp())
    >>> layout = manager.allocate(beamforming_application())
    >>> print(render_occupancy(manager.state))        # doctest: +SKIP
"""

from __future__ import annotations

from collections import defaultdict

from repro.arch.state import AllocationState
from repro.arch.topology import Platform

#: one-letter glyphs per element kind
KIND_GLYPHS = {
    "dsp": "D",
    "gpp": "A",    # the ARM
    "fpga": "F",
    "memory": "M",
    "test": "T",
    "io": "I",
}


def _cell(state: AllocationState, element) -> str:
    glyph = KIND_GLYPHS.get(element.kind.value, "?")
    if state.is_failed(element):
        return "XX"
    occupants = len(state.occupants(element))
    if occupants == 0:
        return f"{glyph}."
    if occupants > 9:
        return f"{glyph}+"
    return f"{glyph}{occupants}"


def render_occupancy(state: AllocationState) -> str:
    """ASCII grid of the platform with occupant counts per element.

    Legend: letter = element kind (D=DSP, A=ARM, F=FPGA, M=memory,
    T=test), digit = resident task count, ``.`` = free, ``XX`` =
    failed.
    """
    platform = state.platform
    positioned = [e for e in platform.elements if e.position is not None]
    if not positioned:
        lines = [f"{e.name}: {_cell(state, e)}" for e in platform.elements]
        return "\n".join(lines)

    by_row: dict[int, dict[int, str]] = defaultdict(dict)
    max_col = 0
    for element in positioned:
        col, row = int(element.position[0]), int(element.position[1])
        by_row[row][col] = _cell(state, element)
        max_col = max(max_col, col)

    lines = []
    for row in sorted(by_row):
        cells = [by_row[row].get(col, "  ") for col in range(max_col + 1)]
        lines.append(" ".join(cells).rstrip())
    lines.append("")
    lines.append(
        "legend: D=DSP A=ARM F=FPGA M=memory T=test; "
        "digit = resident tasks, '.' = free, XX = failed"
    )
    return "\n".join(lines)


def render_placement(
    platform: Platform,
    placement: dict[str, str],
    width: int = 6,
) -> str:
    """ASCII grid labelling each element with the task it hosts.

    Elements hosting several tasks of ``placement`` show the first
    (alphabetically) plus ``+``; absent elements show ``.``.
    """
    tasks_by_element: dict[str, list[str]] = defaultdict(list)
    for task, element in sorted(placement.items()):
        tasks_by_element[element].append(task)

    positioned = [e for e in platform.elements if e.position is not None]
    if not positioned:
        return "\n".join(
            f"{element}: {','.join(tasks)}"
            for element, tasks in sorted(tasks_by_element.items())
        )

    by_row: dict[int, dict[int, str]] = defaultdict(dict)
    max_col = 0
    for element in positioned:
        col, row = int(element.position[0]), int(element.position[1])
        tasks = tasks_by_element.get(element.name, [])
        if not tasks:
            label = "."
        elif len(tasks) == 1:
            label = tasks[0]
        else:
            label = tasks[0][: width - 1] + "+"
        by_row[row][col] = label[:width]
        max_col = max(max_col, col)

    lines = []
    for row in sorted(by_row):
        cells = [
            by_row[row].get(col, "").ljust(width)
            for col in range(max_col + 1)
        ]
        lines.append(" ".join(cells).rstrip())
    return "\n".join(lines)


def render_route(platform: Platform, path: tuple[str, ...]) -> str:
    """One-line rendering of a route with hop count."""
    return f"{' > '.join(path)}  ({len(path) - 1} hops)"
