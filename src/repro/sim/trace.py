"""Decision traces: JSONL record, bit-identical replay, diffing.

Every decision the simulation takes — arrival, admission, queueing,
retry, drop, departure, fault, recovery, sample — is appended to an
in-memory trace of plain dicts and optionally written as JSON Lines:
one header object (the *recipe* that reproduces the run) followed by
one object per record.  Canonical serialisation (sorted keys, fixed
separators, ``repr``-exact floats) makes two traces comparable byte
for byte; :func:`diff_traces` reports the first divergences and
:func:`trace_digest` folds a trace into one hash for quick equality
checks across code changes.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path


class TraceRecorder:
    """Accumulates decision records in arrival order."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def record(self, time: float, kind: str, **data) -> None:
        entry = {"i": len(self.records), "t": time, "kind": kind}
        entry.update(data)
        self.records.append(entry)

    def __len__(self) -> int:
        return len(self.records)


def _canonical(record: dict) -> str:
    """Canonical JSON: key-sorted, fixed separators, repr-exact floats."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def write_trace(
    path: str | Path, records: list[dict], header: dict | None = None
) -> Path:
    """Write a trace as JSON Lines; the optional header object first."""
    path = Path(path)
    lines = []
    if header is not None:
        lines.append(_canonical({"header": header}))
    lines.extend(_canonical(record) for record in records)
    path.write_text("\n".join(lines) + "\n")
    return path


def read_trace(path: str | Path) -> tuple[dict | None, list[dict]]:
    """Read a JSONL trace back; returns (header-or-None, records)."""
    header: dict | None = None
    records: list[dict] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            if line_number == 0 and "header" in entry:
                header = entry["header"]
            else:
                records.append(entry)
    return header, records


def trace_digest(records: list[dict]) -> str:
    """SHA-256 over the canonical serialisation of every record."""
    digest = hashlib.sha256()
    for record in records:
        digest.update(_canonical(record).encode())
        digest.update(b"\n")
    return digest.hexdigest()


def diff_traces(
    first: list[dict], second: list[dict], limit: int = 5
) -> list[str]:
    """Human-readable description of the first ``limit`` divergences.

    Empty list means the traces are bit-identical (same length, same
    canonical serialisation record by record).
    """
    differences: list[str] = []
    for index, (a, b) in enumerate(zip(first, second)):
        if _canonical(a) != _canonical(b):
            differences.append(
                f"record {index}: {_canonical(a)} != {_canonical(b)}"
            )
            if len(differences) >= limit:
                return differences
    if len(first) != len(second):
        differences.append(
            f"length mismatch: {len(first)} vs {len(second)} records"
        )
    return differences
