"""Decision traces: JSONL record, bit-identical replay, diffing.

Every decision the simulation takes — arrival, admission, queueing,
retry, drop, departure, fault, recovery, sample — is appended to an
in-memory trace of plain dicts and optionally written as JSON Lines:
one header object (the *recipe* that reproduces the run) followed by
one object per record.  Canonical serialisation (sorted keys, fixed
separators, ``repr``-exact floats) makes two traces comparable byte
for byte; :func:`diff_traces` reports the first divergences and
:func:`trace_digest` folds a trace into one hash for quick equality
checks across code changes.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path


class TraceFormatError(ValueError):
    """A trace file is malformed; names the file, line and problem.

    Raised (instead of a bare :class:`json.JSONDecodeError` escaping
    with a stack trace) for truncated lines, invalid JSON and records
    that are not JSON objects — everything a mangled or partially
    written trace can contain.  A plain :class:`ValueError`, so
    pre-existing ``except ValueError`` handlers (the CLI's replay
    path) keep working.
    """

    def __init__(self, path, line_number: int, problem: str) -> None:
        super().__init__(f"{path}:{line_number}: {problem}")
        self.path = str(path)
        self.line_number = line_number
        self.problem = problem


class TraceRecorder:
    """Accumulates decision records in arrival order."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def record(self, time: float, kind: str, **data) -> None:
        entry = {"i": len(self.records), "t": time, "kind": kind}
        entry.update(data)
        self.records.append(entry)

    def __len__(self) -> int:
        return len(self.records)


def _canonical(record: dict) -> str:
    """Canonical JSON: key-sorted, fixed separators, repr-exact floats."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def write_trace(
    path: str | Path, records: list[dict], header: dict | None = None
) -> Path:
    """Write a trace as JSON Lines; the optional header object first."""
    path = Path(path)
    lines = []
    if header is not None:
        lines.append(_canonical({"header": header}))
    lines.extend(_canonical(record) for record in records)
    path.write_text("\n".join(lines) + "\n")
    return path


def read_trace(path: str | Path) -> tuple[dict | None, list[dict]]:
    """Read a JSONL trace back; returns (header-or-None, records).

    Malformed input — truncated/invalid JSON, non-object lines, a
    header that is not an object — raises :class:`TraceFormatError`
    with the offending line number, never a raw decoder stack trace.
    """
    header: dict | None = None
    records: list[dict] = []
    with open(path) as handle:
        try:
            lines = handle.readlines()
        except UnicodeDecodeError as exc:
            raise TraceFormatError(
                path, 0, f"not valid UTF-8: {exc.reason}"
            ) from None
        for line_number, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    path, line_number + 1, f"invalid JSON: {exc.msg}"
                ) from None
            if not isinstance(entry, dict):
                raise TraceFormatError(
                    path, line_number + 1,
                    "expected a JSON object, got "
                    f"{type(entry).__name__}",
                )
            if line_number == 0 and "header" in entry:
                header = entry["header"]
                if not isinstance(header, dict):
                    raise TraceFormatError(
                        path, line_number + 1,
                        "trace header must be a JSON object, got "
                        f"{type(header).__name__}",
                    )
            else:
                records.append(entry)
    return header, records


def trace_digest(records: list[dict]) -> str:
    """SHA-256 over the canonical serialisation of every record."""
    digest = hashlib.sha256()
    for record in records:
        digest.update(_canonical(record).encode())
        digest.update(b"\n")
    return digest.hexdigest()


def diff_traces(
    first: list[dict], second: list[dict], limit: int = 5
) -> list[str]:
    """Human-readable description of the first ``limit`` divergences.

    Empty list means the traces are bit-identical (same length, same
    canonical serialisation record by record).
    """
    differences: list[str] = []
    for index, (a, b) in enumerate(zip(first, second)):
        if _canonical(a) != _canonical(b):
            differences.append(
                f"record {index}: {_canonical(a)} != {_canonical(b)}"
            )
            if len(differences) >= limit:
                return differences
    if len(first) != len(second):
        differences.append(
            f"length mismatch: {len(first)} vs {len(second)} records"
        )
    return differences
