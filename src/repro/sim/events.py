"""The discrete-event kernel: a seeded, heap-ordered event queue.

Sim-time is a float starting at 0.0.  Every event carries an
:class:`EventKind`; at equal timestamps events fire in kind order
(departures before faults before arrivals before retries before
queue timeouts before sampling ticks) and, within one kind, in
scheduling order.
The tie-break is total and independent of hash seeds or insertion
heap shape, which is what makes recorded traces bit-identical across
runs — the determinism contract asserted by ``tests/test_sim_trace.py``.

The kernel owns a seeded :class:`random.Random` that drivers may use
for stochastic draws (holding times, backoff jitter); everything a
simulation randomises must come from this RNG or from driver-owned
seeded RNGs, never from global ``random``.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field
from random import Random
from typing import Any


class EventKind(enum.IntEnum):
    """Event categories; the integer value is the equal-time priority.

    Departures fire first so capacity freed "now" is visible to every
    other event at the same instant; repairs next (capacity returning
    is visible to a same-instant fault's recovery pass and to every
    arrival); faults after that, so arrivals at the fault instant
    already see the degraded platform; retries fire after every
    same-instant fresh arrival (a retried request never outruns a
    newcomer for the last slot); recovery retries drain the
    resilience requeue after ordinary retries (a revived app never
    outruns a request already holding a retry ticket); queue timeouts
    purge before the sampling tick observes the queue; ticks observe
    last, after all state changes.

    The integer values are internal heap priorities, never recorded
    in traces — only the *relative* order of pre-existing kinds is
    frozen by the replay contract, so inserting new kinds renumbers
    the tail safely.
    """

    DEPARTURE = 0
    #: MTTR-driven repair of a transient fault (see repro.resilience);
    #: shard revivals share this slot — capacity returning is visible
    #: to every same-instant fault, arrival and liveness pulse
    REPAIR = 1
    #: cluster heartbeat pulse (see repro.cluster): liveness observes
    #: after repairs/revivals but before the instant's fault lands, so
    #: a revived shard's probation clock starts on time and demotion
    #: decisions never see a fault that "has not happened yet"
    HEARTBEAT = 2
    FAULT = 3
    ARRIVAL = 4
    RETRY = 5
    #: resilience requeue drain attempt (backoff-scheduled)
    RECOVERY_RETRY = 6
    TIMEOUT = 7
    TICK = 8
    #: legacy fixed-step drivers (``run_workload`` / ``run_admission_churn``)
    STEP = 9


@dataclass
class Event:
    """One scheduled occurrence.  ``payload`` is handler-defined."""

    time: float
    kind: EventKind
    seq: int
    handler: Callable[["EventKernel", "Event"], None]
    payload: dict[str, Any] = field(default_factory=dict)
    cancelled: bool = False

    def cancel(self) -> None:
        """Lazily cancel: the kernel skips the event when popped."""
        self.cancelled = True


class EventKernel:
    """Seeded continuous-time event loop with deterministic ordering."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = Random(seed)
        self.now = 0.0
        self.processed = 0
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = itertools.count()
        self._stopped = False

    # -- scheduling --------------------------------------------------------

    def schedule(
        self,
        delay: float,
        kind: EventKind,
        handler: Callable[["EventKernel", Event], None],
        **payload: Any,
    ) -> Event:
        """Schedule ``handler`` to fire ``delay`` after the current time."""
        return self.schedule_at(self.now + delay, kind, handler, **payload)

    def schedule_at(
        self,
        when: float,
        kind: EventKind,
        handler: Callable[["EventKernel", Event], None],
        **payload: Any,
    ) -> Event:
        if when < self.now:
            raise ValueError(
                f"cannot schedule into the past ({when} < now {self.now})"
            )
        event = Event(when, kind, next(self._seq), handler, payload)
        heapq.heappush(self._heap, (when, int(kind), event.seq, event))
        return event

    # -- execution ---------------------------------------------------------

    def run(
        self, until: float | None = None, max_events: int | None = None
    ) -> int:
        """Process events in order; returns how many fired this call.

        ``until`` is inclusive: events at exactly ``until`` still fire
        (the natural reading for "simulate for D time units" when the
        final sampling tick lands on D).  Advances ``now`` to ``until``
        even if the queue drains earlier.
        """
        self._stopped = False
        fired = 0
        capped = False
        while self._heap and not self._stopped:
            when = self._heap[0][0]
            if until is not None and when > until:
                break
            if max_events is not None and fired >= max_events:
                capped = True
                break
            _, _, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = when
            event.handler(self, event)
            fired += 1
            self.processed += 1
        # advance the clock only when the window genuinely completed:
        # a stop() or max_events halt leaves live events before
        # ``until``, and jumping past them would make time run
        # backwards on the next call
        if (
            until is not None
            and not self._stopped
            and not capped
            and self.now < until
        ):
            self.now = until
        return fired

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight event."""
        self._stopped = True

    def peek_time(self) -> float | None:
        """Timestamp of the next live event, or None when drained."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def pending(self) -> int:
        """Number of scheduled, not-yet-cancelled events."""
        return sum(1 for *_rest, event in self._heap if not event.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<EventKernel t={self.now:.3f} pending={self.pending()} "
            f"processed={self.processed}>"
        )


def pop_random(rng: Random, items: list) -> Any:
    """Remove and return a uniformly random element of ``items``.

    The one sampling helper shared by the legacy step drivers
    (``run_workload``, ``run_admission_churn``): one RNG draw and one
    ``list.pop`` per departure, replacing the old per-departure
    ``rng.choice(sorted(...))`` which sorted the whole resident set
    every time.  The pop is order-preserving (``pop(i)``, a C-level
    shift) rather than a swap-with-last pop: the churn layout digests
    frozen against ``benchmarks/seed_reference`` depend on the
    residual list order seen by every later draw, and a swap-pop
    would silently change which application each subsequent
    ``randrange`` selects.
    """
    return items.pop(rng.randrange(len(items)))
