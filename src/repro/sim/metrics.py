"""SLA metrics of the admission service.

The quantities a service operator reads off a teletraffic system:
blocking probability, admission-wait percentiles (p50/p95/p99),
per-class admission ratios, and utilization / fragmentation / queue
depth time-series sampled in sim-time by the kernel's TICK events.
Everything aggregates incrementally so a long run stays O(1) per
decision, and :meth:`ServiceMetrics.summary` renders one JSON-able
dict shared by the CLI, the benchmark runner and the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

# the percentile arithmetic moved to repro.obs.stats (one shared home
# for it and the manager-metrics means); re-exported here because
# ``from repro.sim.metrics import percentile`` is a public path
from repro.obs.stats import latency_summary, percentile

__all__ = [
    "percentile",
    "SimSample",
    "ClassStats",
    "ServiceMetrics",
]


@dataclass
class SimSample:
    """One TICK observation of the platform and the queue."""

    time: float
    utilization: float
    fragmentation: float
    resident: int
    queue_depth: int


@dataclass
class ClassStats:
    """Per-QoS-class admission accounting."""

    offered: int = 0
    admitted: int = 0
    dropped: int = 0
    waits: list[float] = field(default_factory=list)

    @property
    def admission_ratio(self) -> float:
        return self.admitted / self.offered if self.offered else 0.0


@dataclass
class ServiceMetrics:
    """Aggregates of one simulated service run.

    ``offered`` counts first-time arrivals only; a retried or queued
    request resolves exactly once — admitted or dropped — so
    ``blocking_probability`` is blocking drops over resolved requests,
    the standard Erlang blocking definition.  End-of-run ``drained``
    drops are censored observations (still legitimately waiting at the
    horizon), not blocking, and are excluded from the ratio — without
    that, queueing policies would look worse on shorter runs purely
    from truncation.

    ``warmup`` (sim-time) opens an SLA measurement window: requests
    *resolved* before the warmup instant belong to the fill transient
    — an empty platform admits nearly everything with zero wait, which
    biases blocking probability and wait percentiles optimistic on
    overloaded runs.  The steady-state view (``steady_*`` fields,
    ``summary()["steady_state"]``) counts only post-warmup
    resolutions; the raw counters keep covering the whole run, so a
    warmup of 0 makes both views coincide.  Classification is by
    resolution time (admit or blocking drop), matching when the wait
    observation is actually made.
    """

    warmup: float = 0.0
    offered: int = 0
    admitted: int = 0
    departed: int = 0
    retries: int = 0
    queued: int = 0
    #: probes skipped because the capacity epoch was unchanged since
    #: the request's last failed attempt (the outcome is replayed from
    #: the recorded failure — same decision, none of the pipeline cost)
    probes_short_circuited: int = 0
    #: drop reason -> count ("rejected", "queue_full", "timeout",
    #: "retries_exhausted", "drained") — the queue-policy members of
    #: :class:`repro.reasons.ReasonCode`; keys are their string values
    drops: dict[str, int] = field(default_factory=dict)
    rejections_by_phase: dict[str, int] = field(default_factory=dict)
    #: pipeline rejections by machine-readable ReasonCode value —
    #: finer-grained than the per-phase counts (e.g. distinguishes
    #: gate aggregate-capacity rejections from no-feasible-
    #: implementation ones, both "binding")
    rejections_by_code: dict[str, int] = field(default_factory=dict)
    #: wall-clock seconds per pipeline phase, one sample per attempt in
    #: which the phase actually ran (admitted and rejected alike)
    phase_latencies: dict[str, list[float]] = field(default_factory=dict)
    #: admission wait (admit sim-time minus arrival sim-time), admitted only
    waits: list[float] = field(default_factory=list)
    per_class: dict[str, ClassStats] = field(default_factory=dict)
    samples: list[SimSample] = field(default_factory=list)
    faults_injected: int = 0
    recovered: int = 0
    lost: int = 0
    #: post-warmup resolutions only (see the class docstring)
    steady_admitted: int = 0
    steady_blocked: int = 0
    steady_waits: list[float] = field(default_factory=list)
    # -- resilience accounting (all zero / empty on legacy runs) -----------
    repairs_completed: int = 0
    #: health-registry state transitions that emitted quarantine events
    quarantines: int = 0
    #: requeue drain attempts (successful or not)
    recovery_retries: int = 0
    #: applications lost to a fault and later re-admitted via the requeue
    lost_recovered: int = 0
    #: per-repair downtime (repair sim-time minus fault sim-time) — the
    #: observed MTTR distribution
    repair_times: list[float] = field(default_factory=list)
    #: requeue residence time of each lost-then-recovered application
    recovery_latencies: list[float] = field(default_factory=list)
    # -- overload accounting (all zero without an OverloadConfig) ----------
    #: watermark shedding-mode enters + exits
    watermark_transitions: int = 0
    #: brownout level moves (escalations + restorations)
    brownout_transitions: int = 0
    #: deepest brownout level the run reached
    max_brownout_level: int = 0
    #: circuit-breaker automaton edges (cluster runs only)
    breaker_transitions: int = 0
    #: piecewise-constant integral of the element-availability fraction
    _avail_integral: float = 0.0
    _avail_last_time: float = 0.0
    _avail_last_fraction: float = 1.0
    _avail_finalized_at: float | None = None

    # -- recording hooks (called by the service) ---------------------------

    def on_offered(self, class_name: str) -> None:
        self.offered += 1
        self._class(class_name).offered += 1

    def on_admitted(
        self, class_name: str, wait: float, now: float | None = None
    ) -> None:
        self.admitted += 1
        self.waits.append(wait)
        stats = self._class(class_name)
        stats.admitted += 1
        stats.waits.append(wait)
        if now is None or now >= self.warmup:
            self.steady_admitted += 1
            self.steady_waits.append(wait)

    def on_dropped(
        self, class_name: str, reason: str, now: float | None = None
    ) -> None:
        # reason may be a ReasonCode member (a str subclass) or a plain
        # string from a custom policy; store the plain value either way
        reason = str(getattr(reason, "value", reason))
        self.drops[reason] = self.drops.get(reason, 0) + 1
        self._class(class_name).dropped += 1
        # drained drops are censored, not blocking — excluded from the
        # steady-state ratio exactly as from the overall one
        if reason != "drained" and (now is None or now >= self.warmup):
            self.steady_blocked += 1

    def on_overload_drop(self, code) -> None:
        """Intern an overload drop into ``rejections_by_code``.

        Overload sheds (deadline expiry, watermark sheds, retry-budget
        denials) also flow through :meth:`on_dropped` like every other
        drop; this hook additionally interns their
        :class:`~repro.reasons.ReasonCode` so they are distinguishable
        from pipeline rejections and generic timeouts in every surface
        that reads ``rejections_by_code``.
        """
        key = str(getattr(code, "value", code))
        self.rejections_by_code[key] = (
            self.rejections_by_code.get(key, 0) + 1
        )

    def on_phase_rejection(self, phase: str, code=None) -> None:
        self.rejections_by_phase[phase] = (
            self.rejections_by_phase.get(phase, 0) + 1
        )
        if code is not None:
            key = str(getattr(code, "value", code))
            self.rejections_by_code[key] = (
                self.rejections_by_code.get(key, 0) + 1
            )

    def on_attempt_timings(self, timings) -> None:
        """Record one attempt's per-phase wall-clock seconds.

        ``timings`` is a :class:`~repro.manager.layout.PhaseTimings`;
        only phases that actually ran contribute a sample, so a
        binding-gated rejection does not pollute the mapping histogram
        with zeros.
        """
        if timings is None:
            return
        latencies = self.phase_latencies
        for phase, seconds in timings.recorded_items():
            bucket = latencies.get(phase)
            if bucket is None:
                bucket = latencies[phase] = []
            bucket.append(seconds)

    def phase_latency_summary(self) -> dict:
        """Per-phase wall-clock p50/p95/p99 (milliseconds) + counts.

        Delegates to :func:`repro.obs.stats.latency_summary` — the
        arithmetic (nearest-rank percentiles, ×1000 scaling) is
        byte-identical to the pre-obs inline version.
        """
        return {
            phase: latency_summary(samples)
            for phase, samples in sorted(self.phase_latencies.items())
        }

    def on_availability(self, now: float, fraction: float) -> None:
        """The element-availability fraction changed at ``now``.

        Maintains a piecewise-constant integral: the previous fraction
        is credited for the elapsed span, then the new one takes over.
        Call :meth:`finalize_availability` at the horizon to close the
        last span.
        """
        if now > self._avail_last_time:
            self._avail_integral += self._avail_last_fraction * (
                now - self._avail_last_time
            )
            self._avail_last_time = now
        self._avail_last_fraction = fraction

    def finalize_availability(self, duration: float) -> None:
        self.on_availability(duration, self._avail_last_fraction)
        self._avail_finalized_at = duration

    @property
    def availability(self) -> float:
        """Time-averaged fraction of elements available, in [0, 1]."""
        horizon = self._avail_finalized_at
        if horizon is None or horizon <= 0:
            return 1.0
        return self._avail_integral / horizon

    @property
    def mttr(self) -> float:
        """Mean observed time-to-repair (NaN when nothing repaired)."""
        if not self.repair_times:
            return math.nan
        return sum(self.repair_times) / len(self.repair_times)

    def _class(self, name: str) -> ClassStats:
        if name not in self.per_class:
            self.per_class[name] = ClassStats()
        return self.per_class[name]

    # -- derived quantities ------------------------------------------------

    @property
    def dropped(self) -> int:
        return sum(self.drops.values())

    @property
    def blocking_probability(self) -> float:
        blocked = self.dropped - self.drops.get("drained", 0)
        resolved = self.admitted + blocked
        return blocked / resolved if resolved else 0.0

    @property
    def steady_blocking_probability(self) -> float:
        resolved = self.steady_admitted + self.steady_blocked
        return self.steady_blocked / resolved if resolved else 0.0

    def wait_percentiles(self) -> dict[str, float]:
        return {
            "p50": percentile(self.waits, 50),
            "p95": percentile(self.waits, 95),
            "p99": percentile(self.waits, 99),
        }

    def steady_wait_percentiles(self) -> dict[str, float]:
        return {
            "p50": percentile(self.steady_waits, 50),
            "p95": percentile(self.steady_waits, 95),
            "p99": percentile(self.steady_waits, 99),
        }

    def mean_utilization(self, skip: int = 0) -> float:
        trace = [s.utilization for s in self.samples[skip:]]
        return sum(trace) / len(trace) if trace else 0.0

    def peak_queue_depth(self) -> int:
        return max((s.queue_depth for s in self.samples), default=0)

    def summary(self) -> dict:
        """One JSON-able report (CLI, bench and docs all render this)."""
        waits = self.wait_percentiles()
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "departed": self.departed,
            "dropped": self.dropped,
            "drops_by_reason": dict(sorted(self.drops.items())),
            "rejections_by_phase": dict(
                sorted(self.rejections_by_phase.items())
            ),
            "rejections_by_code": dict(
                sorted(self.rejections_by_code.items())
            ),
            "queued": self.queued,
            "retries": self.retries,
            "probes_short_circuited": self.probes_short_circuited,
            "phase_latency": self.phase_latency_summary(),
            "blocking_probability": self.blocking_probability,
            "admission_wait": {
                key: (None if math.isnan(value) else value)
                for key, value in waits.items()
            },
            "steady_state": {
                "warmup": self.warmup,
                "admitted": self.steady_admitted,
                "blocked": self.steady_blocked,
                "blocking_probability": self.steady_blocking_probability,
                "admission_wait": {
                    key: (None if math.isnan(value) else value)
                    for key, value in self.steady_wait_percentiles().items()
                },
            },
            "per_class": {
                name: {
                    "offered": stats.offered,
                    "admitted": stats.admitted,
                    "dropped": stats.dropped,
                    "admission_ratio": stats.admission_ratio,
                    "wait_p95": (
                        None if not stats.waits
                        else percentile(stats.waits, 95)
                    ),
                }
                for name, stats in sorted(self.per_class.items())
            },
            "mean_utilization": self.mean_utilization(),
            "peak_queue_depth": self.peak_queue_depth(),
            "faults": {
                "injected": self.faults_injected,
                "recovered": self.recovered,
                "lost": self.lost,
            },
            "overload": {
                "deadline_expired": self.drops.get("deadline_expired", 0),
                "shed_watermark": self.drops.get("shed_watermark", 0),
                "retry_budget_exhausted": self.drops.get(
                    "retry_budget_exhausted", 0
                ),
                "breaker_open": self.rejections_by_code.get(
                    "breaker_open", 0
                ),
                "watermark_transitions": self.watermark_transitions,
                "brownout_transitions": self.brownout_transitions,
                "max_brownout_level": self.max_brownout_level,
                "breaker_transitions": self.breaker_transitions,
            },
            "resilience": {
                "repairs_completed": self.repairs_completed,
                "quarantines": self.quarantines,
                "recovery_retries": self.recovery_retries,
                "lost_recovered": self.lost_recovered,
                "availability": self.availability,
                "mttr": (None if math.isnan(self.mttr) else self.mttr),
                "recovery_latency": {
                    key: (None if math.isnan(value) else value)
                    for key, value in {
                        "p50": percentile(self.recovery_latencies, 50),
                        "p95": percentile(self.recovery_latencies, 95),
                    }.items()
                },
            },
        }
