"""repro.sim — discrete-event admission service simulation.

The paper's motivation is that "at design-time, it is unknown when,
and what combinations of applications are requested" — this package
turns that sentence into continuous time.  It layers a seeded
discrete-event kernel, stochastic traffic models, a QoS-queueing
admission service, SLA metrics and a deterministic trace
record/replay facility on top of the transactional Kairos core:

* :mod:`repro.sim.events` — heap-ordered event kernel with
  deterministic tie-breaking,
* :mod:`repro.sim.traffic` — Poisson/MMPP arrivals, exponential and
  lognormal holding times, per-class generator pools,
* :mod:`repro.sim.service` — the admission service wrapping
  :class:`~repro.manager.kairos.Kairos` with pluggable queue policies
  (reject, bounded FIFO with timeout, priority classes,
  retry-with-backoff) and departure-driven backfill, plus the
  top-level :func:`run_simulation` / recipe drivers,
* :mod:`repro.sim.metrics` — blocking probability, admission wait
  percentiles, per-class ratios, sim-time utilization series,
* :mod:`repro.sim.trace` — JSONL decision traces, bit-identical
  replay, and trace diffing.

Resilience mode (:class:`~repro.resilience.ResilienceConfig` on
:func:`run_simulation` or the ``"resilience"`` recipe key) adds
transient-fault repair events, the health registry's quarantine
states, and requeue-with-backoff recovery — see ``docs/resilience.md``.
Overload mode (:class:`~repro.overload.OverloadConfig` or the
``"overload"`` recipe key) adds deadline budgets, watermark load
shedding, a retry token budget and brownout degradation — see
``docs/overload.md``.

See ``docs/simulation.md`` for the full semantics.
"""

from repro.sim.events import Event, EventKernel, EventKind, pop_random
from repro.sim.metrics import ClassStats, ServiceMetrics, SimSample, percentile
from repro.sim.service import (
    POLICIES,
    AdmissionRequest,
    AdmissionService,
    FifoPolicy,
    PriorityPolicy,
    QueuePolicy,
    RejectPolicy,
    RetryPolicy,
    SimulationConfig,
    SimulationResult,
    build_recipe,
    make_policy,
    replay_trace,
    run_recipe,
    run_simulation,
    scheduled_faults,
)
from repro.sim.trace import (
    TraceFormatError,
    TraceRecorder,
    diff_traces,
    read_trace,
    trace_digest,
    write_trace,
)
from repro.sim.traffic import (
    TRAFFIC_SHAPES,
    ExponentialHolding,
    LognormalHolding,
    MMPPProcess,
    PoissonProcess,
    TrafficClass,
    default_traffic_classes,
    diurnal_mmpp_classes,
    flash_crowd_classes,
    hot_spot_classes,
    make_traffic_classes,
    traffic_pool,
)

__all__ = [
    "AdmissionRequest",
    "AdmissionService",
    "ClassStats",
    "Event",
    "EventKernel",
    "EventKind",
    "ExponentialHolding",
    "FifoPolicy",
    "LognormalHolding",
    "MMPPProcess",
    "POLICIES",
    "PoissonProcess",
    "PriorityPolicy",
    "QueuePolicy",
    "RejectPolicy",
    "RetryPolicy",
    "ServiceMetrics",
    "SimSample",
    "SimulationConfig",
    "SimulationResult",
    "TRAFFIC_SHAPES",
    "TraceFormatError",
    "TraceRecorder",
    "TrafficClass",
    "build_recipe",
    "default_traffic_classes",
    "diff_traces",
    "diurnal_mmpp_classes",
    "flash_crowd_classes",
    "hot_spot_classes",
    "make_policy",
    "make_traffic_classes",
    "percentile",
    "pop_random",
    "read_trace",
    "replay_trace",
    "run_recipe",
    "run_simulation",
    "scheduled_faults",
    "trace_digest",
    "traffic_pool",
    "write_trace",
]
