"""The admission service: Kairos behind QoS queue policies, in sim-time.

An :class:`AdmissionService` receives arrival events from the kernel
and runs the four-phase Kairos pipeline for each request.  What
happens to a request the platform cannot admit right now is the
*queue policy*:

``reject``
    drop immediately (pure Erlang-B loss system),
``fifo``
    bounded FIFO queue with a residence timeout and head-of-line
    backfill on every departure,
``priority``
    bounded priority queue (higher QoS class first) with greedy
    backfill — lower-priority requests can be overtaken but never
    starve the scan,
``retry``
    no queue: the request re-arrives after an exponential backoff,
    up to a retry budget (the "user retrying later" the legacy
    workload docstring used to promise).

Faults are ordinary events: the scheduled :class:`~repro.arch.faults.Fault`
is injected into the live state and :meth:`Kairos.recover` re-places
every stranded application automatically, after which the queue
policy gets a backfill opportunity (recovery frees capacity exactly
like a departure).  With a :class:`~repro.resilience.ResilienceConfig`
the service runs in *resilience mode*: transient faults schedule
:data:`~repro.sim.events.EventKind.REPAIR` events that heal the
resource after its MTTR, a :class:`~repro.resilience.HealthRegistry`
tracks per-resource health (quarantine trace events, soft avoidance
penalties on the mapping cost), and the
:class:`~repro.resilience.RecoveryEngine` requeues applications that
recovery cannot re-place immediately, retrying them with exponential
backoff as capacity returns.  Without the config, the event stream is
byte-identical to the pre-resilience service — recorded traces replay
unchanged.

:func:`run_simulation` wires kernel + traffic + service together;
:func:`run_recipe` / :func:`replay_trace` drive the same machinery
from a JSON recipe so a recorded run can be reproduced bit-identically
(see ``docs/simulation.md``).
"""

from __future__ import annotations

import bisect
import itertools
import time as _time
from collections import deque
from dataclasses import dataclass, field
from random import Random

from repro.api.pipeline import PhasePipeline
from repro.apps.taskgraph import Application
from repro.arch.builders import (
    crisp,
    fat_tree,
    heterogeneous_mesh,
    mesh,
    torus,
)
from repro.arch.faults import (
    Fault,
    apply_fault,
    apply_repair,
    random_campaign,
    random_element_campaign,
    storm_campaign,
)
from repro.arch.state import AllocationState
from repro.arch.topology import Platform
from repro.core.cost import BOTH, CostWeights
from repro.manager.kairos import Kairos
from repro.obs import DISABLED, Observability
from repro.overload import (
    BrownoutController,
    OverloadConfig,
    RetryBudget,
    WatermarkController,
)
from repro.reasons import ReasonCode
from repro.resilience import HealthRegistry, HealthState, ResilienceConfig
from repro.sim.events import Event, EventKernel, EventKind
from repro.sim.metrics import ServiceMetrics, SimSample
from repro.sim.trace import TraceRecorder, diff_traces, read_trace, write_trace
from repro.sim.traffic import TrafficClass, make_traffic_classes


@dataclass(eq=False)
class AdmissionRequest:
    """One admission request travelling through the service."""

    request_id: int
    app: Application
    app_id: str
    class_name: str
    priority: int
    arrival_time: float
    cls: TrafficClass | None = None
    #: explicit holding time; when None the class distribution is sampled
    holding: float | None = None
    attempts: int = 0
    enqueued_at: float | None = None
    timeout_event: Event | None = None
    #: absolute sim-time admission deadline (overload deadline budgets;
    #: None without an active DeadlinePolicy) and the queued expiry
    #: event enforcing it
    deadline: float | None = None
    deadline_event: Event | None = None
    #: capacity epoch at the last failed probe plus the phase/reason it
    #: failed with — when the epoch is unchanged, a re-probe is
    #: provably identical, so the service replays the outcome without
    #: running the pipeline (see :meth:`AdmissionService.try_admit`)
    last_failed_epoch: int | None = None
    last_failed_phase: str | None = None
    last_failed_code: "ReasonCode | None" = None


# -- queue policies ---------------------------------------------------------


class QueuePolicy:
    """Base policy: reject-on-failure, no queue, no backfill."""

    name = "reject"

    def on_rejected(
        self, service: "AdmissionService", request: AdmissionRequest,
        now: float,
    ) -> None:
        service.drop(request, ReasonCode.REJECTED, now)

    def on_capacity_freed(
        self, service: "AdmissionService", now: float
    ) -> None:
        """Backfill hook, called after every departure and recovery."""

    def depth(self) -> int:
        return 0

    def flush(self, service: "AdmissionService", now: float) -> None:
        """Resolve requests still waiting when the simulation ends."""

    def describe(self) -> dict:
        return {"name": self.name, "params": {}}


class RejectPolicy(QueuePolicy):
    """Explicit name for the base reject-on-full behaviour."""


class _BoundedQueuePolicy(QueuePolicy):
    """Shared capacity/timeout plumbing of the FIFO and priority queues."""

    def __init__(self, capacity: int = 16, timeout: float | None = 30.0):
        if capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("queue timeout must be positive (or None)")
        self.capacity = capacity
        self.timeout = timeout

    def describe(self) -> dict:
        return {
            "name": self.name,
            "params": {"capacity": self.capacity, "timeout": self.timeout},
        }

    def _admit_to_queue(
        self, service: "AdmissionService", request: AdmissionRequest,
        now: float,
    ) -> bool:
        if service.overload_shed(request, self.depth(), self.capacity, now):
            return False
        if self.depth() >= self.capacity:
            service.drop(request, ReasonCode.QUEUE_FULL, now)
            return False
        request.enqueued_at = now
        if self.timeout is not None:
            request.timeout_event = service.kernel.schedule(
                self.timeout,
                EventKind.TIMEOUT,
                lambda kernel, event: self._expire(service, request, kernel.now),
            )
        if request.deadline is not None:
            # the deadline-budget expiry: a distinct traced outcome
            # (deadline_expired), independent of the residence timeout
            # — whichever fires first resolves the request, the other
            # no-ops via _remove
            request.deadline_event = service.kernel.schedule_at(
                request.deadline,
                EventKind.TIMEOUT,
                lambda kernel, event: self._expire_deadline(
                    service, request, kernel.now
                ),
            )
        service.note_queued(request, now, self.depth() + 1)
        return True

    def _dequeue(self, request: AdmissionRequest) -> None:
        if request.timeout_event is not None:
            request.timeout_event.cancel()
            request.timeout_event = None
        if request.deadline_event is not None:
            request.deadline_event.cancel()
            request.deadline_event = None
        request.enqueued_at = None

    def _expire(
        self, service: "AdmissionService", request: AdmissionRequest,
        now: float,
    ) -> None:
        if self._remove(request):
            self._dequeue(request)
            service.drop(request, ReasonCode.TIMEOUT, now)
            self._after_expire(service, now)

    def _expire_deadline(
        self, service: "AdmissionService", request: AdmissionRequest,
        now: float,
    ) -> None:
        if self._remove(request):
            self._dequeue(request)
            service.drop_expired(request, now)
            self._after_expire(service, now)

    def _after_expire(
        self, service: "AdmissionService", now: float
    ) -> None:
        """Hook after a timeout removal; no capacity was freed, so the
        default is to do nothing (greedy policies probed everyone at
        the last capacity event already)."""

    # subclasses provide storage
    def _remove(self, request: AdmissionRequest) -> bool:
        raise NotImplementedError

    def _waiting(self) -> list[AdmissionRequest]:
        raise NotImplementedError

    def flush(self, service: "AdmissionService", now: float) -> None:
        for request in self._waiting():
            self._remove(request)
            self._dequeue(request)
            service.drop(request, ReasonCode.DRAINED, now)


class FifoPolicy(_BoundedQueuePolicy):
    """Bounded FIFO with timeout; head-of-line backfill on departures.

    Work-conserving on arrival: like every policy, a newcomer that
    fits is admitted immediately even while earlier (larger) requests
    queue — the queue orders only the requests the platform rejected.
    """

    name = "fifo"

    def __init__(self, capacity: int = 16, timeout: float | None = 30.0):
        super().__init__(capacity, timeout)
        self.queue: deque[AdmissionRequest] = deque()

    def on_rejected(self, service, request, now):
        if self._admit_to_queue(service, request, now):
            self.queue.append(request)

    def on_capacity_freed(self, service, now):
        # strict FIFO: stop at the first request that still does not
        # fit (head-of-line blocking is part of the policy's contract)
        window = getattr(service, "batch_plan", 1)
        if window > 1 and len(self.queue) > 1:
            self._drain_batched(service, now, window)
            return
        while self.queue:
            head = self.queue[0]
            if not service.try_admit(head, now):
                break
            self.queue.popleft()
            self._dequeue(head)

    def _drain_batched(self, service, now, window):
        # decision-equivalent to the sequential loop (see
        # AdmissionService.try_admit_batch); one pipeline transaction
        # per window instead of one per request
        while self.queue:
            heads = list(itertools.islice(iter(self.queue), window))
            admitted = service.try_admit_batch(heads, now)
            for _ in range(admitted):
                head = self.queue.popleft()
                self._dequeue(head)
            if admitted < len(heads):
                break

    def _after_expire(self, service, now):
        # a timed-out head was the only thing blocking its followers:
        # re-probe, or requests that already fit would sit until their
        # own timeouts
        self.on_capacity_freed(service, now)

    def depth(self):
        return len(self.queue)

    def _remove(self, request):
        try:
            self.queue.remove(request)
        except ValueError:
            return False
        return True

    def _waiting(self):
        return list(self.queue)


class PriorityPolicy(_BoundedQueuePolicy):
    """Bounded priority queue: higher QoS priority first, FIFO within a
    class; greedy backfill tries *every* waiting request in order, so a
    small low-priority app can slip into a gap a large high-priority
    app cannot use."""

    name = "priority"

    def __init__(self, capacity: int = 16, timeout: float | None = 30.0):
        super().__init__(capacity, timeout)
        self.queue: list[AdmissionRequest] = []

    @staticmethod
    def _key(request: AdmissionRequest) -> tuple[int, int]:
        return (-request.priority, request.request_id)

    def on_rejected(self, service, request, now):
        if self._admit_to_queue(service, request, now):
            bisect.insort(self.queue, request, key=self._key)

    def on_capacity_freed(self, service, now):
        admitted = []
        for request in list(self.queue):
            if service.try_admit(request, now):
                admitted.append(request)
        for request in admitted:
            self.queue.remove(request)
            self._dequeue(request)

    def depth(self):
        return len(self.queue)

    def _remove(self, request):
        try:
            self.queue.remove(request)
        except ValueError:
            return False
        return True

    def _waiting(self):
        return list(self.queue)


class RetryPolicy(QueuePolicy):
    """Retry with exponential backoff: the rejected request re-arrives
    ``base_delay * backoff**(attempts-1)`` later, up to ``max_attempts``
    allocation attempts in total."""

    name = "retry"

    def __init__(
        self,
        max_attempts: int = 4,
        base_delay: float = 2.0,
        backoff: float = 2.0,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if base_delay <= 0 or backoff < 1.0:
            raise ValueError("need base_delay > 0 and backoff >= 1")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.backoff = backoff
        self.waiting: set[AdmissionRequest] = set()

    def on_rejected(self, service, request, now):
        if request.attempts >= self.max_attempts:
            service.drop(request, ReasonCode.RETRIES_EXHAUSTED, now)
            return
        delay = self.base_delay * self.backoff ** (request.attempts - 1)
        if request.deadline is not None and now + delay > request.deadline:
            # the retry could only re-arrive past the deadline: skip
            # the doomed probe entirely instead of burning an event
            service.drop_expired(request, now)
            return
        if not service.grant_retry(request, now):
            return  # retry budget exhausted; the service dropped it
        self.waiting.add(request)
        service.kernel.schedule(
            delay,
            EventKind.RETRY,
            lambda kernel, event: self._fire(service, request, kernel.now),
        )
        service.note_retry_scheduled(request, now, delay)

    def _fire(self, service, request, now):
        if request not in self.waiting:  # resolved by flush meanwhile
            return
        self.waiting.discard(request)
        service.reoffer(request, now)

    def depth(self):
        return len(self.waiting)

    def flush(self, service, now):
        for request in sorted(self.waiting, key=lambda r: r.request_id):
            service.drop(request, ReasonCode.DRAINED, now)
        self.waiting.clear()

    def describe(self):
        return {
            "name": self.name,
            "params": {
                "max_attempts": self.max_attempts,
                "base_delay": self.base_delay,
                "backoff": self.backoff,
            },
        }


#: policy registry used by the CLI, recipes and the benchmark runner
POLICIES: dict[str, type[QueuePolicy]] = {
    "reject": RejectPolicy,
    "fifo": FifoPolicy,
    "priority": PriorityPolicy,
    "retry": RetryPolicy,
}


def make_policy(name: str, params: dict | None = None) -> QueuePolicy:
    if name not in POLICIES:
        raise ValueError(
            f"unknown policy {name!r}; choose from {sorted(POLICIES)}"
        )
    return POLICIES[name](**(params or {}))


# -- the service ------------------------------------------------------------


class AdmissionService:
    """Kairos behind a queue policy, driven by kernel events.

    Admission runs through the :class:`repro.api.AdmissionController`
    façade (``manager.controller``): every attempt yields a structured
    :class:`~repro.api.Decision` carrying the failing phase and its
    :class:`~repro.reasons.ReasonCode` — no exception handling on the
    hot path.  Decisions, traces and metrics are bit-identical to the
    pre-façade implementation.
    """

    def __init__(
        self,
        manager: Kairos,
        policy: QueuePolicy,
        kernel: EventKernel,
        metrics: ServiceMetrics | None = None,
        trace: TraceRecorder | None = None,
        resilience: ResilienceConfig | None = None,
        batch_plan: int = 1,
        overload: OverloadConfig | None = None,
    ) -> None:
        if batch_plan < 1:
            raise ValueError("batch_plan must be at least 1")
        self.manager = manager
        self.controller = manager.controller
        #: queue-drain window for :meth:`try_admit_batch`; 1 keeps the
        #: classic one-probe-per-request drain (policies consult this)
        self.batch_plan = batch_plan
        self.policy = policy
        self.kernel = kernel
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.trace = trace if trace is not None else TraceRecorder()
        #: observability inherited from the manager (DISABLED unless the
        #: run opted in).  The ``service.*`` counters mirror the headline
        #: ServiceMetrics accounting onto the registry so one snapshot
        #: covers the whole stack; with the NullRegistry each increment
        #: is a single untracked list add.
        self.obs: Observability = getattr(manager, "obs", None) or DISABLED
        registry = self.obs.registry
        self._c_offered = registry.counter("service.offered")
        self._c_admitted = registry.counter("service.admitted")
        self._c_dropped = registry.counter("service.dropped")
        self._c_departed = registry.counter("service.departed")
        self._c_retries = registry.counter("service.retries")
        self._c_queued = registry.counter("service.queued")
        self._c_short_circuits = registry.counter(
            "service.probes_short_circuited"
        )
        self._c_faults = registry.counter("service.faults_injected")
        self._c_repairs = registry.counter("service.repairs_completed")
        #: resilience mode: transient-fault repairs, the health
        #: registry, and engine-driven recovery with a requeue.  None
        #: (legacy mode) preserves the pre-resilience event stream
        #: byte-exactly — recorded traces replay unchanged.
        self.resilience = resilience
        self.health = manager.health
        self._engine = None
        if resilience is not None:
            self._engine = manager.controller.recovery_engine(
                resilience.recovery
            )
            #: (kind, target) -> count of unrepaired transient faults;
            #: an element repairs only when its last outstanding fault
            #: is fixed, and never while permanently damaged
            self._outstanding: dict[tuple, int] = {}
            self._permanent: set[tuple] = set()
            #: (kind, target) -> sim-time the current down window began
            self._down_since: dict[tuple, float] = {}
        #: overload control (repro.overload): deadline budgets,
        #: watermark shedding, a retry budget and the brownout
        #: controller.  None (the default) is byte-identical to the
        #: pre-overload service — no extra trace records, RNG draws or
        #: epoch movement, so legacy traces replay unchanged.
        self.overload = overload
        self._deadline = None
        self._watermark = None
        self._retry_budget = None
        self._brownout = None
        if overload is not None:
            self._deadline = overload.deadline
            if overload.watermark is not None:
                self._watermark = WatermarkController(overload.watermark)
            if overload.retry_budget is not None:
                self._retry_budget = RetryBudget(overload.retry_budget)
            if overload.brownout is not None:
                # a cluster manager degrades every shard in lockstep;
                # an unsharded manager is its own single target
                targets = [
                    shard.manager
                    for shard in getattr(manager, "shards", ())
                ] or [manager]
                self._brownout = BrownoutController(
                    overload.brownout, targets
                )
            self._c_deadline_expired = registry.counter(
                "overload.deadline_expired"
            )
            self._c_shed = registry.counter("overload.shed")
            self._c_retry_denied = registry.counter("overload.retry_denied")
            self._c_watermark = registry.counter(
                "overload.watermark_transitions"
            )
            self._c_brownout = registry.counter(
                "overload.brownout_transitions"
            )

    # -- request lifecycle -------------------------------------------------

    def offer(self, request: AdmissionRequest, now: float) -> bool:
        """First-time arrival: try to admit, else consult the policy."""
        if self._deadline is not None and request.deadline is None:
            request.deadline = now + self._deadline.budget_for(
                request.class_name
            )
        self.metrics.on_offered(request.class_name)
        self._c_offered.inc()
        self.trace.record(
            now, "arrival",
            id=request.app_id, cls=request.class_name, app=request.app.name,
        )
        if self.try_admit(request, now):
            return True
        self.policy.on_rejected(self, request, now)
        return False

    def reoffer(self, request: AdmissionRequest, now: float) -> bool:
        """A retry re-arrival (not counted as newly offered)."""
        self.metrics.retries += 1
        self._c_retries.inc()
        self.trace.record(now, "retry", id=request.app_id)
        if request.deadline is not None and now > request.deadline:
            # belt-and-braces for custom policies: the stock retry
            # policy never schedules a retry past the deadline
            self.drop_expired(request, now)
            return False
        if self.try_admit(request, now):
            return True
        self.policy.on_rejected(self, request, now)
        return False

    def try_admit(self, request: AdmissionRequest, now: float) -> bool:
        """One allocation attempt; schedules the departure on success.

        Never recurses into the policy — backfill hooks call this
        directly so a failed backfill probe leaves the request where
        it is.

        Epoch short-circuit: when the state's capacity epoch is
        unchanged since this request's last failed probe, the state is
        bit-identical and the deterministic pipeline would fail in the
        same phase for the same reason — the recorded outcome is
        replayed in O(1).  This works with the manager's fast path
        disabled too (it is the queue-policy-level half of the fast
        path: the FIFO timeout re-probe and the priority policy's
        greedy scan hit it constantly).  Attempt accounting and the
        per-phase rejection counters advance exactly as if the
        pipeline had run, so decisions, traces and metrics are
        unchanged.
        """
        if request.holding is None and request.cls is None:
            # checked before allocate: admitting an app we could never
            # schedule a departure for would leak it into the platform
            raise ValueError(
                f"request {request.app_id} has neither a holding time nor "
                "a traffic class to sample one from"
            )
        request.attempts += 1
        epoch = self.manager.state.epoch
        if request.last_failed_epoch == epoch:
            self.metrics.probes_short_circuited += 1
            self._c_short_circuits.inc()
            self.metrics.on_phase_rejection(
                request.last_failed_phase, request.last_failed_code
            )
            return False
        decision = self.controller.admit(request.app, request.app_id)
        if not decision.admitted:
            request.last_failed_epoch = epoch
            request.last_failed_phase = decision.phase.value
            request.last_failed_code = decision.code
            self.metrics.on_phase_rejection(decision.phase.value, decision.code)
            self.metrics.on_attempt_timings(decision.timings)
            return False
        self._note_admitted(request, decision.layout, now)
        return True

    def _note_admitted(self, request: AdmissionRequest, layout, now: float
                       ) -> None:
        """Shared success tail of a probe: metrics, departure, trace."""
        self.metrics.on_attempt_timings(layout.timings)
        wait = now - request.arrival_time
        self.metrics.on_admitted(request.class_name, wait, now)
        self._c_admitted.inc()
        if self._engine is not None:
            # the recovery engine ranks requeued apps by QoS priority;
            # it learns each app's class here, at admission
            self._engine.note_priority(request.app_id, request.priority)
        if request.holding is not None:
            holding = request.holding
        else:
            holding = request.cls.holding.sample(self.kernel.rng)
        self.kernel.schedule(
            holding, EventKind.DEPARTURE, self._departure, app_id=request.app_id
        )
        self.trace.record(
            now, "admit",
            id=request.app_id, wait=wait, hold=holding,
            attempts=request.attempts,
        )

    def try_admit_batch(
        self, requests: list[AdmissionRequest], now: float
    ) -> int:
        """Probe a queue-front window through ``plan_batch`` and commit
        the admissible prefix; returns how many were admitted.

        Decision-equivalent to calling :meth:`try_admit` on each
        request in order and stopping at the first failure — same
        decisions, metrics and trace records (asserted by
        ``tests/test_batch_plan.py``) — but the pipeline runs once per
        request inside one planning transaction, keeping the binder
        scratch pools and the gate's demand cache warm across the
        window.  The equivalence argument:

        * only the *head* can short-circuit — committing a predecessor
          advances the epoch past any follower's recorded failure, so
          the sequential loop would never short-circuit a non-head
          request either;
        * each plan is stamped with the in-transaction epoch its
          committed predecessors produce, which is exactly the epoch a
          sequential probe would observe, so failure memos recorded
          from a batch replay identically afterwards;
        * plans after the first failure are discarded uncommitted —
          plans hold nothing, and the sequential loop never probed
          those requests.
        """
        head = requests[0]
        if head.holding is None and head.cls is None:
            raise ValueError(
                f"request {head.app_id} has neither a holding time nor "
                "a traffic class to sample one from"
            )
        head.attempts += 1
        epoch = self.manager.state.epoch
        if head.last_failed_epoch == epoch:
            self.metrics.probes_short_circuited += 1
            self._c_short_circuits.inc()
            self.metrics.on_phase_rejection(
                head.last_failed_phase, head.last_failed_code
            )
            return 0
        plans = self.controller.plan_batch(
            [request.app for request in requests],
            [request.app_id for request in requests],
        )
        admitted = 0
        for index, (request, plan) in enumerate(zip(requests, plans)):
            if index > 0:
                if request.holding is None and request.cls is None:
                    raise ValueError(
                        f"request {request.app_id} has neither a holding "
                        "time nor a traffic class to sample one from"
                    )
                request.attempts += 1
            decision = self.controller.commit(plan)
            if not decision.admitted:
                request.last_failed_epoch = plan.epoch
                request.last_failed_phase = decision.phase.value
                request.last_failed_code = decision.code
                self.metrics.on_phase_rejection(
                    decision.phase.value, decision.code
                )
                self.metrics.on_attempt_timings(decision.timings)
                return admitted
            self._note_admitted(request, decision.layout, now)
            admitted += 1
        return admitted

    def _departure(self, kernel: EventKernel, event: Event) -> None:
        app_id = event.payload["app_id"]
        if app_id not in self.manager.admitted:
            # lost to a fault before its natural departure.  In
            # resilience mode this event doubles as the requeue
            # deadline: an application whose service time already
            # elapsed must not be revived, so a still-pending entry
            # expires here instead of silently lingering.
            if self._engine is not None:
                entry = self._engine.expire(app_id)
                if entry is not None:
                    self.metrics.lost += 1
                    self.trace.record(
                        kernel.now, "recovery_lost",
                        id=app_id, reason="recovery_expired",
                    )
            return
        self.manager.release(app_id)
        self.metrics.departed += 1
        self._c_departed.inc()
        self.trace.record(kernel.now, "departure", id=app_id)
        if self._engine is not None:
            self._engine.note_departed(app_id)
            # freed capacity first goes to apps a fault displaced —
            # they were admitted before anything still queued
            self._drain_requeue(kernel.now)
        self.policy.on_capacity_freed(self, kernel.now)

    # -- policy callbacks --------------------------------------------------

    def drop(
        self, request: AdmissionRequest, reason: str, now: float
    ) -> None:
        self.metrics.on_dropped(request.class_name, reason, now)
        self._c_dropped.inc()
        self.trace.record(now, "drop", id=request.app_id, reason=reason)

    def note_queued(
        self, request: AdmissionRequest, now: float, depth: int
    ) -> None:
        self.metrics.queued += 1
        self._c_queued.inc()
        self.trace.record(now, "queued", id=request.app_id, depth=depth)

    def note_retry_scheduled(
        self, request: AdmissionRequest, now: float, delay: float
    ) -> None:
        self.trace.record(
            now, "retry_scheduled", id=request.app_id, delay=delay
        )

    # -- overload hooks ----------------------------------------------------

    def overload_shed(
        self, request: AdmissionRequest, depth: int, capacity: int,
        now: float,
    ) -> bool:
        """Watermark backpressure at queue-admission time.

        Updates the hysteresis mode from the pre-admission occupancy,
        traces mode transitions, and — while shedding — drops
        unprotected-priority arrivals with ``shed_watermark``.
        Returns True when the request was shed (caller stops).
        """
        controller = self._watermark
        if controller is None:
            return False
        changed = controller.observe(depth, capacity)
        if changed is not None:
            self.metrics.watermark_transitions += 1
            self._c_watermark.inc()
            self.trace.record(
                now, "watermark",
                mode="shedding" if changed else "normal", depth=depth,
            )
        if controller.should_shed(request.priority):
            self.metrics.on_overload_drop(ReasonCode.SHED_WATERMARK)
            self._c_shed.inc()
            self.drop(request, ReasonCode.SHED_WATERMARK, now)
            return True
        return False

    def grant_retry(self, request: AdmissionRequest, now: float) -> bool:
        """Spend one retry-budget token, or drop the request.

        Always grants without a configured budget; on denial the
        request is dropped with ``retry_budget_exhausted`` and the
        caller must not schedule the retry.
        """
        budget = self._retry_budget
        if budget is None or budget.grant(now):
            return True
        self.metrics.on_overload_drop(ReasonCode.RETRY_BUDGET_EXHAUSTED)
        self._c_retry_denied.inc()
        self.drop(request, ReasonCode.RETRY_BUDGET_EXHAUSTED, now)
        return False

    def drop_expired(self, request: AdmissionRequest, now: float) -> None:
        """Resolve a request whose deadline budget ran out."""
        self.metrics.on_overload_drop(ReasonCode.DEADLINE_EXPIRED)
        self._c_deadline_expired.inc()
        self.drop(request, ReasonCode.DEADLINE_EXPIRED, now)

    def overload_state(self) -> dict | None:
        """JSON-able snapshot of every active overload controller."""
        if self.overload is None:
            return None
        state: dict = {}
        if self._watermark is not None:
            state["watermark"] = self._watermark.describe_state()
        if self._retry_budget is not None:
            state["retry_budget"] = self._retry_budget.describe_state()
        if self._brownout is not None:
            state["brownout"] = self._brownout.describe_state()
        breakers = getattr(self.manager, "breakers", None)
        if breakers is not None:
            state["breakers"] = breakers.summary()
        return state

    # -- fault events ------------------------------------------------------

    def inject_fault(self, fault: Fault, now: float) -> None:
        """Apply a scheduled fault and recover stranded applications.

        Recovery uses the manager's remembered application
        specifications; freed capacity (from lost applications) is
        offered to the queue policy exactly like a departure.

        Legacy mode (no resilience config) keeps the pre-resilience
        behaviour — permanent fault, one inline recovery pass in the
        historical alphabetical order — so recorded traces replay
        byte-identically.  Resilience mode adds repair scheduling, the
        health registry and the engine's requeue.
        """
        self._c_faults.inc()
        if self._engine is None:
            self._inject_fault_legacy(fault, now)
        else:
            self._inject_fault_resilient(fault, now)

    def _inject_fault_legacy(self, fault: Fault, now: float) -> None:
        apply_fault(self.manager.state, fault)
        self.metrics.faults_injected += 1
        self.trace.record(
            now, "fault", fkind=fault.kind, target=list(fault.target)
        )
        # order="name" pins the historical alphabetical recovery order:
        # committed traces were recorded under it, and replay certifies
        # bit-identical decisions (bare Kairos.recover() now defaults
        # to the starvation-free "admission" order)
        report = self.manager.recover(order="name")
        self.metrics.recovered += len(report.recovered)
        self.metrics.lost += len(report.lost)
        self.trace.record(
            now, "recovery",
            stranded=list(report.stranded),
            recovered=sorted(report.recovered),
            lost=dict(sorted(report.lost.items())),
        )
        if report.lost or report.recovered:
            self.policy.on_capacity_freed(self, now)

    def _inject_fault_resilient(self, fault: Fault, now: float) -> None:
        self._observe_health(now)
        apply_fault(self.manager.state, fault)
        self.metrics.faults_injected += 1
        key = (fault.kind, fault.target)
        if fault.repair_after is not None:
            self.trace.record(
                now, "fault",
                fkind=fault.kind, target=list(fault.target),
                mttr=fault.repair_after,
            )
            # overlapping transients on one resource: the repair of the
            # *last* outstanding fault heals it, earlier repairs only
            # decrement the count
            self._outstanding[key] = self._outstanding.get(key, 0) + 1
            self._down_since.setdefault(key, now)
            self.kernel.schedule(
                fault.repair_after, EventKind.REPAIR, self._repair,
                fault=fault,
            )
        else:
            self.trace.record(
                now, "fault", fkind=fault.kind, target=list(fault.target)
            )
            self._permanent.add(key)
        if self.health is not None:
            self._note_transitions(self.health.on_fault(fault, now), now)
        self._note_availability(now)
        outcome = self._engine.recovery_pass(now)
        self.metrics.recovered += len(outcome.recovered)
        self.metrics.lost += len(outcome.lost)
        self.trace.record(
            now, "recovery",
            stranded=list(outcome.stranded),
            recovered=sorted(outcome.recovered),
            lost=dict(sorted(outcome.lost.items())),
            deferred=sorted(outcome.deferred),
        )
        for app_id in sorted(outcome.deferred):
            entry = self._engine.pending_entry(app_id)
            if entry is not None and entry.retry_event is None:
                self._schedule_recovery_retry(
                    entry, self._engine.policy.base_delay
                )
        if outcome.lost or outcome.recovered:
            self.policy.on_capacity_freed(self, now)

    def _repair(self, kernel: EventKernel, event: Event) -> None:
        """A transient fault's MTTR elapsed: maybe heal, then drain."""
        fault = event.payload["fault"]
        now = kernel.now
        self._observe_health(now)
        key = (fault.kind, fault.target)
        remaining = self._outstanding.get(key, 0) - 1
        self._outstanding[key] = max(remaining, 0)
        if remaining > 0 or key in self._permanent:
            # still down: an overlapping transient has not been
            # repaired yet, or a permanent fault re-broke the resource
            return
        apply_repair(self.manager.state, fault)
        self.metrics.repairs_completed += 1
        self._c_repairs.inc()
        down_since = self._down_since.pop(key, None)
        if down_since is not None:
            self.metrics.repair_times.append(now - down_since)
        self.trace.record(
            now, "repair", fkind=fault.kind, target=list(fault.target)
        )
        if self.health is not None:
            self._note_transitions(self.health.on_repair(fault, now), now)
        self._note_availability(now)
        self._drain_requeue(now)
        self.policy.on_capacity_freed(self, now)

    def _schedule_recovery_retry(self, entry, delay: float) -> None:
        entry.retry_event = self.kernel.schedule(
            delay, EventKind.RECOVERY_RETRY, self._recovery_retry,
            app_id=entry.app_id,
        )

    def _recovery_retry(self, kernel: EventKernel, event: Event) -> None:
        """A requeued app's backoff elapsed: guaranteed drain wake-up."""
        entry = self._engine.pending_entry(event.payload["app_id"])
        if entry is not None and entry.retry_event is event:
            entry.retry_event = None
        self._drain_requeue(kernel.now)

    def _drain_requeue(self, now: float) -> None:
        """Let the engine retry pending apps; record what it decided."""
        if self._engine is None or not self._engine.pending:
            return
        for result in self._engine.drain(now):
            self.metrics.recovery_retries += 1
            if result.outcome == "recovered":
                self.metrics.lost_recovered += 1
                self.metrics.recovery_latencies.append(result.waited)
                self.trace.record(
                    now, "recovery_retry",
                    id=result.app_id, attempt=result.attempt, ok=True,
                )
                continue
            self.trace.record(
                now, "recovery_retry",
                id=result.app_id, attempt=result.attempt, ok=False,
            )
            if result.outcome == "exhausted":
                self.metrics.lost += 1
                self.trace.record(
                    now, "recovery_lost",
                    id=result.app_id, reason="recovery_retries_exhausted",
                )
            else:  # deferred: make sure a backoff wake-up exists
                entry = self._engine.pending_entry(result.app_id)
                if entry is not None and entry.retry_event is None:
                    self._schedule_recovery_retry(entry, result.delay)

    # -- health observation --------------------------------------------------

    def _observe_health(self, now: float) -> None:
        if self.health is None:
            return
        transitions = self.health.observe(now)
        if transitions:
            # soft penalties changed without a ledger mutation: bump
            # the capacity epoch so gate memos and the probe
            # short-circuit cannot replay outcomes computed against
            # the old cost surface
            self.manager.state.touch()
            self._note_transitions(transitions, now)

    def _note_transitions(self, transitions, now: float) -> None:
        for transition in transitions:
            if transition.state is HealthState.DEAD:
                continue  # the fault record already covers it
            self.metrics.quarantines += 1
            self.trace.record(
                now, "quarantine",
                fkind=transition.kind, target=list(transition.target),
                state=transition.state.value, was=transition.previous.value,
            )

    def _note_availability(self, now: float) -> None:
        state = self.manager.state
        fraction = 1.0 - (
            len(state.failed_elements) / len(state.platform.elements)
        )
        self.metrics.on_availability(now, fraction)

    # -- sampling ----------------------------------------------------------

    def sample(self, now: float) -> SimSample:
        # ticks double as probation clock edges: without them a quiet
        # stretch would leave repaired elements penalized forever
        self._observe_health(now)
        if self._brownout is not None:
            # queue occupancy at the tick is the pressure signal —
            # deterministic in the event stream, so brownout levels
            # replay bit-identically.  Unbounded policies (reject,
            # retry) have no capacity and never brown out.
            capacity = getattr(self.policy, "capacity", 0)
            occupancy = self.policy.depth() / capacity if capacity else 0.0
            for was, level, action in self._brownout.observe(occupancy):
                # levels change the decision function (mapper, search
                # depth): bump the epoch so gate memos and the probe
                # short-circuit cannot replay pre-transition outcomes
                self.manager.state.touch()
                self.metrics.brownout_transitions += 1
                self.metrics.max_brownout_level = max(
                    self.metrics.max_brownout_level, level
                )
                self._c_brownout.inc()
                self.trace.record(
                    now, "brownout", level=level, was=was, action=action
                )
        sample = SimSample(
            time=now,
            utilization=self.manager.utilization(),
            fragmentation=self.manager.external_fragmentation(),
            resident=len(self.manager.admitted),
            queue_depth=self.policy.depth(),
        )
        self.metrics.samples.append(sample)
        self.trace.record(
            now, "sample",
            u=sample.utilization, f=sample.fragmentation,
            r=sample.resident, q=sample.queue_depth,
        )
        return sample


# -- the simulation driver --------------------------------------------------


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of one simulated service run."""

    duration: float = 120.0
    seed: int = 0
    sample_interval: float = 5.0
    #: release everything after the run and verify zero utilization
    drain: bool = True
    #: SLA warmup window (sim-time): requests *resolved* before this
    #: instant are excluded from the steady-state blocking probability
    #: and wait percentiles (the empty-platform fill transient would
    #: otherwise bias them optimistic).  Metrics only — decisions and
    #: traces are unaffected.
    warmup: float = 0.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        if not 0 <= self.warmup < self.duration:
            raise ValueError("warmup must lie in [0, duration)")


@dataclass
class SimulationResult:
    """Everything one run produced."""

    metrics: ServiceMetrics
    trace: list[dict] = field(default_factory=list)
    recipe: dict | None = None
    duration: float = 0.0
    wall_seconds: float = 0.0
    events_processed: int = 0
    post_drain_utilization: float | None = None
    #: the manager's gate/memo counters (zeros when fastpath is off)
    fastpath_stats: dict | None = None
    #: the distance-field engine's counters (zeros when incremental off)
    distfield_stats: dict | None = None
    #: end-of-run overload controller states (None without a config)
    overload_stats: dict | None = None
    #: the run's observability bundle (registry + tracer); DISABLED
    #: when the caller did not opt in, so ``result.observability
    #: .snapshot()`` is always safe to call
    observability: Observability = DISABLED

    @property
    def events_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_processed / self.wall_seconds


def run_simulation(
    platform: Platform,
    classes: tuple[TrafficClass, ...],
    policy: QueuePolicy,
    config: SimulationConfig = SimulationConfig(),
    faults: tuple[tuple[float, Fault], ...] = (),
    weights: CostWeights = BOTH,
    fastpath: bool = True,
    incremental: bool = True,
    resilience: ResilienceConfig | None = None,
    obs: Observability | None = None,
    batch_plan: int = 1,
    overload: OverloadConfig | None = None,
    mapper: str = "kairos",
    mapper_params: dict | None = None,
) -> SimulationResult:
    """Run one continuous-time admission-service simulation.

    Deterministic for a given (platform, classes, policy, config,
    faults): all randomness flows from seeded RNGs — the kernel RNG
    (holding times) and one stream per traffic class (arrivals),
    seeded from ``config.seed`` and the class name.  ``fastpath``
    toggles the manager's admission gate and negative-result memo;
    ``incremental`` toggles its incremental distance-field engine;
    decisions and traces are bit-identical whatever the combination
    (asserted by ``tests/test_fastpath.py`` and
    ``tests/test_distfield.py``) — only the wall-clock changes.
    ``obs`` attaches an :class:`~repro.obs.Observability` bundle
    (metric registry + span tracer); observability is read-only — it
    never feeds a decision, so an instrumented run produces the same
    trace as a bare one (asserted by ``tests/test_obs.py``).
    Stateful arrival processes (MMPP) are reset at start-up so traffic
    classes can be reused across runs; the *policy* must be fresh —
    its queue holds requests bound to one run's kernel, so reuse is
    rejected.  ``mapper`` selects the placement strategy from the
    phase-pipeline registry (``kairos``, ``first_fit``, ``random``,
    ``annealing``, ``optimal``) — unlike fastpath/incremental this
    *does* change decisions, so it is part of the recipe.
    """
    if not classes:
        raise ValueError("need at least one traffic class")
    names = [cls.name for cls in classes]
    if len(set(names)) != len(names):
        raise ValueError("traffic class names must be unique")
    if policy.depth() != 0:
        raise ValueError(
            "policy still holds requests from a previous run; "
            "construct a fresh policy per simulation"
        )
    for cls in classes:
        reset = getattr(cls.arrivals, "reset", None)
        if reset is not None:
            reset()

    kernel = EventKernel(seed=config.seed)
    health = (
        None if resilience is None else HealthRegistry(resilience.health)
    )
    manager = Kairos(
        platform, weights=weights, validation_mode="skip",
        fastpath=fastpath, incremental=incremental, health=health,
        obs=obs,
    )
    if mapper != "kairos" or mapper_params:
        # swap only the mapping phase; binder/router/validator stay at
        # the defaults the "kairos" pipeline above would have used
        manager.pipeline = PhasePipeline(
            binder="regret",
            mapper=mapper,
            mapper_params=mapper_params,
            router=manager.router,
            validator="skip",
        )
    service = AdmissionService(
        manager, policy, kernel,
        metrics=ServiceMetrics(warmup=config.warmup),
        resilience=resilience,
        batch_plan=batch_plan,
        overload=overload,
    )
    cursors = {cls.name: 0 for cls in classes}
    arrival_rngs = {
        cls.name: Random(f"{config.seed}:{cls.name}") for cls in classes
    }
    request_ids = iter(range(1, 1 << 62))

    def arrival(cls: TrafficClass):
        def handle(kernel: EventKernel, event: Event) -> None:
            index = cursors[cls.name]
            cursors[cls.name] = index + 1
            app = cls.pool[index % len(cls.pool)]
            request = AdmissionRequest(
                request_id=next(request_ids),
                app=app,
                app_id=f"{cls.name}#{index}",
                class_name=cls.name,
                priority=cls.priority,
                arrival_time=kernel.now,
                cls=cls,
            )
            service.offer(request, kernel.now)
            kernel.schedule(
                cls.arrivals.next_interarrival(arrival_rngs[cls.name]),
                EventKind.ARRIVAL,
                handle,
            )
        return handle

    for cls in classes:
        kernel.schedule(
            cls.arrivals.next_interarrival(arrival_rngs[cls.name]),
            EventKind.ARRIVAL,
            arrival(cls),
        )

    for when, fault in faults:
        if when > config.duration:
            # a silently skipped fault would make a resilience run test
            # less than the caller specified — match the strictness of
            # FaultCampaign.schedule's own validation
            raise ValueError(
                f"fault at t={when} lies beyond the horizon "
                f"(duration {config.duration})"
            )
        kernel.schedule_at(
            when,
            EventKind.FAULT,
            lambda kernel, event: service.inject_fault(
                event.payload["fault"], kernel.now
            ),
            fault=fault,
        )

    def tick(kernel: EventKernel, event: Event) -> None:
        service.sample(kernel.now)
        if kernel.now + config.sample_interval <= config.duration:
            kernel.schedule(config.sample_interval, EventKind.TICK, tick)

    kernel.schedule(config.sample_interval, EventKind.TICK, tick)

    started = _time.perf_counter()
    kernel.run(until=config.duration)
    wall = _time.perf_counter() - started

    # guarantee at least one end-of-run observation: with
    # sample_interval > duration no TICK ever fired, and reporting
    # "utilization 0.0" for a loaded platform would be silently wrong
    samples = service.metrics.samples
    if not samples or samples[-1].time < config.duration:
        service.sample(kernel.now)

    if resilience is not None:
        service.metrics.finalize_availability(config.duration)

    result = SimulationResult(
        metrics=service.metrics,
        trace=service.trace.records,
        duration=config.duration,
        wall_seconds=wall,
        events_processed=kernel.processed,
        fastpath_stats=manager.fastpath_stats,
        distfield_stats=manager.distfield_stats,
        overload_stats=service.overload_state(),
        observability=manager.obs,
    )
    if config.drain:
        if service._engine is not None:
            # resolve the requeue before the queue policy: every
            # pending app must leave the books for drain-to-zero
            for entry in service._engine.flush():
                service.metrics.lost += 1
                service.trace.record(
                    kernel.now, "recovery_lost",
                    id=entry.app_id, reason="drained",
                )
        policy.flush(service, kernel.now)
        drained = sorted(manager.admitted)
        for app_id in drained:
            manager.release(app_id)
        result.post_drain_utilization = manager.utilization()
        service.trace.record(
            kernel.now, "drain",
            released=len(drained),
            utilization=result.post_drain_utilization,
        )
        assert result.post_drain_utilization == 0.0, (
            "drained platform not empty"
        )
    return result


# -- recipes: reproducible run descriptions --------------------------------


def build_recipe(
    platform: str = "12x12",
    duration: float = 120.0,
    seed: int = 0,
    policy: str = "fifo",
    policy_params: dict | None = None,
    rate_scale: float = 1.0,
    pool_size: int = 8,
    sample_interval: float = 5.0,
    faults: int = 0,
    warmup: float = 0.0,
    fault_mttr: float | None = None,
    fault_links: float = 0.0,
    fault_storm: int = 0,
    resilience: "ResilienceConfig | dict | None" = None,
    batch_plan: int = 1,
    overload: "OverloadConfig | dict | None" = None,
    traffic: str = "default",
    traffic_params: dict | None = None,
    mapper: str = "kairos",
    mapper_params: dict | None = None,
) -> dict:
    """A JSON-able description that :func:`run_recipe` reproduces exactly.

    The recipe is also the trace header written by ``repro sim
    --record``, which is what makes ``--replay`` self-contained.
    ``warmup`` sets the SLA warmup window (metrics only; the decision
    stream is independent of it, so traces recorded without the key
    replay unchanged).

    The resilience knobs (``fault_mttr`` — transient faults repaired
    that much sim-time after injection; ``fault_links`` — fraction of
    the campaign drawn as link faults; ``fault_storm`` — blast radius
    of correlated storms, turning ``faults`` into an epicenter count;
    ``resilience`` — health/recovery policy spec, see
    :class:`~repro.resilience.ResilienceConfig`) are emitted only when
    set, so pre-resilience recipes — and the traces recorded from
    them — stay byte-identical.

    ``traffic`` names a shape from
    :data:`~repro.sim.traffic.TRAFFIC_SHAPES` (``traffic_params`` are
    forwarded to the preset); ``mapper`` selects the placement
    strategy from the pipeline registry.  Both are emitted only when
    they deviate from the defaults, so pre-scenario recipes stay
    byte-identical.
    """
    resolved = make_policy(policy, policy_params)  # validate early
    make_traffic_classes(  # validate shape + params early
        traffic, seed=seed, rate_scale=rate_scale, pool_size=pool_size,
        **(traffic_params or {}),
    )
    if fault_mttr is not None and fault_mttr <= 0:
        raise ValueError("fault_mttr must be positive (or None)")
    if not 0.0 <= fault_links <= 1.0:
        raise ValueError("fault_links must lie in [0, 1]")
    if fault_storm < 0:
        raise ValueError("fault_storm must be non-negative")
    recipe = {
        "platform": platform,
        "duration": duration,
        "seed": seed,
        "sample_interval": sample_interval,
        "warmup": warmup,
        "policy": resolved.describe(),
        "classes": {
            "kind": traffic,
            "seed": seed,
            "rate_scale": rate_scale,
            "pool_size": pool_size,
        },
        "faults": faults,
    }
    if traffic_params:
        recipe["classes"]["params"] = dict(traffic_params)
    if mapper != "kairos" or mapper_params:
        PhasePipeline(mapper=mapper, mapper_params=mapper_params)  # validate
        recipe["mapper"] = mapper
        if mapper_params:
            recipe["mapper_params"] = dict(mapper_params)
    if fault_mttr is not None:
        recipe["fault_mttr"] = fault_mttr
    if fault_links:
        recipe["fault_links"] = fault_links
    if fault_storm:
        recipe["fault_storm"] = fault_storm
    if resilience is not None:
        if not isinstance(resilience, ResilienceConfig):
            resilience = ResilienceConfig.from_spec(resilience)
        recipe["resilience"] = resilience.describe()
    if overload is not None:
        # emitted only when set: pre-overload recipes (and the traces
        # recorded from them) stay byte-identical
        if not isinstance(overload, OverloadConfig):
            overload = OverloadConfig.from_spec(overload)
        recipe["overload"] = overload.describe()
    if batch_plan < 1:
        raise ValueError("batch_plan must be at least 1")
    if batch_plan > 1:
        # emitted only when batched: pre-existing recipes (and the
        # traces recorded from them) stay byte-identical
        recipe["batch_plan"] = batch_plan
    return recipe


#: builders reachable from a ``family:shape`` platform spec
_PLATFORM_FAMILIES = ("mesh", "torus", "hetmesh", "fat_tree")


def _parse_platform_spec(spec: str) -> tuple[str, tuple[int, ...]]:
    """Validate a spec without building it; -> ``(family, dims)``.

    Accepted forms: ``"crisp"``; ``"RxC"`` (legacy, -> mesh);
    ``"mesh:RxC"``; ``"torus:RxC"``; ``"hetmesh:RxC"``;
    ``"fat_tree:N"`` or ``"fat_tree:N:arity"``.  Kept separate from
    :func:`platform_from_spec` so a 64x64 matrix cell can be
    validated at expansion time without paying to build it.
    """
    if spec == "crisp":
        return "crisp", ()
    family, _, shape = spec.partition(":")
    if not shape:
        family, shape = "mesh", spec  # legacy bare "RxC"
    if family not in _PLATFORM_FAMILIES:
        raise ValueError(
            f"platform spec {spec!r}: unknown family {family!r} "
            f"(choose from {', '.join(_PLATFORM_FAMILIES)}, "
            "'crisp', or bare 'RxC')"
        )
    try:
        if family == "fat_tree":
            dims = tuple(int(part) for part in shape.split(":"))
            if len(dims) not in (1, 2):
                raise ValueError
        else:
            dims = tuple(int(part) for part in shape.lower().split("x"))
            if len(dims) != 2:
                raise ValueError
    except ValueError:
        raise ValueError(
            f"platform spec {spec!r}: malformed shape {shape!r}"
        ) from None
    if any(dim < 1 for dim in dims):
        raise ValueError(f"platform spec {spec!r}: dimensions must be >= 1")
    if family == "fat_tree" and dims[0] < 2:
        raise ValueError(f"platform spec {spec!r}: need at least 2 leaves")
    return family, dims


def platform_from_spec(spec: str) -> Platform:
    """Build the platform a spec describes.

    ``"crisp"`` and bare ``"RxC"`` (-> mesh) are the legacy forms;
    ``"mesh:RxC"``, ``"torus:RxC"``, ``"hetmesh:RxC"`` and
    ``"fat_tree:N[:arity]"`` select the other builders (see
    :func:`_parse_platform_spec`).
    """
    family, dims = _parse_platform_spec(spec)
    if family == "crisp":
        return crisp()
    if family == "mesh":
        return mesh(*dims)
    if family == "torus":
        return torus(*dims)
    if family == "hetmesh":
        return heterogeneous_mesh(*dims)
    return fat_tree(*dims)


def scheduled_faults(
    platform: Platform,
    count: int,
    duration: float,
    seed: int,
    mttr: float | None = None,
    link_fraction: float = 0.0,
    storm_radius: int = 0,
) -> tuple[tuple[float, Fault], ...]:
    """A deterministic fault campaign spread evenly over the run.

    Defaults reproduce the legacy scenario exactly — ``count`` random
    permanent element faults.  ``mttr`` makes every fault transient;
    ``link_fraction`` mixes in link faults; ``storm_radius`` switches
    to correlated storms, where ``count`` becomes the number of
    epicenters and the campaign grows to each storm's whole blast
    region (times then spread over the actual fault count).
    """
    if count < 1:
        return ()
    state = AllocationState(platform)
    if storm_radius > 0:
        campaign = storm_campaign(
            state, count, radius=storm_radius, seed=seed + 1,
            repair_after=mttr,
        )
    elif link_fraction > 0:
        campaign = random_campaign(
            state, count, seed=seed + 1, link_fraction=link_fraction,
            repair_after=mttr,
        )
    else:
        campaign = random_element_campaign(
            state, count, seed=seed + 1, repair_after=mttr
        )
    pending = len(campaign.faults)
    times = tuple(
        duration * (index + 1) / (pending + 1) for index in range(pending)
    )
    return campaign.schedule(times)


def run_recipe(
    recipe: dict,
    trace_path=None,
    incremental: bool = True,
    obs: Observability | None = None,
    fastpath: bool = True,
) -> SimulationResult:
    """Execute a recipe; optionally write the JSONL trace (header first).

    ``incremental`` toggles the manager's distance-field engine and
    ``fastpath`` its admission gate/memo; both are deliberately *not*
    part of the recipe — they change wall-clock, never decisions, so a
    trace recorded either way replays both ways.  ``obs`` is excluded
    from the recipe for the same reason: metrics and spans observe the
    run without influencing it.
    """
    platform = platform_from_spec(recipe["platform"])
    classes_spec = recipe["classes"]
    classes = make_traffic_classes(
        classes_spec.get("kind", "default"),
        seed=classes_spec["seed"],
        rate_scale=classes_spec["rate_scale"],
        pool_size=classes_spec["pool_size"],
        **(classes_spec.get("params") or {}),
    )
    policy = make_policy(
        recipe["policy"]["name"], recipe["policy"].get("params") or {}
    )
    config = SimulationConfig(
        duration=recipe["duration"],
        seed=recipe["seed"],
        sample_interval=recipe["sample_interval"],
        warmup=float(recipe.get("warmup", 0.0)),
    )
    faults = scheduled_faults(
        platform, int(recipe.get("faults", 0)),
        config.duration, config.seed,
        mttr=recipe.get("fault_mttr"),
        link_fraction=float(recipe.get("fault_links", 0.0)),
        storm_radius=int(recipe.get("fault_storm", 0)),
    )
    resilience = ResilienceConfig.from_spec(recipe.get("resilience"))
    overload = OverloadConfig.from_spec(recipe.get("overload"))
    result = run_simulation(
        platform, classes, policy, config, faults=faults,
        fastpath=fastpath, incremental=incremental,
        resilience=resilience, obs=obs,
        batch_plan=int(recipe.get("batch_plan", 1)),
        overload=overload,
        mapper=recipe.get("mapper", "kairos"),
        mapper_params=recipe.get("mapper_params"),
    )
    result.recipe = recipe
    if trace_path is not None:
        write_trace(trace_path, result.trace, header=recipe)
    return result


def replay_trace(path) -> tuple[bool, list[str], SimulationResult]:
    """Re-run a recorded trace's recipe and diff the decision streams.

    Returns ``(identical, differences, fresh_result)``; an empty
    difference list certifies bit-identical event ordering and
    admission decisions.
    """
    header, records = read_trace(path)
    if header is None:
        raise ValueError(f"{path}: trace has no recipe header; cannot replay")
    if "shards" in header:
        raise ValueError(
            f"{path}: this is a cluster trace; replay it with "
            "repro.cluster.replay_cluster_trace (repro cluster sim --replay)"
        )
    try:
        result = run_recipe(header)
    except KeyError as exc:
        # a mutated/truncated header is user input, not a library bug:
        # surface a structured error, never a raw stack trace
        raise ValueError(
            f"{path}: trace header is not a valid recipe "
            f"(missing key {exc})"
        ) from exc
    except (TypeError, AttributeError) as exc:
        raise ValueError(
            f"{path}: trace header is not a valid recipe ({exc!r})"
        ) from exc
    differences = diff_traces(records, result.trace)
    return not differences, differences, result
