"""Traffic models: stochastic arrivals, holding times, generator pools.

Arrival processes produce inter-arrival gaps (Poisson, or a
Markov-modulated Poisson process for bursty ON/OFF traffic); holding
times say how long an admitted application stays resident
(exponential, or lognormal for heavy-tailed batch jobs).  A
:class:`TrafficClass` bundles one of each with a QoS priority and a
deterministic pool of generated applications, mirroring the paper's
"in-house developed application generator" datasets.

Every draw takes an explicit :class:`random.Random` so the simulation
stays deterministic for a given seed.

Named **traffic shapes** (:data:`TRAFFIC_SHAPES`,
:func:`make_traffic_classes`) are seeded, recipe-serializable presets
over the same machinery: ``default`` (the canonical three-class mix),
``hot_spot`` (load concentrated in one aggressive class),
``diurnal_mmpp`` (day/night modulation of every class) and
``flash_crowd`` (the overload bench's surge, lifted into the
library).  A recipe's ``classes`` stanza selects one by name — see
:func:`repro.sim.service.build_recipe` — which is what lets the
scenario sweep (:mod:`repro.scenarios`) treat traffic as an axis.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass
from random import Random

from repro.apps.generator import GeneratorConfig, generate
from repro.apps.taskgraph import Application
from repro.arch.elements import ElementType


# -- holding-time distributions --------------------------------------------


@dataclass(frozen=True)
class ExponentialHolding:
    """Memoryless residency: classic teletraffic holding time."""

    mean: float

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ValueError("holding mean must be positive")

    def sample(self, rng: Random) -> float:
        return rng.expovariate(1.0 / self.mean)


@dataclass(frozen=True)
class LognormalHolding:
    """Heavy-tailed residency; ``median`` is exp(mu) of the underlying
    normal, ``sigma`` its standard deviation."""

    median: float
    sigma: float = 0.5

    def __post_init__(self) -> None:
        if self.median <= 0 or self.sigma <= 0:
            raise ValueError("median and sigma must be positive")

    @property
    def mean(self) -> float:
        return self.median * math.exp(self.sigma**2 / 2.0)

    def sample(self, rng: Random) -> float:
        return rng.lognormvariate(math.log(self.median), self.sigma)


# -- arrival processes ------------------------------------------------------


@dataclass(frozen=True)
class PoissonProcess:
    """Stationary Poisson arrivals at ``rate`` per unit sim-time."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("arrival rate must be positive")

    def next_interarrival(self, rng: Random) -> float:
        return rng.expovariate(self.rate)

    def mean_rate(self) -> float:
        return self.rate


class MMPPProcess:
    """Markov-modulated Poisson process over cyclic phases.

    ``phases`` is a sequence of ``(rate, mean_dwell)`` pairs; the
    process spends Exp(mean_dwell)-distributed time in each phase
    emitting Poisson arrivals at that phase's rate, then advances to
    the next phase cyclically (the classic 2-phase instance is bursty
    ON/OFF traffic).  A rate of 0.0 is allowed — a silent phase.

    The object is stateful (current phase + residual dwell), so each
    :class:`TrafficClass` owns its own instance.
    """

    def __init__(self, phases: tuple[tuple[float, float], ...]) -> None:
        if not phases:
            raise ValueError("MMPP needs at least one phase")
        for rate, dwell in phases:
            if rate < 0 or dwell <= 0:
                raise ValueError("phase rates must be >=0, dwells positive")
        if not any(rate > 0 for rate, _ in phases):
            raise ValueError("at least one phase must have a positive rate")
        self.phases = tuple((float(r), float(d)) for r, d in phases)
        self.phase = 0
        self._residual: float | None = None

    def reset(self) -> None:
        """Return to the initial phase with no residual dwell.

        Called by :func:`repro.sim.service.run_simulation` at start-up
        so a :class:`TrafficClass` (and thus its stateful MMPP) can be
        reused across runs without the first run's modulation state
        leaking into the second — required for replay determinism.
        """
        self.phase = 0
        self._residual = None

    def next_interarrival(self, rng: Random) -> float:
        """Gap to the next arrival, advancing phases as dwells expire."""
        elapsed = 0.0
        while True:
            rate, dwell = self.phases[self.phase]
            if self._residual is None:
                self._residual = rng.expovariate(1.0 / dwell)
            gap = rng.expovariate(rate) if rate > 0 else math.inf
            if gap < self._residual:
                self._residual -= gap
                return elapsed + gap
            elapsed += self._residual
            self._residual = None
            self.phase = (self.phase + 1) % len(self.phases)

    def mean_rate(self) -> float:
        """Long-run arrival rate (dwell-weighted phase average)."""
        total_dwell = sum(d for _, d in self.phases)
        return sum(r * d for r, d in self.phases) / total_dwell


# -- traffic classes --------------------------------------------------------


@dataclass(frozen=True)
class TrafficClass:
    """One QoS class: arrivals, holding, priority and its app pool.

    Applications are drawn from ``pool`` round-robin (the service
    tracks the cursor), so the request stream is a deterministic
    function of the arrival process alone.
    """

    name: str
    arrivals: PoissonProcess | MMPPProcess
    holding: ExponentialHolding | LognormalHolding
    pool: tuple[Application, ...]
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.pool:
            raise ValueError(f"traffic class {self.name!r} has an empty pool")

    def offered_load(self) -> float:
        """Erlang offered load: mean arrival rate x mean holding."""
        return self.arrivals.mean_rate() * self.holding.mean


def traffic_pool(
    count: int,
    seed: int,
    *,
    internals_low: int = 1,
    internals_high: int = 4,
    utilization_low: float = 0.25,
    utilization_high: float = 0.6,
) -> tuple[Application, ...]:
    """A deterministic pool of DSP applications for one traffic class.

    Sizes cycle through ``[internals_low, internals_high]`` so the
    packing keeps producing both successes and failures near
    saturation — same recipe as the churn benchmark pool, with the
    size band as a knob.
    """
    if count < 1:
        raise ValueError("pool needs at least one application")
    if internals_low < 0 or internals_low > internals_high:
        raise ValueError("need 0 <= internals_low <= internals_high")
    span = internals_high - internals_low + 1
    pool = []
    for index in range(count):
        config = GeneratorConfig(
            inputs=1,
            internals=internals_low + index % span,
            outputs=1,
            target_kinds=((ElementType.DSP, 1.0),),
            utilization_low=utilization_low,
            utilization_high=utilization_high,
        )
        pool.append(generate(config, seed=seed * 10_000 + index))
    return tuple(pool)


def default_traffic_classes(
    seed: int = 0,
    rate_scale: float = 1.0,
    pool_size: int = 8,
) -> tuple[TrafficClass, ...]:
    """The canonical three-class mix used by the CLI and benchmarks.

    * ``interactive`` — high priority, frequent small apps, short
      exponential residency,
    * ``batch`` — low priority, larger apps, heavy-tailed lognormal
      residency,
    * ``bursty`` — mid priority, ON/OFF MMPP arrivals.

    ``rate_scale`` multiplies every arrival rate, turning the same mix
    from underload into overload without touching the class structure.
    """
    if rate_scale <= 0:
        raise ValueError("rate_scale must be positive")
    return (
        TrafficClass(
            name="interactive",
            arrivals=PoissonProcess(0.9 * rate_scale),
            holding=ExponentialHolding(6.0),
            pool=traffic_pool(
                pool_size, seed * 100 + 1,
                internals_low=1, internals_high=3,
                utilization_low=0.25, utilization_high=0.5,
            ),
            priority=2,
        ),
        TrafficClass(
            name="batch",
            arrivals=PoissonProcess(0.45 * rate_scale),
            holding=LognormalHolding(median=12.0, sigma=0.6),
            pool=traffic_pool(
                pool_size, seed * 100 + 2,
                internals_low=3, internals_high=6,
                utilization_low=0.35, utilization_high=0.65,
            ),
            priority=0,
        ),
        TrafficClass(
            name="bursty",
            arrivals=MMPPProcess(
                ((1.6 * rate_scale, 8.0), (0.05 * rate_scale, 16.0))
            ),
            holding=ExponentialHolding(5.0),
            pool=traffic_pool(
                pool_size, seed * 100 + 3,
                internals_low=2, internals_high=4,
                utilization_low=0.3, utilization_high=0.55,
            ),
            priority=1,
        ),
    )


# -- named traffic shapes ---------------------------------------------------


def hot_spot_classes(
    seed: int = 0,
    rate_scale: float = 1.0,
    pool_size: int = 8,
    hot_share: float = 0.8,
) -> tuple[TrafficClass, ...]:
    """Load concentrated in one aggressive class (the "hot spot").

    A two-class mix with the same total mean arrival rate as the
    default mix (≈1.92 per unit sim-time at ``rate_scale=1``):
    ``hot_share`` of it arrives as the ``hot`` class — mid-size apps,
    long residency, high priority — and the rest as small background
    fill.  Stresses the packing very differently from the balanced
    default mix: the platform saturates on one demand profile instead
    of averaging over three.
    """
    if rate_scale <= 0:
        raise ValueError("rate_scale must be positive")
    if not 0.0 < hot_share < 1.0:
        raise ValueError("hot_share must lie strictly in (0, 1)")
    total = 1.92 * rate_scale
    return (
        TrafficClass(
            name="hot",
            arrivals=PoissonProcess(total * hot_share),
            holding=LognormalHolding(median=10.0, sigma=0.5),
            pool=traffic_pool(
                pool_size, seed * 100 + 11,
                internals_low=3, internals_high=5,
                utilization_low=0.35, utilization_high=0.6,
            ),
            priority=2,
        ),
        TrafficClass(
            name="background",
            arrivals=PoissonProcess(total * (1.0 - hot_share)),
            holding=ExponentialHolding(5.0),
            pool=traffic_pool(
                pool_size, seed * 100 + 12,
                internals_low=1, internals_high=2,
                utilization_low=0.25, utilization_high=0.45,
            ),
            priority=0,
        ),
    )


def diurnal_mmpp_classes(
    seed: int = 0,
    rate_scale: float = 1.0,
    pool_size: int = 8,
    day_dwell: float = 30.0,
    night_dwell: float = 30.0,
    night_fraction: float = 0.1,
) -> tuple[TrafficClass, ...]:
    """Day/night modulation: every class is an MMPP over two phases.

    Each class spends Exp(``day_dwell``) sim-time at its busy rate and
    Exp(``night_dwell``) at ``night_fraction`` of it, cyclically — a
    compressed diurnal cycle.  The busy rates reuse the default mix's
    levels, so at ``night_fraction=1`` this degenerates to (roughly)
    the default mix; at the default 0.1 the service alternates between
    overload and near-idle, exercising queue drains, fill transients
    and the fast path's epoch churn in both directions.
    """
    if rate_scale <= 0:
        raise ValueError("rate_scale must be positive")
    if day_dwell <= 0 or night_dwell <= 0:
        raise ValueError("dwell times must be positive")
    if not 0.0 < night_fraction <= 1.0:
        raise ValueError("night_fraction must lie in (0, 1]")

    def diurnal(rate: float) -> MMPPProcess:
        return MMPPProcess((
            (rate, day_dwell),
            (rate * night_fraction, night_dwell),
        ))

    return (
        TrafficClass(
            name="interactive",
            arrivals=diurnal(0.9 * rate_scale),
            holding=ExponentialHolding(6.0),
            pool=traffic_pool(
                pool_size, seed * 100 + 1,
                internals_low=1, internals_high=3,
                utilization_low=0.25, utilization_high=0.5,
            ),
            priority=2,
        ),
        TrafficClass(
            name="batch",
            arrivals=diurnal(0.45 * rate_scale),
            holding=LognormalHolding(median=12.0, sigma=0.6),
            pool=traffic_pool(
                pool_size, seed * 100 + 2,
                internals_low=3, internals_high=6,
                utilization_low=0.35, utilization_high=0.65,
            ),
            priority=0,
        ),
        TrafficClass(
            name="bursty",
            arrivals=diurnal(1.6 * rate_scale),
            holding=ExponentialHolding(5.0),
            pool=traffic_pool(
                pool_size, seed * 100 + 3,
                internals_low=2, internals_high=4,
                utilization_low=0.3, utilization_high=0.55,
            ),
            priority=1,
        ),
    )


def flash_crowd_classes(
    seed: int = 0,
    rate_scale: float = 1.0,
    pool_size: int = 8,
    surge: float = 4.0,
) -> tuple[TrafficClass, ...]:
    """The overload bench's flash crowd as a named library preset.

    The default three-class mix with every arrival rate multiplied by
    ``surge`` — holding times, pools, priorities and class structure
    untouched, so the *same* population suddenly arrives ``surge``
    times as fast.  This is exactly the ad-hoc ``rate_scale = base *
    load`` construction ``benchmarks/run_overload_bench.py`` used
    before it was lifted here (the bench now calls this preset), which
    keeps its decision streams bit-identical.
    """
    if surge <= 0:
        raise ValueError("surge must be positive")
    return default_traffic_classes(
        seed=seed, rate_scale=rate_scale * surge, pool_size=pool_size
    )


#: shape name -> factory(seed, rate_scale, pool_size, **params);
#: the ``classes`` stanza of a recipe selects one by name.  "default"
#: keeps its historical spelling so legacy recipes (and the traces
#: recorded from them) stay byte-identical.
TRAFFIC_SHAPES: dict[str, Callable[..., tuple[TrafficClass, ...]]] = {
    "default": default_traffic_classes,
    "hot_spot": hot_spot_classes,
    "diurnal_mmpp": diurnal_mmpp_classes,
    "flash_crowd": flash_crowd_classes,
}


def make_traffic_classes(
    shape: str = "default",
    seed: int = 0,
    rate_scale: float = 1.0,
    pool_size: int = 8,
    **params,
) -> tuple[TrafficClass, ...]:
    """Instantiate a named traffic shape (fresh, stateful processes).

    ``params`` are forwarded to the shape factory (e.g.
    ``surge=2.0`` for ``flash_crowd``); unknown shapes raise
    ``ValueError`` listing the registry.
    """
    factory = TRAFFIC_SHAPES.get(shape)
    if factory is None:
        raise ValueError(
            f"unknown traffic shape {shape!r}; "
            f"choose from {sorted(TRAFFIC_SHAPES)}"
        )
    return factory(
        seed=seed, rate_scale=rate_scale, pool_size=pool_size, **params
    )
