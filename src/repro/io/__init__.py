"""Serialization: the Kairos binary application format."""

from repro.io.binfmt import (
    MAGIC,
    VERSION,
    BinaryFormatError,
    load_application,
    pack_application,
    save_application,
    sniff,
    unpack_application,
)

__all__ = [
    "BinaryFormatError",
    "MAGIC",
    "VERSION",
    "load_application",
    "pack_application",
    "save_application",
    "sniff",
    "unpack_application",
]
