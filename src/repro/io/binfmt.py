"""Binary application format (paper Section III-E).

"We specified a binary format for applications, that allows
integration of the task graph, specification, and task
implementations.  As Linux supports multiple binary formats for
executables, a new binary handler can distinguish MPSoC applications
from operating system tools."

This module reproduces that workflow as a versioned, self-contained
serialization of an :class:`~repro.apps.taskgraph.Application`:
magic + version header, a deduplicating string table, then tasks (with
all their implementations), channels and performance constraints.
``unpack_application(pack_application(app))`` round-trips exactly; the
format is stable across interpreter runs (no pickling).

Layout (all integers little-endian):

======  =====================================================
offset  content
======  =====================================================
0       magic ``b"KAIR"``
4       u16 version (currently 1)
6       u16 flags (reserved, 0)
8       string table: u32 count, then per string u16 length + UTF-8
...     application body (indices into the string table)
======  =====================================================
"""

from __future__ import annotations

import struct

from repro.apps.constraints import (
    LatencyConstraint,
    PerformanceConstraint,
    ThroughputConstraint,
)
from repro.apps.implementations import Implementation
from repro.apps.taskgraph import Application, Channel, Task
from repro.arch.elements import ElementType
from repro.arch.resources import ResourceVector

MAGIC = b"KAIR"
VERSION = 1
#: sentinel string index meaning "absent"
NO_STRING = 0xFFFFFFFF


class BinaryFormatError(ValueError):
    """Raised on malformed, truncated or unsupported binaries."""


# ---------------------------------------------------------------------------
# low-level cursor
# ---------------------------------------------------------------------------

class _Writer:
    def __init__(self) -> None:
        self.chunks: list[bytes] = []
        self.strings: list[str] = []
        self._string_index: dict[str, int] = {}

    def intern(self, text: str) -> int:
        index = self._string_index.get(text)
        if index is None:
            index = len(self.strings)
            self.strings.append(text)
            self._string_index[text] = index
        return index

    def pack(self, fmt: str, *values) -> None:
        self.chunks.append(struct.pack("<" + fmt, *values))

    def body(self) -> bytes:
        return b"".join(self.chunks)


class _Reader:
    def __init__(self, data: bytes, offset: int = 0):
        self.data = data
        self.offset = offset
        self.strings: list[str] = []

    def unpack(self, fmt: str):
        fmt = "<" + fmt
        size = struct.calcsize(fmt)
        if self.offset + size > len(self.data):
            raise BinaryFormatError(
                f"truncated binary: need {size} bytes at offset {self.offset}"
            )
        values = struct.unpack_from(fmt, self.data, self.offset)
        self.offset += size
        return values if len(values) > 1 else values[0]

    def read_bytes(self, size: int) -> bytes:
        if self.offset + size > len(self.data):
            raise BinaryFormatError(
                f"truncated binary: need {size} bytes at offset {self.offset}"
            )
        chunk = self.data[self.offset:self.offset + size]
        self.offset += size
        return chunk

    def string(self, index: int) -> str:
        if index == NO_STRING:
            raise BinaryFormatError("unexpected absent-string sentinel")
        try:
            return self.strings[index]
        except IndexError:
            raise BinaryFormatError(
                f"string index {index} out of range ({len(self.strings)})"
            ) from None


# ---------------------------------------------------------------------------
# packing
# ---------------------------------------------------------------------------

def pack_application(app: Application) -> bytes:
    """Serialize an application specification to bytes."""
    writer = _Writer()
    writer.pack("I", writer.intern(app.name))

    writer.pack("I", len(app.tasks))
    for task_name in sorted(app.tasks):
        task = app.tasks[task_name]
        writer.pack("I", writer.intern(task.name))
        writer.pack("I", writer.intern(task.role))
        writer.pack("H", len(task.implementations))
        for impl in task.implementations:
            _pack_implementation(writer, impl)

    writer.pack("I", len(app.channels))
    for channel_name in sorted(app.channels):
        channel = app.channels[channel_name]
        writer.pack("I", writer.intern(channel.name))
        writer.pack("I", writer.intern(channel.source))
        writer.pack("I", writer.intern(channel.target))
        writer.pack("d", channel.bandwidth)
        writer.pack("I", channel.tokens_per_firing)
        writer.pack("I", channel.initial_tokens)

    writer.pack("I", len(app.constraints))
    for constraint in app.constraints:
        _pack_constraint(writer, constraint)

    # assemble: header, string table, body
    parts = [MAGIC, struct.pack("<HH", VERSION, 0)]
    parts.append(struct.pack("<I", len(writer.strings)))
    for text in writer.strings:
        encoded = text.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise BinaryFormatError(f"string too long: {text[:40]!r}...")
        parts.append(struct.pack("<H", len(encoded)))
        parts.append(encoded)
    parts.append(writer.body())
    return b"".join(parts)


def _pack_implementation(writer: _Writer, impl: Implementation) -> None:
    writer.pack("I", writer.intern(impl.name))
    writer.pack("d", impl.execution_time)
    writer.pack("d", impl.cost)
    if impl.target_element is not None:
        writer.pack("B", 1)
        writer.pack("I", writer.intern(impl.target_element))
    else:
        writer.pack("B", 0)
        writer.pack("I", writer.intern(impl.target_kind.value))
    writer.pack("H", len(impl.requirement))
    for kind in sorted(impl.requirement):
        writer.pack("I", writer.intern(kind))
        writer.pack("d", float(impl.requirement[kind]))


def _pack_constraint(writer: _Writer, constraint: PerformanceConstraint) -> None:
    if isinstance(constraint, ThroughputConstraint):
        writer.pack("B", 0)
        writer.pack("d", constraint.min_throughput)
        if constraint.reference_task is None:
            writer.pack("I", NO_STRING)
        else:
            writer.pack("I", writer.intern(constraint.reference_task))
    elif isinstance(constraint, LatencyConstraint):
        writer.pack("B", 1)
        writer.pack("d", constraint.max_latency)
        writer.pack("H", len(constraint.path))
        for task in constraint.path:
            writer.pack("I", writer.intern(task))
    else:  # pragma: no cover - closed union
        raise BinaryFormatError(f"unknown constraint type {constraint!r}")


# ---------------------------------------------------------------------------
# unpacking
# ---------------------------------------------------------------------------

def unpack_application(data: bytes) -> Application:
    """Deserialize bytes produced by :func:`pack_application`.

    Raises :class:`BinaryFormatError` on bad magic, unsupported
    version, truncation or dangling references.
    """
    if len(data) < 8:
        raise BinaryFormatError("binary shorter than the fixed header")
    if data[:4] != MAGIC:
        raise BinaryFormatError(
            f"bad magic {data[:4]!r}; not a Kairos application binary"
        )
    version, _flags = struct.unpack_from("<HH", data, 4)
    if version != VERSION:
        raise BinaryFormatError(
            f"unsupported format version {version} (expected {VERSION})"
        )
    reader = _Reader(data, offset=8)

    string_count = reader.unpack("I")
    for _ in range(string_count):
        length = reader.unpack("H")
        chunk = reader.read_bytes(length)
        try:
            reader.strings.append(chunk.decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise BinaryFormatError(f"invalid UTF-8 in string table: {exc}") from exc

    app = Application(reader.string(reader.unpack("I")))

    task_count = reader.unpack("I")
    for _ in range(task_count):
        name = reader.string(reader.unpack("I"))
        role = reader.string(reader.unpack("I"))
        impl_count = reader.unpack("H")
        implementations = tuple(
            _unpack_implementation(reader) for _ in range(impl_count)
        )
        app.add_task(Task(name, implementations, role=role))

    channel_count = reader.unpack("I")
    for _ in range(channel_count):
        name = reader.string(reader.unpack("I"))
        source = reader.string(reader.unpack("I"))
        target = reader.string(reader.unpack("I"))
        bandwidth = reader.unpack("d")
        tokens = reader.unpack("I")
        initial = reader.unpack("I")
        app.add_channel(
            Channel(name, source, target, bandwidth, tokens, initial)
        )

    constraint_count = reader.unpack("I")
    for _ in range(constraint_count):
        app.add_constraint(_unpack_constraint(reader))

    return app


def _unpack_implementation(reader: _Reader) -> Implementation:
    name = reader.string(reader.unpack("I"))
    execution_time = reader.unpack("d")
    cost = reader.unpack("d")
    pinned = reader.unpack("B")
    target = reader.string(reader.unpack("I"))
    kinds = reader.unpack("H")
    requirement: dict[str, float] = {}
    for _ in range(kinds):
        kind = reader.string(reader.unpack("I"))
        value = reader.unpack("d")
        requirement[kind] = int(value) if value == int(value) else value
    common = dict(
        name=name,
        requirement=ResourceVector(requirement),
        execution_time=execution_time,
        cost=cost,
    )
    if pinned == 1:
        return Implementation(target_element=target, **common)
    if pinned == 0:
        try:
            kind = ElementType(target)
        except ValueError as exc:
            raise BinaryFormatError(f"unknown element type {target!r}") from exc
        return Implementation(target_kind=kind, **common)
    raise BinaryFormatError(f"bad implementation target mode {pinned}")


def _unpack_constraint(reader: _Reader) -> PerformanceConstraint:
    mode = reader.unpack("B")
    if mode == 0:
        minimum = reader.unpack("d")
        index = reader.unpack("I")
        reference = None if index == NO_STRING else reader.string(index)
        return ThroughputConstraint(minimum, reference)
    if mode == 1:
        maximum = reader.unpack("d")
        length = reader.unpack("H")
        path = tuple(reader.string(reader.unpack("I")) for _ in range(length))
        return LatencyConstraint(maximum, path)
    raise BinaryFormatError(f"bad constraint type tag {mode}")


# ---------------------------------------------------------------------------
# file helpers (the "binary handler" façade)
# ---------------------------------------------------------------------------

def save_application(app: Application, path) -> None:
    with open(path, "wb") as handle:
        handle.write(pack_application(app))


def load_application(path) -> Application:
    with open(path, "rb") as handle:
        return unpack_application(handle.read())


def sniff(data: bytes) -> bool:
    """The binary handler's dispatch test: is this a Kairos binary?"""
    return len(data) >= 4 and data[:4] == MAGIC
