"""repro.obs — metrics registry, span tracing, exporters, shared stats.

One observability layer for the whole admission stack.  Components
accept an :class:`Observability` bundle (registry + tracer); the
module-level :data:`DISABLED` singleton is the default everywhere and
costs nothing — null-registry counters still count (components read
their own counters back) but retain nothing, and null-tracer spans are
shared no-op context managers.  Call :func:`enabled` to get a live
bundle, run, then export with :func:`repro.obs.export.write_snapshot`
/ :func:`repro.obs.tracing.write_spans` or read it back through
``repro obs``.

Determinism contract: nothing in this package reads the wall clock
(spans use the monotonic ``perf_counter``) and nothing here is ever
consulted by admission decisions, so decision traces stay bit-identical
with observability fully enabled — pinned by the replay test in
``tests/test_obs.py``.

This package imports only the stdlib; every other repro layer may
import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NullHistogram,
    NullRegistry,
    DEFAULT_LATENCY_EDGES,
)
from repro.obs.tracing import (
    NullTracer,
    Span,
    Tracer,
    read_spans,
    write_spans,
)
from repro.obs.stats import (
    StatsAggregator,
    latency_summary,
    mean,
    percentile,
    summarize,
)
from repro.obs.export import (
    SNAPSHOT_SCHEMA,
    diff_snapshots,
    load_snapshot,
    parse_prometheus,
    snapshot,
    to_prometheus,
    write_snapshot,
)

__all__ = [
    "Observability",
    "DISABLED",
    "enabled",
    # registry
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NullHistogram",
    "NullRegistry",
    "DEFAULT_LATENCY_EDGES",
    # tracing
    "Tracer",
    "NullTracer",
    "Span",
    "write_spans",
    "read_spans",
    # stats
    "percentile",
    "mean",
    "summarize",
    "latency_summary",
    "StatsAggregator",
    # export
    "SNAPSHOT_SCHEMA",
    "snapshot",
    "write_snapshot",
    "load_snapshot",
    "diff_snapshots",
    "to_prometheus",
    "parse_prometheus",
]


@dataclass(frozen=True)
class Observability:
    """Registry + tracer bundle threaded through the admission stack.

    ``enabled`` mirrors the registry's flag so hot paths can skip work
    (building span attributes, say) with one attribute check.
    """

    registry: MetricRegistry | NullRegistry = field(
        default_factory=NullRegistry
    )
    tracer: Tracer | NullTracer = field(default_factory=NullTracer)

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    def snapshot(self, context: dict | None = None) -> dict:
        return snapshot(self.registry, context)


#: the shared disabled bundle — the default ``obs`` everywhere
DISABLED = Observability()


def enabled() -> Observability:
    """A live bundle: real registry, real tracer."""
    return Observability(registry=MetricRegistry(), tracer=Tracer())
