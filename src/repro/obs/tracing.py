"""Hierarchical span tracing with monotonic timings.

A :class:`Span` is a named interval with structured attributes and an
optional parent; a :class:`Tracer` records finished spans in completion
order.  Timings come from ``time.perf_counter()`` — a *monotonic*
clock with no epoch, so spans can measure durations but can never
smuggle wall-clock time into anything deterministic.  Decision traces
(:mod:`repro.sim.trace`) never read span data; the replay-determinism
test in ``tests/test_obs.py`` pins that invariant.

The default everywhere is :class:`NullTracer`, whose ``span()`` returns
a shared no-op context manager: entering a phase costs one method call
and no allocation when tracing is off.

Span export is JSONL (one JSON object per line, in completion order)
via :func:`write_spans` — the same file idiom as the decision traces,
so existing tooling (``jq``, ``diff_traces``-style readers) applies.
"""

from __future__ import annotations

import json
import time
from typing import IO, Iterable, Iterator

__all__ = ["Span", "Tracer", "NullTracer", "write_spans", "read_spans"]


class Span:
    """One timed interval.  Use as a context manager via Tracer.span().

    Durations are monotonic-clock seconds; ``start`` is an offset from
    the tracer's own origin (not an epoch), so exported spans order
    and align within one trace but carry no wall-clock identity.
    """

    __slots__ = ("name", "span_id", "parent_id", "start", "duration", "attrs")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: int | None,
        start: float,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.duration: float | None = None
        self.attrs: dict | None = None

    def set(self, key: str, value) -> None:
        """Attach a structured attribute (JSON-able values only)."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs[key] = value

    def as_dict(self) -> dict:
        record = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Span {self.name} #{self.span_id} dur={self.duration}>"


class _ActiveSpan:
    """Context manager binding a Span to the tracer's open-span stack."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def set(self, key: str, value) -> None:
        self.span.set(key, value)

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._finish(self.span, failed=exc_type is not None)


class Tracer:
    """Records hierarchical spans; finished spans kept in completion order.

    Parentage is implicit: the innermost span open *on this tracer* at
    ``span()`` time becomes the parent.  The admission stack is
    single-threaded per manager, so a plain stack suffices.
    """

    enabled = True

    __slots__ = ("_origin", "_stack", "_finished", "_next_id")

    def __init__(self) -> None:
        self._origin = time.perf_counter()
        self._stack: list[Span] = []
        self._finished: list[Span] = []
        self._next_id = 1

    def span(self, name: str, **attrs) -> _ActiveSpan:
        parent_id = self._stack[-1].span_id if self._stack else None
        span = Span(
            name,
            self._next_id,
            parent_id,
            time.perf_counter() - self._origin,
        )
        self._next_id += 1
        if attrs:
            span.attrs = dict(attrs)
        self._stack.append(span)
        return _ActiveSpan(self, span)

    def _finish(self, span: Span, failed: bool = False) -> None:
        span.duration = (time.perf_counter() - self._origin) - span.start
        if failed:
            span.set("error", True)
        # tolerate out-of-order exits rather than corrupt the stack
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - defensive
            self._stack.remove(span)
        self._finished.append(span)

    @property
    def spans(self) -> tuple[Span, ...]:
        """Finished spans, completion order."""
        return tuple(self._finished)

    def __len__(self) -> int:
        return len(self._finished)

    def clear(self) -> None:
        self._finished.clear()

    def as_records(self) -> list[dict]:
        return [span.as_dict() for span in self._finished]


class _NullActiveSpan:
    """Shared no-op context manager returned by NullTracer.span()."""

    __slots__ = ()
    span = None

    def set(self, key: str, value) -> None:
        pass

    def __enter__(self) -> "_NullActiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_ACTIVE = _NullActiveSpan()


class NullTracer:
    """Disabled tracer: span() allocates nothing and records nothing."""

    enabled = False

    __slots__ = ()

    def span(self, name: str, **attrs) -> _NullActiveSpan:
        return _NULL_ACTIVE

    @property
    def spans(self) -> tuple:
        return ()

    def __len__(self) -> int:
        return 0

    def clear(self) -> None:
        pass

    def as_records(self) -> list:
        return []


def write_spans(tracer: Tracer | NullTracer, stream_or_path: IO | str) -> int:
    """Write finished spans as JSONL; returns the number written."""
    records = tracer.as_records()
    if isinstance(stream_or_path, str):
        with open(stream_or_path, "w", encoding="utf-8") as handle:
            return write_spans(tracer, handle)
    for record in records:
        stream_or_path.write(
            json.dumps(record, sort_keys=True, separators=(",", ":"))
        )
        stream_or_path.write("\n")
    return len(records)


def read_spans(stream_or_path: IO | str | Iterable[str]) -> Iterator[dict]:
    """Yield span records from a JSONL stream, path, or line iterable."""
    if isinstance(stream_or_path, str):
        with open(stream_or_path, "r", encoding="utf-8") as handle:
            yield from read_spans(handle)
            return
    for line in stream_or_path:
        line = line.strip()
        if line:
            yield json.loads(line)
