"""The metric registry: named counters, gauges, fixed-bucket histograms.

Design goals, in order:

1. **Zero cost when disabled.**  The default everywhere is a
   :class:`NullRegistry`: its counters still *count* (components such
   as the admission gate and the distance-field engine read their own
   counters back for ``fastpath_stats`` / ``distfield_stats``, so a
   counter that silently dropped increments would break them) but
   nothing is retained, aggregated or exportable, and its histograms
   and gauges are shared no-op singletons.  Attaching a null registry
   therefore changes neither decisions nor wall-clock beyond what the
   pre-registry ad-hoc counters already cost.
2. **One array op on the hot path.**  A :class:`MetricRegistry`
   interns each metric name to a dense slot in one shared value list;
   the returned :class:`Counter` / :class:`Gauge` handle holds
   ``(values, slot)`` and increments with a single indexed add.  The
   dict lookup happens once, at interning time — callers keep the
   handle.
3. **Deterministic exports.**  :meth:`MetricRegistry.snapshot` renders
   every metric in sorted-name order with plain JSON types, so two
   snapshots of identical runs are byte-comparable (the exporters in
   :mod:`repro.obs.export` build on this).

Nothing here reads the wall clock: registries carry *values*, never
timestamps, which is half of the determinism guarantee (the other
half — spans — lives in :mod:`repro.obs.tracing`).
"""

from __future__ import annotations

from bisect import bisect_right

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NullHistogram",
    "NullRegistry",
    "DEFAULT_LATENCY_EDGES",
]

#: default histogram bucket edges for wall-clock seconds: log-ish
#: spacing from 10 µs to 10 s, wide enough for every pipeline phase
#: the benches have measured (values beyond the last edge land in the
#: overflow bucket and still contribute to sum/count/max)
DEFAULT_LATENCY_EDGES = (
    0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotone counter handle: one slot of a registry's value list.

    ``inc`` is the hot path — one indexed add.  Null-registry counters
    get a private single-slot list instead of a registry slot, so they
    count identically at identical cost; they are just not retained.
    """

    __slots__ = ("name", "_values", "_slot")

    def __init__(self, name: str, values: list, slot: int) -> None:
        self.name = name
        self._values = values
        self._slot = slot

    def inc(self, n: int | float = 1) -> None:
        self._values[self._slot] += n

    @property
    def value(self) -> int | float:
        return self._values[self._slot]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A last-value-wins gauge handle (same slot mechanics as Counter)."""

    __slots__ = ("name", "_values", "_slot")

    def __init__(self, name: str, values: list, slot: int) -> None:
        self.name = name
        self._values = values
        self._slot = slot

    def set(self, value: float) -> None:
        self._values[self._slot] = value

    def inc(self, n: int | float = 1) -> None:
        self._values[self._slot] += n

    def dec(self, n: int | float = 1) -> None:
        self._values[self._slot] -= n

    @property
    def value(self) -> int | float:
        return self._values[self._slot]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """A fixed-bucket histogram: ``len(edges) + 1`` counts (the last is
    the overflow bucket for samples beyond the largest edge).

    Bucket ``i`` counts samples with ``edges[i-1] < x <= edges[i]``
    (Prometheus ``le`` semantics); ``observe`` is a bisect plus one
    indexed add.  Sum, count, min and max are tracked exactly, so mean
    is exact and only the percentiles are bucket-resolution estimates.
    """

    __slots__ = ("name", "edges", "counts", "sum", "count", "min", "max")

    def __init__(self, name: str, edges: tuple[float, ...]) -> None:
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        ordered = tuple(float(edge) for edge in edges)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError("histogram edges must be strictly increasing")
        self.name = name
        self.edges = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.sum = 0.0
        self.count = 0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        # bisect_left over edges gives the first edge >= value, which
        # is exactly the ``le`` bucket; values above every edge fall
        # through to the overflow slot len(edges)
        edges = self.edges
        index = bisect_right(edges, value)
        if index > 0 and edges[index - 1] == value:
            index -= 1
        self.counts[index] += 1
        self.sum += value
        self.count += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float | None:
        """Bucket-resolution percentile estimate (None when empty).

        Returns the upper edge of the bucket containing the
        nearest-rank sample; overflow-bucket hits return the exact
        tracked maximum (the only honest upper bound available).
        """
        if self.count == 0:
            return None
        if not 0 <= q <= 100:
            raise ValueError("percentile q must be in [0, 100]")
        rank = max(1, -(-q * self.count // 100))  # ceil without math
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                if index < len(self.edges):
                    return self.edges[index]
                return self.max
        return self.max  # pragma: no cover - counts always sum to count

    def as_dict(self) -> dict:
        """JSON-able snapshot of this histogram."""
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Histogram {self.name}: n={self.count}>"


class _NullHistogram:
    """Shared no-op histogram: observing costs one no-op call."""

    __slots__ = ()
    name = "null"
    edges: tuple[float, ...] = ()
    sum = 0.0
    count = 0
    min = None
    max = None
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> None:
        return None

    def as_dict(self) -> dict:
        return {
            "edges": [], "counts": [], "sum": 0.0, "count": 0,
            "min": None, "max": None, "mean": 0.0,
            "p50": None, "p95": None, "p99": None,
        }


#: public alias so isinstance checks read naturally in tests
NullHistogram = _NullHistogram

_NULL_HISTOGRAM = _NullHistogram()


class MetricRegistry:
    """Named counters, gauges and histograms with dense-slot interning.

    ``counter(name)`` / ``gauge(name)`` / ``histogram(name)`` intern
    the name on first call and return the same handle ever after, so
    components may re-request handles idempotently (one dict lookup)
    or cache them (zero lookups).  Names are dotted paths by
    convention (``gate.memo_hits``, ``phase.mapping.seconds``); the
    Prometheus exporter rewrites the dots.
    """

    enabled = True

    def __init__(self) -> None:
        self._counter_values: list = []
        self._gauge_values: list = []
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- interning ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        handle = self._counters.get(name)
        if handle is None:
            self._counter_values.append(0)
            handle = Counter(
                name, self._counter_values, len(self._counter_values) - 1
            )
            self._counters[name] = handle
        return handle

    def gauge(self, name: str) -> Gauge:
        handle = self._gauges.get(name)
        if handle is None:
            self._gauge_values.append(0)
            handle = Gauge(
                name, self._gauge_values, len(self._gauge_values) - 1
            )
            self._gauges[name] = handle
        return handle

    def histogram(
        self,
        name: str,
        edges: tuple[float, ...] = DEFAULT_LATENCY_EDGES,
    ) -> Histogram:
        handle = self._histograms.get(name)
        if handle is None:
            handle = Histogram(name, edges)
            self._histograms[name] = handle
        elif tuple(edges) != handle.edges and edges != DEFAULT_LATENCY_EDGES:
            raise ValueError(
                f"histogram {name!r} already interned with different edges"
            )
        return handle

    # -- reading back ------------------------------------------------------

    def counter_value(self, name: str) -> int | float:
        handle = self._counters.get(name)
        return 0 if handle is None else handle.value

    def names(self) -> dict[str, tuple[str, ...]]:
        """Interned metric names per kind, sorted."""
        return {
            "counters": tuple(sorted(self._counters)),
            "gauges": tuple(sorted(self._gauges)),
            "histograms": tuple(sorted(self._histograms)),
        }

    def snapshot(self) -> dict:
        """Deterministic JSON-able dump of every interned metric."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].as_dict()
                for name in sorted(self._histograms)
            },
        }


class NullRegistry:
    """The disabled registry: nothing retained, nothing exportable.

    Counters and gauges returned here still store their value (in a
    private single-slot list) because components read their own
    counters back — the gate's ``fastpath_stats`` and the
    distance-field engine's ``distfield_stats`` must keep working with
    observability off, exactly as their pre-registry ad-hoc ints did.
    The registry itself retains no reference, so ``snapshot()`` is
    empty, exports are empty, and repeated ``counter(name)`` calls
    return *independent* handles (callers hold their handle; nothing
    aggregates).  Histograms are shared no-op singletons: no component
    reads its own histograms back, so observations are dropped whole.
    """

    enabled = False

    def counter(self, name: str) -> Counter:
        return Counter(name, [0], 0)

    def gauge(self, name: str) -> Gauge:
        return Gauge(name, [0], 0)

    def histogram(
        self, name: str, edges: tuple[float, ...] = DEFAULT_LATENCY_EDGES
    ) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def counter_value(self, name: str) -> int:
        return 0

    def names(self) -> dict[str, tuple[str, ...]]:
        return {"counters": (), "gauges": (), "histograms": ()}

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}
