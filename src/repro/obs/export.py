"""Exporters: JSON snapshot, Prometheus text format, snapshot diffing.

A *snapshot* is the JSON-able dict produced by
:func:`snapshot` — registry metrics plus optional caller-provided
context (policy, platform, seed) under a versioned envelope.  It is
what ``repro sim --metrics-out`` writes and what ``repro obs show`` /
``repro obs diff`` read back.

The Prometheus exporter emits the text exposition format (counters,
gauges, and cumulative-bucket histograms with ``_bucket``/``_sum``/
``_count`` series); :func:`parse_prometheus` is a deliberately minimal
reader of that same subset so tests can round-trip the output without
a client library.
"""

from __future__ import annotations

import json
from typing import IO

__all__ = [
    "SNAPSHOT_SCHEMA",
    "snapshot",
    "write_snapshot",
    "load_snapshot",
    "diff_snapshots",
    "to_prometheus",
    "parse_prometheus",
]

#: schema tag written into every snapshot; bump on breaking layout change
SNAPSHOT_SCHEMA = "repro.obs/1"


def snapshot(registry, context: dict | None = None) -> dict:
    """Versioned snapshot envelope around ``registry.snapshot()``."""
    return {
        "schema": SNAPSHOT_SCHEMA,
        "context": dict(context or {}),
        "metrics": registry.snapshot(),
    }


def write_snapshot(
    registry, stream_or_path: IO | str, context: dict | None = None
) -> dict:
    """Write a snapshot as pretty JSON; returns the snapshot dict."""
    payload = snapshot(registry, context)
    if isinstance(stream_or_path, str):
        with open(stream_or_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    else:
        json.dump(payload, stream_or_path, indent=2, sort_keys=True)
        stream_or_path.write("\n")
    return payload


def load_snapshot(stream_or_path: IO | str) -> dict:
    """Read a snapshot back, validating the schema tag."""
    if isinstance(stream_or_path, str):
        with open(stream_or_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    else:
        payload = json.load(stream_or_path)
    schema = payload.get("schema")
    if schema != SNAPSHOT_SCHEMA:
        raise ValueError(
            f"not a repro.obs snapshot (schema={schema!r}, "
            f"expected {SNAPSHOT_SCHEMA!r})"
        )
    return payload


def diff_snapshots(before: dict, after: dict) -> dict:
    """Delta of two snapshots: after minus before, per metric.

    Counters and gauges diff numerically (metrics present on only one
    side diff against zero).  Histograms diff on count/sum and carry
    the after-side percentiles — bucket-level deltas are rarely what an
    operator wants to read.
    """
    result: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    before_m = before.get("metrics", {})
    after_m = after.get("metrics", {})
    for kind in ("counters", "gauges"):
        names = set(before_m.get(kind, {})) | set(after_m.get(kind, {}))
        for name in sorted(names):
            prior = before_m.get(kind, {}).get(name, 0)
            current = after_m.get(kind, {}).get(name, 0)
            if current != prior:
                result[kind][name] = {
                    "before": prior, "after": current,
                    "delta": current - prior,
                }
    hist_names = set(before_m.get("histograms", {})) | set(
        after_m.get("histograms", {})
    )
    empty = {"count": 0, "sum": 0.0}
    for name in sorted(hist_names):
        prior = before_m.get("histograms", {}).get(name, empty)
        current = after_m.get("histograms", {}).get(name, empty)
        if current.get("count", 0) != prior.get("count", 0):
            result["histograms"][name] = {
                "count_delta": current.get("count", 0)
                - prior.get("count", 0),
                "sum_delta": current.get("sum", 0.0)
                - prior.get("sum", 0.0),
                "after": {
                    key: current.get(key)
                    for key in ("count", "mean", "p50", "p95", "p99")
                },
            }
    return result


# -- Prometheus text exposition format ------------------------------------


def _prom_name(name: str) -> str:
    """Dotted registry name -> Prometheus metric name."""
    return "".join(
        ch if (ch.isalnum() or ch == "_") else "_" for ch in name
    )


def _prom_value(value) -> str:
    if value is None:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def to_prometheus(registry, prefix: str = "repro") -> str:
    """Render every interned metric in the Prometheus text format."""
    dump = registry.snapshot()
    lines: list[str] = []
    for name in sorted(dump["counters"]):
        metric = f"{prefix}_{_prom_name(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(dump['counters'][name])}")
    for name in sorted(dump["gauges"]):
        metric = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(dump['gauges'][name])}")
    for name in sorted(dump["histograms"]):
        hist = dump["histograms"][name]
        metric = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for edge, count in zip(hist["edges"], hist["counts"]):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_prom_value(float(edge))}"}}'
                f" {cumulative}"
            )
        cumulative += hist["counts"][-1] if hist["counts"] else 0
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {_prom_value(hist['sum'])}")
        lines.append(f"{metric}_count {hist['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> dict:
    """Minimal parser of :func:`to_prometheus` output (tests round-trip).

    Returns ``{"types": {metric: type}, "samples": {series: value}}``
    where a series key is the metric name plus its label string
    verbatim (e.g. ``repro_phase_mapping_seconds_bucket{le="0.001"}``).
    Only the subset this module emits is understood — it is a test
    fixture, not a scrape client.
    """
    types: dict[str, str] = {}
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) == 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        series, _, raw = line.rpartition(" ")
        if not series:
            raise ValueError(f"unparseable sample line: {line!r}")
        samples[series] = float(raw)
    return {"types": types, "samples": samples}
