"""Shared statistics helpers and the per-phase/per-condition aggregator.

This module is the single home of the percentile and mean arithmetic
that used to be duplicated across :mod:`repro.sim.metrics` (service
SLA percentiles) and :mod:`repro.manager.metrics` (paper-figure
means): both now call in here, and ``tests/test_obs.py`` asserts the
rewired outputs are identical to the originals.

:class:`StatsAggregator` is the ResultAnalyzer-style rollup: feed it
samples keyed by ``(condition, metric)`` — e.g. ``("fifo",
"phase.mapping")`` — and it renders per-condition percentile tables
for the benches and the scenario-matrix harness (ROADMAP item 4).
"""

from __future__ import annotations

import math

__all__ = [
    "percentile",
    "mean",
    "latency_summary",
    "summarize",
    "StatsAggregator",
]


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of an unsorted list."""
    if not values:
        return math.nan
    if not 0 <= q <= 100:
        raise ValueError("percentile q must be in [0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def mean(values: list[float]) -> float:
    """Arithmetic mean; NaN on empty (mirrors :func:`percentile`)."""
    if not values:
        return math.nan
    return sum(values) / len(values)


def summarize(values: list[float], quantiles=(50, 95, 99)) -> dict:
    """Count, sum, mean and nearest-rank percentiles of a sample list.

    NaNs are rendered as None so the result is JSON-round-trippable.
    """
    result = {
        "count": len(values),
        "sum": sum(values),
        "mean": (None if not values else mean(values)),
        "min": (None if not values else min(values)),
        "max": (None if not values else max(values)),
    }
    for q in quantiles:
        value = percentile(values, q)
        result[f"p{q:g}"] = None if math.isnan(value) else value
    return result


def latency_summary(samples: list[float]) -> dict:
    """The per-phase latency row shared by ServiceMetrics and the benches.

    Milliseconds, nearest-rank p50/p95/p99 — byte-identical arithmetic
    to the pre-refactor ``ServiceMetrics.phase_latency_summary`` row.
    """
    return {
        "count": len(samples),
        "p50_ms": percentile(samples, 50) * 1000.0,
        "p95_ms": percentile(samples, 95) * 1000.0,
        "p99_ms": percentile(samples, 99) * 1000.0,
        "total_ms": sum(samples) * 1000.0,
    }


class StatsAggregator:
    """Per-condition, per-metric sample rollups (ResultAnalyzer shape).

    A *condition* is whatever axis the caller sweeps — queue policy,
    topology, traffic shape; a *metric* is a named sample stream within
    it (a pipeline phase, an admission wait, a throughput).  ``add``
    is O(1) append; ``report`` renders a nested, sorted, JSON-able
    dict of :func:`summarize` rows.
    """

    def __init__(self, quantiles=(50, 95, 99)) -> None:
        self._quantiles = tuple(quantiles)
        self._samples: dict[str, dict[str, list[float]]] = {}

    def add(self, condition: str, metric: str, value: float) -> None:
        by_metric = self._samples.setdefault(condition, {})
        by_metric.setdefault(metric, []).append(value)

    def extend(self, condition: str, metric: str, values) -> None:
        by_metric = self._samples.setdefault(condition, {})
        by_metric.setdefault(metric, []).extend(values)

    def conditions(self) -> tuple[str, ...]:
        return tuple(sorted(self._samples))

    def samples(self, condition: str, metric: str) -> list[float]:
        return list(self._samples.get(condition, {}).get(metric, ()))

    def report(self) -> dict:
        return {
            condition: {
                metric: summarize(values, self._quantiles)
                for metric, values in sorted(by_metric.items())
            }
            for condition, by_metric in sorted(self._samples.items())
        }
