"""Analytical throughput via maximum cycle ratio (the paper's future work).

Section V: "Using the work of [18], the complexity of the throughput
analysis may be moved to design-time, making the validation approach a
lot faster.  The validation phase as a post-processing step can then
be turned into a set of linear expressions."

For a strongly connected HSDF graph executed self-timed, the
steady-state period equals the **maximum cycle ratio**

    lambda* = max over cycles C of  (sum of durations on C)
                                    / (sum of initial tokens on C)

and the throughput of every actor is ``1 / lambda*`` [18].  The
no-auto-concurrency rule is itself a cycle constraint: a virtual
self-loop with one token per actor, contributing the ratio
``duration(a) / 1``.

We compute lambda* by the classic parametric (Lawler) method: binary
search over lambda, testing for a *positive* cycle of the edge weights
``duration(source) - lambda * tokens(edge)`` with Bellman-Ford.  A
positive cycle at arbitrarily large lambda means some cycle carries no
tokens at all — a deadlock (throughput 0).

The validator exposes this as the ``analytical`` method; ablation A5
benchmarks it against the state-space simulation on the beamformer
layout and the tests check the two engines agree to numerical
precision on every graph the library produces.
"""

from __future__ import annotations

from repro.validation.sdf import SdfError, SdfGraph

#: relative precision of the binary search on lambda*
DEFAULT_TOLERANCE = 1e-9


class McrError(SdfError):
    """Raised for graphs outside the analytical method's domain."""


def _build_event_graph(graph: SdfGraph):
    """HSDF -> weighted event graph (nodes, edges with cost/tokens).

    Edge cost is the *source* actor's duration: traversing a cycle
    counts every actor on it exactly once.  Self-loops encode the
    no-auto-concurrency rule.
    """
    if not graph.is_hsdf():
        raise McrError(
            f"{graph.name!r}: maximum-cycle-ratio analysis requires an "
            "HSDF graph (all rates 1); use the simulation engine instead"
        )
    nodes = sorted(graph.actors)
    index = {name: i for i, name in enumerate(nodes)}
    edges: list[tuple[int, int, float, int]] = []  # (u, v, cost, tokens)
    for edge in graph.edges.values():
        edges.append((
            index[edge.source],
            index[edge.target],
            graph.actor(edge.source).duration,
            edge.initial_tokens,
        ))
    for name in nodes:
        i = index[name]
        edges.append((i, i, graph.actor(name).duration, 1))
    return nodes, edges


def _has_positive_cycle(n: int, edges, lam: float) -> bool:
    """Bellman-Ford longest-path: does any cycle have positive weight
    under ``w(e) = cost - lam * tokens``?"""
    distance = [0.0] * n  # all nodes as sources (virtual super-source)
    for _iteration in range(n):
        changed = False
        for u, v, cost, tokens in edges:
            weight = cost - lam * tokens
            candidate = distance[u] + weight
            if candidate > distance[v] + 1e-15:
                distance[v] = candidate
                changed = True
        if not changed:
            return False
    return True  # still relaxing after n passes -> positive cycle


def maximum_cycle_ratio(
    graph: SdfGraph,
    tolerance: float = DEFAULT_TOLERANCE,
) -> float:
    """lambda* of the HSDF graph; ``inf`` when a token-free cycle
    deadlocks the graph, 0.0 for graphs with no actors."""
    if not graph.actors:
        return 0.0
    nodes, edges = _build_event_graph(graph)
    n = len(nodes)

    total_duration = sum(graph.actor(a).duration for a in graph.actors)
    upper = max(total_duration, 1.0)
    # deadlock probe: a positive cycle beyond any achievable ratio can
    # only come from a zero-token cycle with positive cost
    if _has_positive_cycle(n, edges, upper * 4 + 1.0):
        return float("inf")

    low, high = 0.0, upper * 4 + 1.0
    # lambda* is the smallest lambda with no positive cycle
    while high - low > max(tolerance, tolerance * high):
        mid = (low + high) / 2
        if _has_positive_cycle(n, edges, mid):
            low = mid
        else:
            high = mid
    return high


def analytical_throughput(
    graph: SdfGraph,
    tolerance: float = DEFAULT_TOLERANCE,
) -> dict[str, float]:
    """Steady-state firings/s per actor: ``1 / lambda*`` for every
    actor of a strongly connected HSDF graph.

    Raises :class:`McrError` for non-HSDF graphs.  On graphs that are
    *not* strongly connected the result is an upper bound for actors
    outside the binding cycle (the simulation engine remains exact);
    every graph built by :func:`repro.validation.builder.layout_to_sdf`
    is strongly connected because each channel carries a buffer back
    edge.
    """
    ratio = maximum_cycle_ratio(graph, tolerance)
    if ratio == float("inf"):
        return {name: 0.0 for name in graph.actors}
    if ratio == 0.0:
        return {}
    rate = 1.0 / ratio
    return {name: rate for name in graph.actors}
