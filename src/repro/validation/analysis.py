"""Static SDF analysis: consistency, repetition vectors, deadlock hints.

An SDF graph only admits a periodic schedule when the balance
equations ``production(e) * q[source(e)] = consumption(e) * q[target(e)]``
have a positive integer solution ``q`` (the *repetition vector*); a
graph violating this is *inconsistent* and would accumulate or starve
tokens without bound.  Throughput analysis (state-space exploration)
presupposes consistency, so the validation phase checks it first.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd, lcm

from repro.validation.sdf import SdfError, SdfGraph


class InconsistentGraphError(SdfError):
    """The balance equations admit no positive solution."""


def repetition_vector(graph: SdfGraph) -> dict[str, int]:
    """Smallest positive integer solution of the balance equations.

    Raises :class:`InconsistentGraphError` when rates conflict on some
    undirected cycle.  Actors of disconnected components are solved
    independently (each component is normalised separately).
    """
    if not graph.actors:
        return {}
    ratio: dict[str, Fraction] = {}
    adjacency: dict[str, list[tuple[str, Fraction]]] = {
        name: [] for name in graph.actors
    }
    for edge in graph.edges.values():
        # q[target] = q[source] * production / consumption
        factor = Fraction(edge.production, edge.consumption)
        adjacency[edge.source].append((edge.target, factor))
        adjacency[edge.target].append((edge.source, 1 / factor))

    for start in graph.actors:
        if start in ratio:
            continue
        ratio[start] = Fraction(1)
        stack = [start]
        component = [start]
        while stack:
            current = stack.pop()
            for neighbor, factor in adjacency[current]:
                expected = ratio[current] * factor
                if neighbor in ratio:
                    if ratio[neighbor] != expected:
                        raise InconsistentGraphError(
                            f"rate conflict at actor {neighbor!r}: "
                            f"{ratio[neighbor]} vs {expected}"
                        )
                else:
                    ratio[neighbor] = expected
                    component.append(neighbor)
                    stack.append(neighbor)
        # normalise this component to the smallest integer vector
        denominator = lcm(*(ratio[a].denominator for a in component))
        scaled = {a: ratio[a] * denominator for a in component}
        divisor = 0
        for a in component:
            divisor = gcd(divisor, int(scaled[a]))
        for a in component:
            ratio[a] = Fraction(int(scaled[a]) // divisor)

    return {name: int(value) for name, value in ratio.items()}


def is_consistent(graph: SdfGraph) -> bool:
    try:
        repetition_vector(graph)
    except InconsistentGraphError:
        return False
    return True


def iteration_duration_bound(graph: SdfGraph) -> float:
    """A trivial lower bound on one iteration: the critical actor load.

    ``max_a duration(a) * q(a)`` bounds the period from below on any
    single-resource-per-actor platform; used as a sanity check on the
    simulated throughput.
    """
    repetitions = repetition_vector(graph)
    if not repetitions:
        return 0.0
    return max(
        graph.actor(name).duration * count
        for name, count in repetitions.items()
    )


def dead_actors(graph: SdfGraph) -> tuple[str, ...]:
    """Actors that can never fire even once from the initial marking.

    A conservative reachability check: repeatedly fire any actor whose
    input edges hold enough tokens (bounded by the repetition vector),
    and report the actors that never became enabled.  For consistent,
    deadlock-free graphs this returns the empty tuple.
    """
    repetitions = repetition_vector(graph)
    tokens = graph.initial_marking()
    remaining = dict(repetitions)
    fired_once: set[str] = set()
    progress = True
    while progress:
        progress = False
        for name in graph.actors:
            if remaining.get(name, 0) <= 0:
                continue
            if all(
                tokens[e.name] >= e.consumption for e in graph.in_edges(name)
            ):
                for e in graph.in_edges(name):
                    tokens[e.name] -= e.consumption
                for e in graph.out_edges(name):
                    tokens[e.name] += e.production
                remaining[name] -= 1
                fired_once.add(name)
                progress = True
    return tuple(sorted(set(graph.actors) - fired_once))
