"""Build the validation SDF graph from an execution layout.

"We model the influence of the platform and the application
specification as an SDF graph" (Section II).  The translation:

* every task becomes an actor whose firing duration is its bound
  implementation's execution time, *scaled by the number of tasks
  resident on the same element* — processing elements are time-shared,
  so two co-resident tasks each run at half speed (a round-robin
  arbitration model);
* every routed channel becomes a communication actor whose duration is
  ``hops * hop_latency`` (the virtual-channel reservation guarantees
  the bandwidth share, so latency is proportional to route length);
  channels between co-resident tasks communicate through local memory
  and cost ``local_latency``;
* every channel carries a *back edge* holding ``buffer_tokens``
  initial tokens, modelling bounded FIFO buffers with blocking writes
  (the standard SDF encoding of finite buffer capacity).

The result is an HSDF graph (all rates 1): the paper's applications
fire once per graph iteration.  ``tokens_per_firing`` of a channel
scales its communication duration (more data per firing takes
proportionally longer on the same virtual channel).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.implementations import Implementation
from repro.apps.taskgraph import Application
from repro.arch.state import AllocationState, ChannelReservation
from repro.validation.sdf import Actor, SdfGraph

#: default latency of one NoC hop, in the same time unit as execution times
DEFAULT_HOP_LATENCY = 0.1
#: latency of element-local communication (shared memory hand-off)
DEFAULT_LOCAL_LATENCY = 0.05
#: default FIFO depth per channel, in tokens
DEFAULT_BUFFER_TOKENS = 2


@dataclass(frozen=True)
class SdfModelOptions:
    """Tunables of the layout-to-SDF translation."""

    hop_latency: float = DEFAULT_HOP_LATENCY
    local_latency: float = DEFAULT_LOCAL_LATENCY
    buffer_tokens: int = DEFAULT_BUFFER_TOKENS
    #: scale task durations by element co-residency (time-sharing)
    model_time_sharing: bool = True

    def __post_init__(self) -> None:
        if self.hop_latency < 0 or self.local_latency < 0:
            raise ValueError("latencies must be non-negative")
        if self.buffer_tokens < 1:
            raise ValueError("buffers need at least one token of capacity")


def comm_actor_name(channel: str) -> str:
    return f"ch:{channel}"


def layout_to_sdf(
    app: Application,
    binding: dict[str, Implementation],
    placement: dict[str, str],
    routes: dict[str, ChannelReservation],
    state: AllocationState,
    options: SdfModelOptions = SdfModelOptions(),
) -> SdfGraph:
    """Translate one application's execution layout into an HSDF graph.

    ``routes`` maps channel names to their reservations; channels
    absent from ``routes`` are element-local.  ``state`` supplies
    co-residency counts for the time-sharing model (it should be the
    state *after* this application's placements were committed).
    """
    graph = SdfGraph(f"sdf:{app.name}")

    for task_name in app.tasks:
        implementation = binding[task_name]
        duration = implementation.execution_time
        if options.model_time_sharing:
            element = placement[task_name]
            sharers = max(1, len(state.occupants(element)))
            duration *= sharers
        graph.add_actor(Actor(task_name, duration))

    for channel in app.channels.values():
        reservation = routes.get(channel.name)
        if reservation is not None:
            latency = reservation.hops * options.hop_latency
        else:
            latency = options.local_latency
        latency *= channel.tokens_per_firing
        comm = comm_actor_name(channel.name)
        graph.add_actor(Actor(comm, latency))
        # feedback channels of cyclic applications carry their initial
        # tokens on the data edge (data present at start-up)
        graph.connect(
            channel.source, comm,
            initial_tokens=channel.initial_tokens,
            name=f"{channel.name}/data",
        )
        graph.connect(comm, channel.target, name=f"{channel.name}/deliver")
        # bounded buffer: the producer may run at most buffer_tokens
        # firings ahead of the consumer
        graph.connect(
            channel.target,
            channel.source,
            initial_tokens=options.buffer_tokens,
            name=f"{channel.name}/space",
        )

    return graph
