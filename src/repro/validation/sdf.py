"""Synchronous dataflow graphs: the validation phase's formalism.

"For validation of the performance constraints of applications, we
model the influence of the platform and the application specification
as an SDF graph" (paper Section II).  An SDF graph consists of actors
with fixed firing durations and directed edges carrying tokens; an
actor may fire when every input edge holds at least its consumption
rate, consuming and (after its duration) producing tokens [5][13].

This module defines the graph structure; repetition-vector analysis
lives in :mod:`repro.validation.analysis` and the self-timed
state-space throughput exploration in
:mod:`repro.validation.throughput`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class SdfError(ValueError):
    """Raised for malformed SDF graphs."""


@dataclass(frozen=True)
class Actor:
    """An SDF actor with a deterministic firing duration."""

    name: str
    duration: float

    def __post_init__(self) -> None:
        if not self.name:
            raise SdfError("actor needs a non-empty name")
        if self.duration < 0:
            raise SdfError(f"actor {self.name!r} has negative duration")


@dataclass(frozen=True)
class Edge:
    """A token channel between two actors.

    ``production`` tokens appear on the edge when ``source`` completes
    a firing; ``consumption`` tokens are required (and removed) for
    ``target`` to start one.  ``initial_tokens`` provides the initial
    marking (delays / available buffer space).
    """

    name: str
    source: str
    target: str
    production: int = 1
    consumption: int = 1
    initial_tokens: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise SdfError("edge needs a non-empty name")
        if self.production < 1 or self.consumption < 1:
            raise SdfError(f"edge {self.name!r} rates must be >= 1")
        if self.initial_tokens < 0:
            raise SdfError(f"edge {self.name!r} has negative initial tokens")


@dataclass
class SdfGraph:
    """A synchronous dataflow graph (general rates; HSDF is rates==1)."""

    name: str
    actors: dict[str, Actor] = field(default_factory=dict)
    edges: dict[str, Edge] = field(default_factory=dict)

    def add_actor(self, actor: Actor) -> Actor:
        if actor.name in self.actors:
            raise SdfError(f"duplicate actor {actor.name!r}")
        self.actors[actor.name] = actor
        return actor

    def actor(self, name: str) -> Actor:
        try:
            return self.actors[name]
        except KeyError:
            raise SdfError(f"unknown actor {name!r}") from None

    def add_edge(self, edge: Edge) -> Edge:
        if edge.name in self.edges:
            raise SdfError(f"duplicate edge {edge.name!r}")
        for endpoint in (edge.source, edge.target):
            if endpoint not in self.actors:
                raise SdfError(
                    f"edge {edge.name!r} references unknown actor {endpoint!r}"
                )
        self.edges[edge.name] = edge
        return edge

    def connect(
        self,
        source: str,
        target: str,
        production: int = 1,
        consumption: int = 1,
        initial_tokens: int = 0,
        name: str | None = None,
    ) -> Edge:
        edge_name = name or f"{source}->{target}#{len(self.edges)}"
        return self.add_edge(
            Edge(edge_name, source, target, production, consumption,
                 initial_tokens)
        )

    # -- queries -----------------------------------------------------------

    def in_edges(self, actor: str) -> tuple[Edge, ...]:
        return tuple(e for e in self.edges.values() if e.target == actor)

    def out_edges(self, actor: str) -> tuple[Edge, ...]:
        return tuple(e for e in self.edges.values() if e.source == actor)

    def is_hsdf(self) -> bool:
        """True when every rate is 1 (homogeneous SDF)."""
        return all(
            e.production == 1 and e.consumption == 1
            for e in self.edges.values()
        )

    def initial_marking(self) -> dict[str, int]:
        return {name: e.initial_tokens for name, e in self.edges.items()}

    def __len__(self) -> int:
        return len(self.actors)

    def __repr__(self) -> str:
        return (
            f"<SdfGraph {self.name!r}: {len(self.actors)} actors, "
            f"{len(self.edges)} edges>"
        )
