"""Validation phase: SDF modelling and state-space throughput analysis."""

from repro.validation.analysis import (
    InconsistentGraphError,
    dead_actors,
    is_consistent,
    iteration_duration_bound,
    repetition_vector,
)
from repro.validation.builder import (
    SdfModelOptions,
    comm_actor_name,
    layout_to_sdf,
)
from repro.validation.mcr import (
    McrError,
    analytical_throughput,
    maximum_cycle_ratio,
)
from repro.validation.sdf import Actor, Edge, SdfError, SdfGraph
from repro.validation.throughput import (
    ThroughputError,
    ThroughputResult,
    analyze_throughput,
)
from repro.validation.validator import (
    VALIDATION_METHODS,
    ConstraintCheck,
    ValidationError,
    ValidationReport,
    default_reference_task,
    validate_layout,
)

__all__ = [
    "Actor",
    "McrError",
    "VALIDATION_METHODS",
    "ConstraintCheck",
    "Edge",
    "InconsistentGraphError",
    "SdfError",
    "SdfGraph",
    "SdfModelOptions",
    "ThroughputError",
    "ThroughputResult",
    "ValidationError",
    "ValidationReport",
    "analytical_throughput",
    "analyze_throughput",
    "comm_actor_name",
    "dead_actors",
    "default_reference_task",
    "is_consistent",
    "iteration_duration_bound",
    "layout_to_sdf",
    "maximum_cycle_ratio",
    "repetition_vector",
    "validate_layout",
]
