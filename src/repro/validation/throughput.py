"""Self-timed state-space throughput analysis (paper refs [5], [13]).

"With a state-space exploration of the SDF graph, presented in [5],
[13], we calculate the throughput of the corresponding application,
which determines whether any throughput or latency constraint is
violated."

For an SDF graph with deterministic firing durations, self-timed
execution (every actor fires as soon as it is enabled) is itself
deterministic, so the reachable state space is a single trace that,
for a consistent and deadlock-free graph, ends in a cycle: a
*transient phase* followed by a *periodic phase* [13].  We simulate
the operational semantics with a discrete-event engine, hash the full
execution state at iteration boundaries of a reference actor, and read
the throughput off the recurrent state:

    throughput(actor) = firings of that actor per time unit
                      = repetitions(actor) * iterations / period.

Auto-concurrency is disallowed (an actor models a task on one
processing element and can run at most one firing at a time), matching
the task-on-tile semantics of the execution layout.

The paper observes that "the validation phase ... clearly becomes
problematic when the complexity of the task graph increases" — the
transient phase of a deep pipeline is long, and every state must be
hashed.  The engine therefore indexes the graph once up front and only
hashes states at reference-iteration boundaries.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.validation.analysis import repetition_vector
from repro.validation.sdf import SdfError, SdfGraph

#: hard cap on simulated firings before giving up on cycle detection
DEFAULT_MAX_FIRINGS = 500_000


class ThroughputError(SdfError):
    """State-space exploration failed (no recurrence within the cap)."""


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of the state-space exploration."""

    #: firings per time unit for every actor in the periodic phase
    throughput: dict[str, float]
    #: period of the recurrent state cycle; 0 for empty/deadlocked graphs
    period: float
    #: graph iterations contained in one period
    iterations_per_period: int
    #: simulated time at which the periodic phase was entered
    transient: float
    #: True when the graph deadlocked instead of cycling
    deadlocked: bool = False
    #: total firings simulated (a work measure for the Fig. 7 analysis)
    firings_simulated: int = 0

    def of(self, actor: str) -> float:
        try:
            return self.throughput[actor]
        except KeyError:
            raise ThroughputError(f"unknown actor {actor!r}") from None


class _IndexedGraph:
    """Array-indexed view of an SdfGraph for the hot simulation loop."""

    def __init__(self, graph: SdfGraph):
        self.actor_names = sorted(graph.actors)
        self.index_of = {name: i for i, name in enumerate(self.actor_names)}
        self.durations = [graph.actor(n).duration for n in self.actor_names]
        self.edge_names = sorted(graph.edges)
        edge_index = {name: i for i, name in enumerate(self.edge_names)}
        n = len(self.actor_names)
        #: per actor: list of (edge_idx, consumption) / (edge_idx, production)
        self.inputs: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        self.outputs: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        #: actors whose enabledness can change when this edge gains tokens
        self.consumers_of_edge: list[int] = [0] * len(self.edge_names)
        for name in self.edge_names:
            edge = graph.edges[name]
            e = edge_index[name]
            src = self.index_of[edge.source]
            dst = self.index_of[edge.target]
            self.inputs[dst].append((e, edge.consumption))
            self.outputs[src].append((e, edge.production))
            self.consumers_of_edge[e] = dst
        self.initial_tokens = [
            graph.edges[name].initial_tokens for name in self.edge_names
        ]


def analyze_throughput(
    graph: SdfGraph,
    max_firings: int = DEFAULT_MAX_FIRINGS,
) -> ThroughputResult:
    """Simulate self-timed execution until a state recurrence.

    Returns a :class:`ThroughputResult`; a deadlocked graph yields all
    zero throughput with ``deadlocked=True``.  Raises
    :class:`ThroughputError` if no recurrence is found within
    ``max_firings`` (for consistent graphs with rational durations this
    means the cap is too low).
    """
    if not graph.actors:
        return ThroughputResult({}, 0.0, 0, 0.0)
    repetitions = repetition_vector(graph)
    indexed = _IndexedGraph(graph)
    n = len(indexed.actor_names)

    # reference actor: fewest repetitions (cheapest boundary detection),
    # ties broken by name for determinism
    reference_name = min(
        indexed.actor_names, key=lambda a: (repetitions[a], a)
    )
    reference = indexed.index_of[reference_name]
    reference_goal = repetitions[reference_name]

    tokens = list(indexed.initial_tokens)
    busy = [False] * n
    fired = [0] * n
    #: (finish_time, sequence, actor index)
    active: list[tuple[float, int, int]] = []
    now = 0.0
    sequence = 0
    total_firings = 0

    def enabled(actor: int) -> bool:
        if busy[actor]:
            return False
        return all(tokens[e] >= need for e, need in indexed.inputs[actor])

    def start(actor: int) -> None:
        nonlocal sequence
        for e, need in indexed.inputs[actor]:
            tokens[e] -= need
        heapq.heappush(active, (now + indexed.durations[actor], sequence, actor))
        busy[actor] = True
        sequence += 1

    # initial wave
    for actor in range(n):
        if enabled(actor):
            start(actor)
    if not active:
        return ThroughputResult(
            {a: 0.0 for a in indexed.actor_names}, 0.0, 0, 0.0,
            deadlocked=True,
        )

    #: states observed at reference boundaries: signature -> (time, iters)
    seen: dict[tuple, tuple[float, int]] = {}

    while total_firings < max_firings:
        # complete every firing scheduled for the next timestamp
        finish, _seq, actor = heapq.heappop(active)
        now = finish
        completed = [actor]
        while active and active[0][0] == now:
            completed.append(heapq.heappop(active)[2])
        candidates: set[int] = set()
        for done in completed:
            busy[done] = False
            fired[done] += 1
            total_firings += 1
            candidates.add(done)  # may restart immediately
            for e, amount in indexed.outputs[done]:
                tokens[e] += amount
                candidates.add(indexed.consumers_of_edge[e])
        for candidate in sorted(candidates):
            if enabled(candidate):
                start(candidate)

        if not active:
            return ThroughputResult(
                {a: 0.0 for a in indexed.actor_names},
                0.0, 0, now, deadlocked=True,
                firings_simulated=total_firings,
            )

        # recurrence check at reference-iteration boundaries only
        if reference in completed:
            iterations, remainder = divmod(fired[reference], reference_goal)
            if remainder == 0:
                signature = (
                    tuple(tokens),
                    tuple(sorted(
                        (a, round(t - now, 9)) for t, _s, a in active
                    )),
                    tuple(busy),
                )
                if signature in seen:
                    first_time, first_iterations = seen[signature]
                    period = now - first_time
                    cycle_iterations = iterations - first_iterations
                    if period > 0 and cycle_iterations > 0:
                        throughput = {
                            name: repetitions[name] * cycle_iterations / period
                            for name in indexed.actor_names
                        }
                        return ThroughputResult(
                            throughput=throughput,
                            period=period,
                            iterations_per_period=cycle_iterations,
                            transient=first_time,
                            firings_simulated=total_firings,
                        )
                    # zero-time cycle cannot happen with positive
                    # durations; refresh and continue
                seen[signature] = (now, iterations)

    raise ThroughputError(
        f"no recurrent state within {max_firings} firings of {graph.name!r}"
    )
