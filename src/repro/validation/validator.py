"""Validation phase: check performance constraints on a layout.

"The performance constraints given in the application specification
are validated against the performance provided by the execution layout
derived from the previous phases" (Section I).  Latency constraints
are first converted to throughput constraints [12]
(:mod:`repro.apps.constraints`), the layout is translated into an
HSDF graph, and its throughput is computed by self-timed state-space
exploration [5][13].

Matching the paper's experimental protocol, the resource manager can
run validation in three modes: ``enforce`` (reject on violation),
``report`` (compute, record, never reject — used for Table I, since
"it is difficult to generate reasonable performance constraints
automatically, we do not reject applications in the validation
phase"), and ``skip``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.constraints import ThroughputConstraint, normalize
from repro.apps.implementations import Implementation
from repro.apps.taskgraph import Application
from repro.arch.state import AllocationState, ChannelReservation
from repro.validation.builder import SdfModelOptions, layout_to_sdf
from repro.validation.mcr import analytical_throughput, maximum_cycle_ratio
from repro.validation.throughput import (
    ThroughputResult,
    analyze_throughput,
)

#: throughput engines: exact state-space simulation [5][13], or the
#: maximum-cycle-ratio analysis the paper proposes as future work [18]
VALIDATION_METHODS = ("simulation", "analytical")


class ValidationError(RuntimeError):
    """The layout violates at least one performance constraint."""


@dataclass(frozen=True)
class ConstraintCheck:
    constraint: ThroughputConstraint
    achieved: float
    satisfied: bool


@dataclass
class ValidationReport:
    """Throughput analysis outcome plus per-constraint verdicts."""

    throughput: ThroughputResult | None
    checks: list[ConstraintCheck] = field(default_factory=list)
    deadlocked: bool = False

    @property
    def satisfied(self) -> bool:
        return not self.deadlocked and all(c.satisfied for c in self.checks)

    def violations(self) -> tuple[ConstraintCheck, ...]:
        return tuple(c for c in self.checks if not c.satisfied)


def default_reference_task(app: Application) -> str:
    """The task throughput is measured at when a constraint names none.

    Preference order: first declared ``output``-role task, else the
    first sink (no outgoing channels), else the alphabetically first
    task.  Deterministic by construction.
    """
    outputs = app.roles("output")
    if outputs:
        return min(t.name for t in outputs)
    sinks = [t.name for t in app.tasks.values() if not app.successors(t.name)]
    if sinks:
        return min(sinks)
    return min(app.tasks)


def validate_layout(
    app: Application,
    binding: dict[str, Implementation],
    placement: dict[str, str],
    routes: dict[str, ChannelReservation],
    state: AllocationState,
    options: SdfModelOptions = SdfModelOptions(),
    max_firings: int | None = None,
    method: str = "simulation",
) -> ValidationReport:
    """Compute the layout's throughput and evaluate every constraint.

    Never raises on violation — it *reports*; enforcement policy is
    the manager's job.  Applications without constraints still get a
    throughput analysis (the result feeds Fig. 7's validation-phase
    timing).

    ``method`` selects the throughput engine: ``"simulation"`` (exact
    state-space exploration, the paper's approach) or ``"analytical"``
    (maximum cycle ratio — the faster scheme the paper proposes as
    future work; exact for the strongly connected HSDF graphs the
    layout translation produces).
    """
    if method not in VALIDATION_METHODS:
        raise ValueError(
            f"method must be one of {VALIDATION_METHODS}, got {method!r}"
        )
    graph = layout_to_sdf(app, binding, placement, routes, state, options)
    if method == "analytical":
        rates = analytical_throughput(graph)
        deadlocked = bool(rates) and all(r == 0.0 for r in rates.values())
        ratio = maximum_cycle_ratio(graph)
        result = ThroughputResult(
            throughput=rates,
            period=0.0 if ratio == float("inf") else ratio,
            iterations_per_period=1,
            transient=0.0,
            deadlocked=deadlocked,
        )
    else:
        kwargs = {} if max_firings is None else {"max_firings": max_firings}
        result = analyze_throughput(graph, **kwargs)
    report = ValidationReport(throughput=result, deadlocked=result.deadlocked)

    for constraint in normalize(app.constraints):
        reference = constraint.reference_task or default_reference_task(app)
        achieved = 0.0 if result.deadlocked else result.of(reference)
        report.checks.append(
            ConstraintCheck(
                constraint=constraint,
                achieved=achieved,
                satisfied=constraint.satisfied_by(achieved),
            )
        )
    return report
