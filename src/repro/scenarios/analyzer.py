"""Cross-cell statistics: per-condition rollups and comparisons.

:class:`ResultAnalyzer` consumes the per-cell dicts produced by
:func:`repro.scenarios.runner.run_cell` and renders the POMA-style
aggregation layer (SNIPPETS.md Snippet 3): per-condition summary
tables on every axis (built on
:class:`repro.obs.stats.StatsAggregator`), a best-strategy-per-
condition table, speedup tables for the wall-clock toggles
(fastpath, incremental) and a distance-field hit/repair rollup.

The analysis splits like the cells do: everything under
``"decisions"``/``"best_strategy"``/``"distfield"`` is deterministic
(derived from admission outcomes alone); everything under
``"timing"`` is wall-clock and excluded from
:func:`repro.scenarios.runner.canonical_payload`.
"""

from __future__ import annotations

from repro.obs.stats import StatsAggregator, mean

__all__ = ["ResultAnalyzer"]

#: per-cell decision metrics rolled up per condition
_DECISION_METRICS = (
    "goodput",
    "blocking_probability",
    "mean_utilization",
    "peak_queue_depth",
)
#: axes a condition table is rendered for
_AXES = (
    "topology", "traffic", "mapper", "fastpath", "incremental", "shards",
)
#: wall-clock toggles with on/off speedup tables
_TOGGLES = ("fastpath", "incremental")


class ResultAnalyzer:
    """Aggregate sweep cells into per-condition/per-phase statistics."""

    def __init__(self, cells: list[dict]) -> None:
        self.cells = list(cells)

    # -- per-condition tables ---------------------------------------------

    def per_condition(self, axis: str) -> dict:
        """Summary rows for every value of ``axis`` (skips constants)."""
        if axis not in _AXES:
            raise ValueError(f"unknown axis {axis!r}; choose from {_AXES}")
        aggregator = StatsAggregator()
        for cell in self.cells:
            condition = str(cell["axes"][axis])
            decisions = cell["decisions"]
            for metric in _DECISION_METRICS:
                aggregator.add(condition, metric, decisions[metric])
            wait = decisions["admission_wait"].get("p95")
            if wait is not None:
                aggregator.add(condition, "wait_p95", wait)
        return aggregator.report()

    def condition_tables(self) -> dict:
        """Per-condition tables for every axis with >= 2 values."""
        tables = {}
        for axis in _AXES:
            values = {str(cell["axes"][axis]) for cell in self.cells}
            if len(values) >= 2:
                tables[axis] = self.per_condition(axis)
        return tables

    # -- comparisons -------------------------------------------------------

    def best_strategy(self) -> dict:
        """The winning mapper per (topology, traffic) condition.

        Winner = highest goodput, ties broken by lower blocking then
        mapper name — all decision metrics, so the table is
        deterministic.  Only baseline cells (fastpath + incremental
        both on, unsharded) compete, keeping the comparison apples to
        apples when those axes are swept too.
        """
        groups: dict[tuple[str, str], list[dict]] = {}
        for cell in self.cells:
            axes = cell["axes"]
            if not (axes["fastpath"] and axes["incremental"]):
                continue
            if axes["shards"] != 1:
                continue
            groups.setdefault(
                (axes["topology"], axes["traffic"]), []
            ).append(cell)
        table = {}
        for (topology, traffic), members in sorted(groups.items()):
            if len(members) < 2:
                continue
            ranked = sorted(
                members,
                key=lambda cell: (
                    -cell["decisions"]["goodput"],
                    cell["decisions"]["blocking_probability"],
                    cell["axes"]["mapper"],
                ),
            )
            best = ranked[0]
            runner_up = ranked[1]
            table[f"{topology}|{traffic}"] = {
                "mapper": best["axes"]["mapper"],
                "goodput": best["decisions"]["goodput"],
                "blocking": best["decisions"]["blocking_probability"],
                "runner_up": runner_up["axes"]["mapper"],
                "margin": (
                    best["decisions"]["goodput"]
                    - runner_up["decisions"]["goodput"]
                ),
            }
        return table

    def speedup_table(self, toggle: str) -> dict:
        """Wall-clock ratio off/on for cells differing only in ``toggle``.

        A ratio above 1.0 means the toggle pays off.  Wall-clock, so
        this lives in the analysis ``"timing"`` section.
        """
        if toggle not in _TOGGLES:
            raise ValueError(
                f"unknown toggle {toggle!r}; choose from {_TOGGLES}"
            )
        by_key: dict[tuple, dict] = {}
        for cell in self.cells:
            axes = dict(cell["axes"])
            state = axes.pop(toggle)
            key = tuple(sorted(axes.items()))
            by_key.setdefault(key, {})[state] = cell
        table = {}
        for pair in by_key.values():
            if True not in pair or False not in pair:
                continue
            on, off = pair[True], pair[False]
            wall_on = on["timing"]["wall_seconds"]
            wall_off = off["timing"]["wall_seconds"]
            table[on["cell_id"]] = {
                "wall_on": wall_on,
                "wall_off": wall_off,
                "speedup": (wall_off / wall_on) if wall_on > 0 else None,
                # toggled pairs share a recipe seed, so their decision
                # streams must match — a False here is a determinism bug
                "decisions_identical": (
                    on["decisions"]["trace_digest"]
                    == off["decisions"]["trace_digest"]
                ),
            }
        return table

    def distfield_summary(self) -> dict:
        """Distance-field hit/repair rates per topology (incremental on)."""
        table: dict[str, dict] = {}
        for cell in self.cells:
            if not cell["axes"]["incremental"]:
                continue
            stats = cell["decisions"].get("distfield_stats")
            if not stats:
                continue
            row = table.setdefault(
                cell["axes"]["topology"],
                {name: 0 for name in stats},
            )
            for name, value in stats.items():
                row[name] = row.get(name, 0) + value
        for row in table.values():
            lookups = row.get("hits", 0) + row.get("misses", 0)
            row["hit_rate"] = (
                row.get("hits", 0) / lookups if lookups else None
            )
            rings = (
                row.get("rings_reused", 0) + row.get("rings_recomputed", 0)
            )
            row["ring_reuse_rate"] = (
                row.get("rings_reused", 0) / rings if rings else None
            )
        return dict(sorted(table.items()))

    # -- the full bundle ---------------------------------------------------

    def analysis(self) -> dict:
        """Everything, split into deterministic vs wall-clock sections."""
        timing = {
            toggle: self.speedup_table(toggle) for toggle in _TOGGLES
        }
        timing = {
            toggle: table for toggle, table in timing.items() if table
        }
        walls = [cell["timing"]["wall_seconds"] for cell in self.cells]
        shares = [cell["timing"]["mapping_share"] for cell in self.cells]
        timing["mean_wall_seconds"] = mean(walls) if walls else None
        timing["mean_mapping_share"] = mean(shares) if shares else None
        return {
            "decisions": self.condition_tables(),
            "best_strategy": self.best_strategy(),
            "distfield": self.distfield_summary(),
            "timing": timing,
        }
