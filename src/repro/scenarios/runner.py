"""Sweep execution: matrix cells -> per-cell results, serial or pooled.

:func:`run_sweep` expands a :class:`~repro.scenarios.matrix
.ScenarioMatrix` and drives every cell through the existing recipe
entry points (:func:`repro.sim.service.run_recipe` for single-manager
cells, :func:`repro.cluster.sim.run_cluster_recipe` for sharded ones).
With ``jobs > 1`` cells run in a :mod:`multiprocessing` pool;
``Pool.map`` preserves submission order and every cell's randomness
flows from its own recipe seed, so a parallel sweep is bit-identical
to a serial one (asserted by ``tests/test_scenarios.py`` and by
``repro sweep --verify``).

Each cell result is split into two sections: ``"decisions"`` — the
deterministic admission outcome (counts, blocking, waits, goodput,
fastpath/distfield counters, trace digest) — and ``"timing"`` — wall
clock, throughput and phase shares, which vary run to run.
:func:`canonical_payload` serialises a report with the timing and
environment stripped; two sweeps of the same matrix and seed produce
byte-identical canonical payloads.
"""

from __future__ import annotations

import json
import multiprocessing
import platform as _platform
import sys
import time as _time

from repro.cluster.sim import run_cluster_recipe
from repro.scenarios.analyzer import ResultAnalyzer
from repro.scenarios.matrix import ScenarioMatrix
from repro.sim.service import run_recipe
from repro.sim.trace import trace_digest

__all__ = ["run_cell", "run_sweep", "canonical_payload"]


def run_cell(payload: dict) -> dict:
    """Execute one cell payload (module-level, so pools can pickle it)."""
    recipe = payload["recipe"]
    runner = run_cluster_recipe if "shards" in recipe else run_recipe
    result = runner(
        recipe,
        fastpath=payload["fastpath"],
        incremental=payload["incremental"],
    )
    summary = result.metrics.summary()
    duration = float(recipe["duration"])
    phase_latency = summary["phase_latency"]
    total_ms = sum(row["total_ms"] for row in phase_latency.values())
    map_ms = phase_latency.get("mapping", {}).get("total_ms", 0.0)
    return {
        "cell_id": payload["cell_id"],
        "axes": payload["axes"],
        "seed": payload["seed"],
        "decisions": {
            "offered": summary["offered"],
            "admitted": summary["admitted"],
            "departed": summary["departed"],
            "dropped": summary["dropped"],
            "drops_by_reason": summary["drops_by_reason"],
            "rejections_by_phase": summary["rejections_by_phase"],
            "blocking_probability": summary["blocking_probability"],
            "admission_wait": summary["admission_wait"],
            "per_class": {
                name: row["admission_ratio"]
                for name, row in summary["per_class"].items()
            },
            "goodput": summary["admitted"] / duration,
            "mean_utilization": summary["mean_utilization"],
            "peak_queue_depth": summary["peak_queue_depth"],
            "faults": summary["faults"],
            "events_processed": result.events_processed,
            "fastpath_stats": result.fastpath_stats,
            "distfield_stats": result.distfield_stats,
            "trace_digest": trace_digest(result.trace),
        },
        "timing": {
            "wall_seconds": result.wall_seconds,
            "events_per_second": result.events_per_second,
            "phase_total_ms": total_ms,
            "mapping_share": (map_ms / total_ms) if total_ms > 0 else 0.0,
        },
    }


def run_sweep(
    matrix: ScenarioMatrix,
    jobs: int = 1,
    progress=None,
) -> dict:
    """Run every cell of ``matrix``; -> the full JSON-able report.

    ``jobs <= 1`` runs in-process; ``jobs > 1`` fans cells out to a
    worker pool.  ``progress`` (optional callable, e.g. ``print``)
    receives one line per phase for long sweeps.
    """
    cells = matrix.expand()
    payloads = [cell.payload() for cell in cells]
    say = progress or (lambda message: None)
    say(
        f"[{matrix.name}] {len(payloads)} cells, "
        f"jobs={max(1, jobs)}"
    )
    started = _time.perf_counter()
    if jobs > 1:
        with multiprocessing.Pool(processes=jobs) as pool:
            results = pool.map(run_cell, payloads)
    else:
        results = [run_cell(payload) for payload in payloads]
    elapsed = _time.perf_counter() - started
    say(f"[{matrix.name}] swept in {elapsed:.1f}s")
    analysis = ResultAnalyzer(results).analysis()
    return {
        "name": matrix.name,
        "matrix": matrix.describe(),
        "cells": results,
        "analysis": analysis,
        "environment": {
            "python": sys.version.split()[0],
            "platform": _platform.platform(),
            "jobs": max(1, jobs),
            "wall_seconds": elapsed,
        },
    }


def canonical_payload(report: dict) -> str:
    """The deterministic projection of a sweep report, as canonical JSON.

    Strips every wall-clock-dependent section — per-cell ``"timing"``,
    the analysis ``"timing"`` block and the ``"environment"`` stanza —
    and renders the rest with sorted keys and fixed separators.  Two
    sweeps of the same matrix and seed (serial or parallel, any job
    count) produce byte-identical canonical payloads; tests and
    ``repro sweep --verify`` assert equality on exactly this string.
    """
    projection = {
        "name": report["name"],
        "matrix": report["matrix"],
        "cells": [
            {key: value for key, value in cell.items() if key != "timing"}
            for cell in report["cells"]
        ],
        "analysis": {
            key: value
            for key, value in report["analysis"].items()
            if key != "timing"
        },
    }
    return json.dumps(projection, sort_keys=True, separators=(",", ":"))
