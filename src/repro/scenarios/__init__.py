"""repro.scenarios — declarative scenario matrices and strategy sweeps.

The paper evaluates Kairos at a single operating point; this package
is the "scenario diversity" lever (ROADMAP item 3) that sweeps the
reproduction across topology x traffic x strategy grids:

* :mod:`repro.scenarios.matrix` — :class:`ScenarioMatrix` /
  :class:`ScenarioCell`: axis cross products expanded into seeded,
  JSON-able recipes (plus the ``smoke``/``default``/``storm``/
  ``large``/``cluster`` presets),
* :mod:`repro.scenarios.runner` — serial or multiprocessing sweep
  execution with bit-identical results either way, and the canonical
  (timing-stripped) payload used for determinism assertions,
* :mod:`repro.scenarios.analyzer` — :class:`ResultAnalyzer`:
  per-condition rollups, best-strategy and speedup tables, the
  distance-field hit/repair summary,
* :mod:`repro.scenarios.report` — markdown rendering for
  ``BENCH_scenarios.md``.

``repro sweep`` (see :mod:`repro.cli`) and
``benchmarks/run_scenarios_bench.py`` drive it; ``docs/scenarios.md``
documents the matrix schema and how to add an axis.
"""

from repro.scenarios.analyzer import ResultAnalyzer
from repro.scenarios.matrix import (
    ScenarioCell,
    ScenarioMatrix,
    cluster_matrix,
    default_matrix,
    large_matrix,
    smoke_matrix,
    storm_matrix,
)
from repro.scenarios.report import render_report, render_reports
from repro.scenarios.runner import canonical_payload, run_cell, run_sweep

__all__ = [
    "ResultAnalyzer",
    "ScenarioCell",
    "ScenarioMatrix",
    "canonical_payload",
    "cluster_matrix",
    "default_matrix",
    "large_matrix",
    "render_report",
    "render_reports",
    "run_cell",
    "run_sweep",
    "smoke_matrix",
    "storm_matrix",
]
