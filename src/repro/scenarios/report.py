"""Markdown rendering of sweep reports (the human half of the bench).

:func:`render_report` turns the JSON report produced by
:func:`repro.scenarios.runner.run_sweep` into the markdown document
committed as ``BENCH_scenarios.md`` — matrix overview, per-condition
tables, best-strategy-per-condition, toggle speedups, the
distance-field rollup and a per-cell appendix.
"""

from __future__ import annotations

__all__ = ["render_report", "render_reports"]


def _fmt(value, digits: int = 3) -> str:
    if value is None:
        return "—"
    if isinstance(value, bool):
        return "on" if value else "off"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def _table(headers: list[str], rows: list[list]) -> list[str]:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_fmt(cell) for cell in row) + " |")
    lines.append("")
    return lines


def render_report(report: dict) -> str:
    """One sweep report -> a markdown section."""
    matrix = report["matrix"]
    analysis = report["analysis"]
    cells = report["cells"]
    lines = [f"## Matrix `{report['name']}`", ""]
    lines.append(
        f"{len(cells)} cells — topologies "
        f"{', '.join(f'`{spec}`' for spec in matrix['topologies'])}; "
        f"traffic {', '.join(f'`{shape}`' for shape in matrix['traffic'])}; "
        f"mappers {', '.join(f'`{name}`' for name in matrix['mappers'])}; "
        f"duration {_fmt(matrix['duration'], 1)}s, "
        f"seed {matrix['seed']}, rate x{_fmt(matrix['rate_scale'], 1)}."
    )
    lines.append("")

    for axis, table in analysis["decisions"].items():
        lines.append(f"### By {axis}")
        lines.append("")
        rows = []
        for condition, metrics in table.items():
            rows.append([
                condition,
                metrics["goodput"]["mean"],
                metrics["blocking_probability"]["mean"],
                metrics.get("wait_p95", {}).get("mean"),
                metrics["mean_utilization"]["mean"],
                metrics["goodput"]["count"],
            ])
        lines.extend(_table(
            [axis, "goodput (mean)", "blocking (mean)",
             "wait p95 (mean)", "utilization (mean)", "cells"],
            rows,
        ))

    best = analysis.get("best_strategy")
    if best:
        lines.append("### Best mapper per condition")
        lines.append("")
        rows = [
            [condition, row["mapper"], row["goodput"], row["blocking"],
             row["runner_up"], row["margin"]]
            for condition, row in best.items()
        ]
        lines.extend(_table(
            ["topology|traffic", "best", "goodput", "blocking",
             "runner-up", "margin"],
            rows,
        ))

    distfield = analysis.get("distfield")
    if distfield:
        lines.append("### Distance-field engine")
        lines.append("")
        rows = [
            [topology, row.get("hits", 0), row.get("misses", 0),
             row.get("hit_rate"), row.get("repairs", 0),
             row.get("ring_reuse_rate")]
            for topology, row in distfield.items()
        ]
        lines.extend(_table(
            ["topology", "hits", "misses", "hit rate", "repairs",
             "ring reuse"],
            rows,
        ))

    timing = analysis.get("timing", {})
    for toggle in ("fastpath", "incremental"):
        table = timing.get(toggle)
        if not table:
            continue
        lines.append(f"### {toggle.capitalize()} speedup (wall-clock)")
        lines.append("")
        rows = [
            [cell_id, row["wall_on"], row["wall_off"], row["speedup"]]
            for cell_id, row in sorted(table.items())
        ]
        lines.extend(_table(
            ["cell", "wall on (s)", "wall off (s)", "speedup"], rows,
        ))

    lines.append("### Cells")
    lines.append("")
    rows = []
    for cell in cells:
        decisions = cell["decisions"]
        rows.append([
            cell["cell_id"],
            decisions["offered"],
            decisions["admitted"],
            decisions["blocking_probability"],
            decisions["goodput"],
            cell["timing"]["wall_seconds"],
        ])
    lines.extend(_table(
        ["cell", "offered", "admitted", "blocking", "goodput",
         "wall (s)"],
        rows,
    ))
    return "\n".join(lines)


def render_reports(reports: list[dict], title: str) -> str:
    """Several sweep reports -> one markdown document."""
    lines = [f"# {title}", ""]
    total = sum(len(report["cells"]) for report in reports)
    lines.append(
        f"{len(reports)} matrices, {total} cells. Decision metrics are "
        "deterministic per seed; wall-clock columns vary by host."
    )
    lines.append("")
    for report in reports:
        lines.append(render_report(report))
    return "\n".join(lines)
