"""Declarative scenario matrices: axes -> seeded cells.

A :class:`ScenarioMatrix` is the cross product of three axis groups —
*topology* (platform specs, see
:func:`repro.sim.service.platform_from_spec`), *traffic* (named shapes
from :data:`repro.sim.traffic.TRAFFIC_SHAPES`, plus the synthetic
``"fault_storm"`` condition which drives the default mix through a
correlated :class:`~repro.arch.faults.FaultCampaign` storm) and
*strategy* (registered mappers, fastpath on/off, incremental
distance-field on/off, shard counts).  :meth:`ScenarioMatrix.expand`
turns every combination into a :class:`ScenarioCell` holding a
complete, JSON-able recipe plus a per-cell seed derived from the
matrix seed and the cell's decision-relevant coordinates with
:func:`zlib.crc32` — stable across processes (unlike builtin
``hash``), so a parallel sweep reproduces a serial one bit-for-bit.

Axis values that change *decisions* (topology, traffic, mapper,
shards) live inside the recipe; fastpath/incremental change only
wall-clock and ride alongside it, exactly as in
:func:`repro.sim.service.run_recipe`.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, field, fields

from repro.api.pipeline import available_strategies
from repro.cluster.sim import build_cluster_recipe
from repro.sim.service import _parse_platform_spec, build_recipe
from repro.sim.traffic import TRAFFIC_SHAPES

__all__ = [
    "ScenarioCell",
    "ScenarioMatrix",
    "smoke_matrix",
    "default_matrix",
    "large_matrix",
    "storm_matrix",
    "cluster_matrix",
]

#: synthetic traffic condition: default mix under a correlated fault storm
FAULT_STORM = "fault_storm"


@dataclass(frozen=True)
class ScenarioCell:
    """One fully-resolved point of the matrix: axes + recipe + seed."""

    cell_id: str
    topology: str
    traffic: str
    mapper: str
    fastpath: bool
    incremental: bool
    shards: int
    seed: int
    recipe: dict

    def axes(self) -> dict:
        """The axis coordinates alone (labels for grouping/reports)."""
        return {
            "topology": self.topology,
            "traffic": self.traffic,
            "mapper": self.mapper,
            "fastpath": self.fastpath,
            "incremental": self.incremental,
            "shards": self.shards,
        }

    def payload(self) -> dict:
        """The picklable work unit handed to a sweep worker."""
        return {
            "cell_id": self.cell_id,
            "axes": self.axes(),
            "recipe": self.recipe,
            "fastpath": self.fastpath,
            "incremental": self.incremental,
            "seed": self.seed,
        }


def _cell_seed(matrix_seed: int, cell_id: str) -> int:
    """Deterministic, process-stable per-cell seed."""
    return (matrix_seed * 1_000_003 + zlib.crc32(cell_id.encode())) % (
        1 << 31
    )


@dataclass(frozen=True)
class ScenarioMatrix:
    """The cross product of topology x traffic x strategy axes.

    Axis tuples multiply; scalars (policy, duration, rates, ...) are
    shared by every cell.  ``duration_overrides`` maps a topology spec
    to a different horizon so 64x64 cells can run shorter than 12x12
    ones without forking the matrix.  Validation happens at
    construction — axis typos fail before any platform is built.
    """

    name: str
    topologies: tuple[str, ...]
    traffic: tuple[str, ...] = ("default",)
    mappers: tuple[str, ...] = ("kairos",)
    fastpath: tuple[bool, ...] = (True,)
    incremental: tuple[bool, ...] = (True,)
    shards: tuple[int, ...] = (1,)
    policy: str = "fifo"
    duration: float = 20.0
    seed: int = 0
    rate_scale: float = 1.0
    pool_size: int = 8
    sample_interval: float = 5.0
    warmup: float = 0.0
    storm_epicenters: int = 3
    storm_radius: int = 2
    duration_overrides: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for axis in ("topologies", "traffic", "mappers", "fastpath",
                     "incremental", "shards"):
            if not getattr(self, axis):
                raise ValueError(f"matrix axis {axis!r} must be non-empty")
        for spec in self.topologies:
            _parse_platform_spec(spec)
        known_shapes = set(TRAFFIC_SHAPES) | {FAULT_STORM}
        for shape in self.traffic:
            if shape not in known_shapes:
                raise ValueError(
                    f"unknown traffic shape {shape!r}; choose from "
                    f"{sorted(known_shapes)}"
                )
        registered = available_strategies()["mapper"]
        for mapper in self.mappers:
            if mapper not in registered:
                raise ValueError(
                    f"unknown mapper {mapper!r}; registered: {registered}"
                )
        for count in self.shards:
            if count < 1:
                raise ValueError("shard counts must be >= 1")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        for spec, horizon in self.duration_overrides.items():
            _parse_platform_spec(spec)
            if horizon <= 0:
                raise ValueError(
                    f"duration override for {spec!r} must be positive"
                )

    # -- expansion ---------------------------------------------------------

    def expand(self) -> list[ScenarioCell]:
        """Every axis combination as a seeded, recipe-carrying cell.

        Expansion order is fixed (topology, traffic, mapper, fastpath,
        incremental, shards nested left-to-right), so cell order — and
        with it the report layout — is deterministic.
        """
        cells = []
        for combo in itertools.product(
            self.topologies, self.traffic, self.mappers,
            self.fastpath, self.incremental, self.shards,
        ):
            cells.append(self._build_cell(*combo))
        return cells

    def _build_cell(
        self, topology: str, traffic: str, mapper: str,
        fastpath: bool, incremental: bool, shards: int,
    ) -> ScenarioCell:
        cell_id = (
            f"{topology}|{traffic}|{mapper}"
            f"|fp{int(fastpath)}|inc{int(incremental)}|sh{shards}"
        )
        # the seed ignores the wall-clock toggles: cells differing only
        # in fastpath/incremental share one recipe, so a toggled pair
        # has the same decision stream (what makes speedup tables an
        # apples-to-apples comparison — asserted in tests)
        condition_id = f"{topology}|{traffic}|{mapper}|sh{shards}"
        seed = _cell_seed(self.seed, condition_id)
        duration = float(
            self.duration_overrides.get(topology, self.duration)
        )
        shape = "default" if traffic == FAULT_STORM else traffic
        if shards > 1:
            family, dims = _parse_platform_spec(topology)
            if family != "mesh":
                raise ValueError(
                    f"cell {cell_id!r}: sharded cells need a mesh "
                    f"topology, got {topology!r}"
                )
            if mapper != "kairos":
                raise ValueError(
                    f"cell {cell_id!r}: sharded cells run the kairos "
                    f"mapper only (cluster shards own their pipelines)"
                )
            if traffic == FAULT_STORM:
                raise ValueError(
                    f"cell {cell_id!r}: fault storms are a single-"
                    "manager condition (clusters model shard kills)"
                )
            recipe = build_cluster_recipe(
                platform=f"{dims[0]}x{dims[1]}",
                shards=shards,
                duration=duration,
                seed=seed,
                policy=self.policy,
                rate_scale=self.rate_scale,
                pool_size=self.pool_size,
                sample_interval=self.sample_interval,
                warmup=self.warmup,
                traffic=shape,
            )
        else:
            recipe = build_recipe(
                platform=topology,
                duration=duration,
                seed=seed,
                policy=self.policy,
                rate_scale=self.rate_scale,
                pool_size=self.pool_size,
                sample_interval=self.sample_interval,
                warmup=self.warmup,
                traffic=shape,
                mapper=mapper,
                faults=(
                    self.storm_epicenters if traffic == FAULT_STORM else 0
                ),
                fault_storm=(
                    self.storm_radius if traffic == FAULT_STORM else 0
                ),
            )
        return ScenarioCell(
            cell_id=cell_id,
            topology=topology,
            traffic=traffic,
            mapper=mapper,
            fastpath=fastpath,
            incremental=incremental,
            shards=shards,
            seed=seed,
            recipe=recipe,
        )

    # -- (de)serialisation -------------------------------------------------

    def describe(self) -> dict:
        """A JSON-able spec; :meth:`from_spec` round-trips it."""
        spec = {}
        for item in fields(self):
            value = getattr(self, item.name)
            spec[item.name] = list(value) if isinstance(
                value, tuple) else value
        return spec

    @classmethod
    def from_spec(cls, spec: dict) -> "ScenarioMatrix":
        """Build a matrix from a JSON dict (tuple axes may be lists)."""
        known = {item.name for item in fields(cls)}
        unknown = set(spec) - known
        if unknown:
            raise ValueError(
                f"unknown matrix keys {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        kwargs = dict(spec)
        for axis in ("topologies", "traffic", "mappers", "fastpath",
                     "incremental", "shards"):
            if axis in kwargs:
                kwargs[axis] = tuple(kwargs[axis])
        return cls(**kwargs)


# -- presets ----------------------------------------------------------------


def smoke_matrix(seed: int = 0) -> ScenarioMatrix:
    """Tiny 2x2x2 grid for CI gates: seconds, not minutes."""
    return ScenarioMatrix(
        name="smoke",
        topologies=("mesh:6x6", "fat_tree:16"),
        traffic=("default", "hot_spot"),
        mappers=("kairos", "first_fit"),
        duration=8.0,
        seed=seed,
        rate_scale=2.0,
        sample_interval=2.0,
    )


def default_matrix(seed: int = 0) -> ScenarioMatrix:
    """The canonical grid: 4 topologies x 4 traffic shapes x 4 mappers.

    ``optimal`` is excluded on purpose: the exhaustive baseline
    raises on instances past its size guard, which on 12x12-class
    platforms means every admission degenerates to a mapping failure
    — a vacuous column, not a comparison.
    """
    return ScenarioMatrix(
        name="default",
        topologies=(
            "mesh:12x12", "torus:12x12", "hetmesh:12x12", "fat_tree:144",
        ),
        traffic=("default", "hot_spot", "diurnal_mmpp", "flash_crowd"),
        mappers=("kairos", "first_fit", "random", "annealing"),
        duration=30.0,
        seed=seed,
        rate_scale=4.0,
    )


def storm_matrix(seed: int = 0) -> ScenarioMatrix:
    """Fault storms across the mapper axis on the canonical mesh."""
    return ScenarioMatrix(
        name="storm",
        topologies=("mesh:12x12",),
        traffic=(FAULT_STORM,),
        mappers=("kairos", "first_fit", "random", "annealing"),
        duration=30.0,
        seed=seed,
        rate_scale=4.0,
        storm_epicenters=3,
        storm_radius=2,
    )


def large_matrix(seed: int = 0) -> ScenarioMatrix:
    """48x48 and 64x64 cells with the distance-field toggle swept.

    This is the grid that answers PR 4's open question — distfield
    hit/repair rates on large platforms (see docs/performance.md).
    """
    return ScenarioMatrix(
        name="large",
        topologies=("mesh:48x48", "mesh:64x64"),
        traffic=("default",),
        mappers=("kairos",),
        incremental=(True, False),
        duration=20.0,
        seed=seed,
        rate_scale=16.0,
        sample_interval=10.0,
    )


def cluster_matrix(seed: int = 0) -> ScenarioMatrix:
    """Sharded admission across traffic shapes (kairos mapper only)."""
    return ScenarioMatrix(
        name="cluster",
        topologies=("mesh:12x12",),
        traffic=("default", "hot_spot", "flash_crowd"),
        mappers=("kairos",),
        shards=(1, 2, 4),
        duration=30.0,
        seed=seed,
        rate_scale=4.0,
    )
