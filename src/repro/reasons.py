"""Machine-readable failure reason codes, shared across every layer.

Before the :mod:`repro.api` façade the library described *why* an
admission failed with free-form f-strings: the gate memo, the
:class:`~repro.manager.layout.AllocationFailure` exception, the sim
service's drop records and :class:`~repro.manager.kairos.RecoveryReport`
all carried strings that callers compared verbatim.  This module
interns those strings into one :class:`ReasonCode` enum so a decision
can be routed on (``code is ReasonCode.AGGREGATE_CAPACITY``) instead
of parsed.

Design constraints:

* **Trace compatibility** — the queue-policy drop reasons
  (``rejected``, ``queue_full``, ``timeout``, ``drained``,
  ``retries_exhausted``) appear literally inside recorded JSONL
  decision traces.  :class:`ReasonCode` is a :class:`~enum.StrEnum`
  whose values are exactly those strings, so passing a member where a
  string went before serialises to identical bytes and pre-existing
  traces replay clean.
* **No upward imports** — this module depends on nothing inside
  :mod:`repro`, so the phase layers (binding, mapping, routing,
  validation), the manager, the sim service and :mod:`repro.api` can
  all share it without import cycles.

Human-readable reasons are *not* going away: every failure still
carries its descriptive message.  The code classifies; the string
explains.
"""

from __future__ import annotations

import enum

__all__ = ["ReasonCode"]


class ReasonCode(enum.StrEnum):
    """Why an admission attempt (or queued request) did not succeed.

    Grouped by the layer that produces them; the generic per-phase
    ``*_INFEASIBLE`` members are fallbacks for failure sites that have
    not attached a more specific code (see :meth:`for_phase`).
    """

    # -- specification problems (pre-pipeline) -------------------------------
    INVALID_SPECIFICATION = "invalid_specification"

    # -- admission gate / binding phase --------------------------------------
    #: aggregate demand provably exceeds platform (or element-class)
    #: free capacity — the gate's layer-2 rejection
    AGGREGATE_CAPACITY = "aggregate_capacity"
    #: some task has no implementation with any feasible element right
    #: now — raised identically by the gate's layer 3 and the binder's
    #: first regret round
    NO_FEASIBLE_IMPLEMENTATION = "no_feasible_implementation"
    BINDING_INFEASIBLE = "binding_infeasible"

    # -- mapping phase --------------------------------------------------------
    #: no available element for the anchor (starting) task
    MAPPING_NO_ANCHOR = "mapping_no_anchor"
    #: ring search exhausted with tasks still unmapped
    MAPPING_SEARCH_EXHAUSTED = "mapping_search_exhausted"
    MAPPING_INFEASIBLE = "mapping_infeasible"

    # -- routing phase --------------------------------------------------------
    #: an endpoint cannot emit/absorb one more virtual channel
    #: (saturation fast-fail) or no path with capacity exists
    ROUTING_NO_PATH = "routing_no_path"
    ROUTING_SATURATED = "routing_saturated"
    ROUTING_UNMAPPED_ENDPOINT = "routing_unmapped_endpoint"
    ROUTING_INFEASIBLE = "routing_infeasible"

    # -- validation phase -----------------------------------------------------
    #: a throughput/latency constraint is violated (enforce mode)
    VALIDATION_CONSTRAINT = "validation_constraint"
    #: the dataflow graph deadlocks under the layout
    VALIDATION_DEADLOCK = "validation_deadlock"
    VALIDATION_INFEASIBLE = "validation_infeasible"

    # -- fault recovery -------------------------------------------------------
    #: recover() had no specification to re-allocate the app from
    RECOVERY_NO_SPECIFICATION = "recovery_no_specification"
    #: recovery could not re-place the app right now; it sits in the
    #: resilience requeue awaiting a repair or departure
    RECOVERY_DEFERRED = "recovery_deferred"
    #: the requeue retry budget ran out before capacity returned
    RECOVERY_RETRIES_EXHAUSTED = "recovery_retries_exhausted"
    #: the app's natural departure instant passed while it waited in
    #: the requeue — reviving it would leak a resident with no
    #: departure left to fire
    RECOVERY_EXPIRED = "recovery_expired"

    # -- queue-policy outcomes (the sim service's drop reasons; values
    # -- are the exact strings recorded in JSONL traces since PR 2) ----------
    REJECTED = "rejected"
    QUEUE_FULL = "queue_full"
    TIMEOUT = "timeout"
    DRAINED = "drained"
    RETRIES_EXHAUSTED = "retries_exhausted"

    # -- overload control (repro.overload; values are the exact strings
    # -- recorded in JSONL traces when an OverloadConfig is active) ----------
    #: the request's sim-time deadline budget elapsed before admission
    DEADLINE_EXPIRED = "deadline_expired"
    #: shed at arrival by the watermark backpressure controller
    SHED_WATERMARK = "shed_watermark"
    #: the retry policy's token budget was empty (anti-storm brake)
    RETRY_BUDGET_EXHAUSTED = "retry_budget_exhausted"
    #: every routable shard's circuit breaker refused the probe
    BREAKER_OPEN = "breaker_open"

    # -- plan/commit protocol -------------------------------------------------
    #: a plan's capacity epoch no longer matches the state (informational;
    #: commit() replans transparently rather than failing with this)
    EPOCH_CONFLICT = "epoch_conflict"

    # -- sharded cluster (repro.cluster) --------------------------------------
    #: the target shard is not accepting requests (crashed, or demoted
    #: by the liveness registry) — the router spills over to siblings
    SHARD_DOWN = "shard_down"
    #: no routable shard at all: the whole cluster is demoted
    CLUSTER_UNAVAILABLE = "cluster_unavailable"
    #: the coordinator could not split the application into connected
    #: parts, or the two-phase commit exhausted its retry budget
    CROSS_SHARD_INFEASIBLE = "cross_shard_infeasible"

    UNKNOWN = "unknown"

    @classmethod
    def for_phase(cls, phase) -> "ReasonCode":
        """Generic fallback code for a failure in ``phase``.

        ``phase`` is a :class:`repro.manager.layout.Phase` (matched by
        its ``value`` to avoid an import cycle).
        """
        return _PHASE_DEFAULTS.get(getattr(phase, "value", phase), cls.UNKNOWN)


_PHASE_DEFAULTS = {
    "binding": ReasonCode.BINDING_INFEASIBLE,
    "mapping": ReasonCode.MAPPING_INFEASIBLE,
    "routing": ReasonCode.ROUTING_INFEASIBLE,
    "validation": ReasonCode.VALIDATION_INFEASIBLE,
}
