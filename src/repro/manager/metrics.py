"""Metrics of the paper's evaluation: success rate, hops, fragmentation.

Figures 8 and 9 plot, against the *position in the application
sequence*, the mapping success rate, the average communication
resources (hops) allocated per channel, and the external resource
fragmentation of the platform.  :class:`SequenceRecorder` accumulates
exactly those series over repeated admission sequences, and
:func:`summarize_positions` aggregates over the 30 random sequences of
the paper's protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.manager.layout import ExecutionLayout, Phase
from repro.obs.stats import mean


@dataclass
class AttemptRecord:
    """Outcome of one allocation attempt at one sequence position."""

    position: int            #: 1-based position in the sequence
    app_name: str
    admitted: bool
    failed_phase: Phase | None = None
    hops_per_channel: float | None = None
    fragmentation_after: float = 0.0
    timings_ms: dict[str, float] = field(default_factory=dict)
    tasks: int = 0


@dataclass
class SequenceRecorder:
    """Collects attempt records for one admission sequence."""

    records: list[AttemptRecord] = field(default_factory=list)

    def record_success(
        self,
        position: int,
        layout: ExecutionLayout,
        fragmentation: float,
        tasks: int,
    ) -> None:
        self.records.append(
            AttemptRecord(
                position=position,
                app_name=layout.app_name,
                admitted=True,
                hops_per_channel=layout.hops_per_channel(),
                fragmentation_after=fragmentation,
                timings_ms=layout.timings.as_milliseconds(),
                tasks=tasks,
            )
        )

    def record_failure(
        self,
        position: int,
        app_name: str,
        phase: Phase,
        fragmentation: float,
        tasks: int,
    ) -> None:
        self.records.append(
            AttemptRecord(
                position=position,
                app_name=app_name,
                admitted=False,
                failed_phase=phase,
                fragmentation_after=fragmentation,
                tasks=tasks,
            )
        )


@dataclass(frozen=True)
class PositionSummary:
    """Aggregates of all attempts at one sequence position."""

    position: int
    attempts: int
    successes: int
    mean_hops: float | None
    mean_fragmentation: float

    @property
    def success_rate(self) -> float:
        """Percentage of sequences whose attempt at this position succeeded."""
        if self.attempts == 0:
            return 0.0
        return 100.0 * self.successes / self.attempts


def summarize_positions(
    recorders: list[SequenceRecorder], positions: int
) -> list[PositionSummary]:
    """Aggregate many sequences into the per-position series of Figs. 8-9."""
    summaries = []
    for position in range(1, positions + 1):
        at_position = [
            record
            for recorder in recorders
            for record in recorder.records
            if record.position == position
        ]
        successes = [r for r in at_position if r.admitted]
        hops = [
            r.hops_per_channel for r in successes
            if r.hops_per_channel is not None
        ]
        fragmentation = [r.fragmentation_after for r in at_position]
        summaries.append(
            PositionSummary(
                position=position,
                attempts=len(at_position),
                successes=len(successes),
                mean_hops=mean(hops) if hops else None,
                mean_fragmentation=(
                    mean(fragmentation) if fragmentation else 0.0
                ),
            )
        )
    return summaries


def failure_distribution(
    recorders: list[SequenceRecorder],
) -> dict[Phase, float]:
    """Percentage of failures per phase over all failing attempts.

    Table I's right-hand columns: "the percentage of rejected
    applications as a function of all failing applications".
    """
    failures = [
        record.failed_phase
        for recorder in recorders
        for record in recorder.records
        if not record.admitted and record.failed_phase is not None
    ]
    total = len(failures)
    if total == 0:
        return {phase: 0.0 for phase in Phase}
    return {
        phase: 100.0 * sum(1 for f in failures if f is phase) / total
        for phase in Phase
    }


def timings_by_task_count(
    recorders: list[SequenceRecorder],
) -> dict[int, dict[str, float]]:
    """Mean per-phase milliseconds, bucketed by application size.

    Fig. 7's quantity: "for successful resource allocation attempts,
    the average execution time of each phase".
    """
    buckets: dict[int, list[dict[str, float]]] = {}
    for recorder in recorders:
        for record in recorder.records:
            if record.admitted and record.timings_ms:
                buckets.setdefault(record.tasks, []).append(record.timings_ms)
    result: dict[int, dict[str, float]] = {}
    for tasks, samples in sorted(buckets.items()):
        result[tasks] = {
            phase.value: mean(
                [s.get(phase.value, 0.0) for s in samples]
            )
            for phase in Phase
        }
    return result
