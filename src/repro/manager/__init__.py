"""The Kairos resource manager: four phases, release, fault recovery."""

from repro.manager.bootstrap import (
    ConfigurationPlan,
    LoadTask,
    ProgramRoute,
    StartTask,
    generate_plan,
)
from repro.manager.kairos import Kairos, RecoveryReport
from repro.manager.layout import (
    AllocationFailure,
    ExecutionLayout,
    Phase,
    PhaseTimings,
)
from repro.manager.metrics import (
    AttemptRecord,
    PositionSummary,
    SequenceRecorder,
    failure_distribution,
    summarize_positions,
    timings_by_task_count,
)

__all__ = [
    "AllocationFailure",
    "AttemptRecord",
    "ConfigurationPlan",
    "ExecutionLayout",
    "Kairos",
    "LoadTask",
    "Phase",
    "PhaseTimings",
    "PositionSummary",
    "ProgramRoute",
    "RecoveryReport",
    "SequenceRecorder",
    "StartTask",
    "failure_distribution",
    "generate_plan",
    "summarize_positions",
    "timings_by_task_count",
]
