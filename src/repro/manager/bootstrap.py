"""Bootstrapping: turn an execution layout into a configuration plan.

"Based on this [execution layout], configuration software can
configure the hardware accordingly and start the application, which we
indicate with the bootstrapping phase" (paper Section I).  On the real
CRISP platform this programs DSP instruction memories and NoC routing
tables; here we emit an ordered, machine-checkable plan — the tests
assert that replaying the plan against a fresh mirror of the layout
reconstructs exactly the allocated resources.

Plan order: implementations are loaded element by element, routes are
programmed hop by hop, tasks are started in reverse-topological order
(consumers first, so no producer ever writes into an unconfigured
channel).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.taskgraph import Application
from repro.manager.layout import ExecutionLayout


@dataclass(frozen=True)
class LoadTask:
    """Load a task's implementation binary onto an element."""

    element: str
    task: str
    implementation: str

    def render(self) -> str:
        return f"load {self.implementation} for {self.task} on {self.element}"


@dataclass(frozen=True)
class ProgramRoute:
    """Install one virtual-channel route in the NoC routing tables."""

    channel: str
    path: tuple[str, ...]
    bandwidth: float

    def render(self) -> str:
        return (
            f"route {self.channel}: {' > '.join(self.path)} "
            f"@ {self.bandwidth:g}"
        )


@dataclass(frozen=True)
class StartTask:
    """Release a loaded task from reset."""

    element: str
    task: str

    def render(self) -> str:
        return f"start {self.task} on {self.element}"


PlanStep = LoadTask | ProgramRoute | StartTask


@dataclass
class ConfigurationPlan:
    """The ordered bootstrap recipe for one application."""

    app_id: str
    steps: list[PlanStep]

    def loads(self) -> tuple[LoadTask, ...]:
        return tuple(s for s in self.steps if isinstance(s, LoadTask))

    def routes(self) -> tuple[ProgramRoute, ...]:
        return tuple(s for s in self.steps if isinstance(s, ProgramRoute))

    def starts(self) -> tuple[StartTask, ...]:
        return tuple(s for s in self.steps if isinstance(s, StartTask))

    def as_script(self) -> str:
        lines = [f"# bootstrap plan for {self.app_id}"]
        lines.extend(step.render() for step in self.steps)
        return "\n".join(lines)


def _reverse_topological(app: Application) -> list[str]:
    """Tasks ordered so every consumer precedes its producers.

    Cycles (feedback channels) are broken at the task with the most
    in-application successors — starting order within a cycle is
    irrelevant because each cycle member blocks on input anyway.
    """
    remaining = dict.fromkeys(sorted(app.tasks))
    order: list[str] = []
    out_count = {
        t: sum(1 for c in app.channels.values() if c.source == t)
        for t in app.tasks
    }
    while remaining:
        # sinks w.r.t. the remaining subgraph
        ready = [
            t for t in remaining
            if not any(
                c.source == t and c.target in remaining
                for c in app.channels.values()
            )
        ]
        if not ready:
            # cycle: break deterministically
            ready = [max(remaining, key=lambda t: (out_count[t], t))]
        for task in ready:
            order.append(task)
            del remaining[task]
    return order


def generate_plan(app: Application, layout: ExecutionLayout) -> ConfigurationPlan:
    """Produce the configuration plan for an admitted application."""
    steps: list[PlanStep] = []

    for task in sorted(layout.placement, key=lambda t: (layout.placement[t], t)):
        steps.append(
            LoadTask(
                element=layout.placement[task],
                task=task,
                implementation=layout.binding[task].name,
            )
        )

    for channel_name in sorted(layout.routes):
        route = layout.routes[channel_name]
        steps.append(
            ProgramRoute(
                channel=channel_name,
                path=route.path,
                bandwidth=route.bandwidth,
            )
        )

    for task in _reverse_topological(app):
        steps.append(StartTask(element=layout.placement[task], task=task))

    return ConfigurationPlan(app_id=layout.app_id, steps=steps)
