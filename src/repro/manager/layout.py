"""Execution layouts and the allocation failure taxonomy.

"As a result of these phases, an execution layout defines what
specific resources are allocated to each task and communication
channel in the application" (paper Section I).  The layout is the
contract between the resource manager and the bootstrapping phase.

Failures are classified by phase — the unit of account of Table I
("failure distribution per phase").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.apps.implementations import Implementation
from repro.arch.state import ChannelReservation
from repro.core.mapping import MappingResult
from repro.reasons import ReasonCode
from repro.validation.validator import ValidationReport


class Phase(enum.Enum):
    """The four run-time phases of Fig. 1 (plus bootstrapping)."""

    BINDING = "binding"
    MAPPING = "mapping"
    ROUTING = "routing"
    VALIDATION = "validation"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class AllocationFailure(RuntimeError):
    """An allocation attempt was rejected in ``phase``.

    The allocation state has already been rolled back when this is
    raised by the manager.  ``timings`` (when the manager attaches
    them) hold the wall-clock cost of the phases that actually ran
    before the rejection; ``memoized``/``gated`` flag rejections the
    fast path served without running the pipeline (the decision is
    identical either way — see :mod:`repro.manager.kairos`).

    ``code`` is the machine-readable classification of the rejection
    (:class:`~repro.reasons.ReasonCode`): the free-form ``reason``
    explains, the code routes.  Failure sites that know their cause
    pass one; otherwise the phase's generic fallback applies.
    """

    def __init__(
        self,
        phase: Phase,
        app_id: str,
        reason: str,
        code: "ReasonCode | None" = None,
    ):
        super().__init__(f"[{phase.value}] {app_id}: {reason}")
        self.phase = phase
        self.app_id = app_id
        self.reason = reason
        self.code = code if code is not None else ReasonCode.for_phase(phase)
        self.timings: "PhaseTimings | None" = None
        self.memoized = False
        self.gated = False


@dataclass
class PhaseTimings:
    """Wall-clock seconds spent per phase (Fig. 7's quantity)."""

    binding: float = 0.0
    mapping: float = 0.0
    routing: float = 0.0
    validation: float = 0.0
    #: phases :meth:`record` was actually called for — distinguishes a
    #: phase that ran (even in ~0 time) from one never reached, so the
    #: latency histograms only aggregate real phase executions
    _recorded: set = field(default_factory=set, repr=False, compare=False)

    @property
    def total(self) -> float:
        return self.binding + self.mapping + self.routing + self.validation

    def of(self, phase: Phase) -> float:
        return getattr(self, phase.value)

    def record(self, phase: Phase, seconds: float) -> None:
        setattr(self, phase.value, seconds)
        self._recorded.add(phase)

    def recorded_items(self) -> tuple[tuple[str, float], ...]:
        """``(phase name, seconds)`` for phases that actually ran."""
        return tuple(
            (phase.value, getattr(self, phase.value))
            for phase in Phase
            if phase in self._recorded
        )

    def as_milliseconds(self) -> dict[str, float]:
        return {
            phase.value: getattr(self, phase.value) * 1000.0
            for phase in Phase
        }


@dataclass
class ExecutionLayout:
    """Everything the bootstrapper needs to configure the hardware."""

    app_id: str
    app_name: str
    binding: dict[str, Implementation]
    placement: dict[str, str]                   #: task -> element name
    routes: dict[str, ChannelReservation]       #: channel -> reservation
    local_channels: tuple[str, ...] = ()
    mapping: MappingResult | None = None
    validation: ValidationReport | None = None
    timings: PhaseTimings = field(default_factory=PhaseTimings)

    @property
    def elements_used(self) -> frozenset[str]:
        return frozenset(self.placement.values())

    def hops_per_channel(self) -> float:
        """Average links allocated per channel (Fig. 8's metric);
        element-local channels count as zero-hop allocations."""
        count = len(self.routes) + len(self.local_channels)
        if count == 0:
            return 0.0
        return sum(r.hops for r in self.routes.values()) / count

    def total_hops(self) -> int:
        return sum(r.hops for r in self.routes.values())

    def describe(self) -> str:
        lines = [f"execution layout for {self.app_name} ({self.app_id})"]
        for task in sorted(self.placement):
            impl = self.binding[task]
            lines.append(f"  task {task} -> {self.placement[task]} [{impl.name}]")
        for name, route in sorted(self.routes.items()):
            lines.append(
                f"  channel {name}: {' > '.join(route.path)} ({route.hops} hops)"
            )
        for name in self.local_channels:
            lines.append(f"  channel {name}: element-local")
        return "\n".join(lines)
