"""Kairos: the run-time resource manager (paper Section III-E).

"A prototype resource manager named 'Kairos' has been developed,
containing the work-flow of Fig. 1."  An allocation attempt runs the
four phases in order — binding, mapping, routing, validation — each
timed separately (Fig. 7 plots exactly these per-phase times), and is
atomic: any phase failure rolls the allocation state back and raises
:class:`AllocationFailure` tagged with the failing phase (Table I's
unit of account).

Atomicity uses the state's transaction journal by default: rollback
cost scales with the mutations the failed attempt made, not with the
platform size.  The pre-journal strategy — a full ledger snapshot
before every attempt — remains available as ``rollback="snapshot"``
for comparison benchmarks (see ``benchmarks/run_admission_bench.py``).

The manager also provides release (applications leaving the system)
and fault recovery (re-allocating applications stranded by element or
link failures), the run-time capabilities motivating the paper.

On top of the atomic pipeline sits the **admission fast path**
(:class:`AdmissionGate`, enabled by default): a sound pre-pipeline
feasibility gate over the state's aggregate free counters plus a
negative-result memo keyed on ``(spec digest, capacity epoch)``, so
attempts destined to fail — and re-probes of identical specs against
unchanged state, the backfill pattern of :mod:`repro.sim.service` —
are rejected without touching the binder.  See the "Fast path"
section of ``docs/performance.md`` for the soundness argument.
"""

from __future__ import annotations

import itertools
import time
import warnings
from dataclasses import dataclass, field

from repro.apps.taskgraph import Application, TaskGraphError
from repro.arch.state import AllocationState
from repro.arch.topology import Platform
from repro.core.cost import BOTH, CostWeights, MappingCost
from repro.core.distfield import DistanceFieldEngine, FieldStats
from repro.core.mapping import MappingOptions
from repro.manager.layout import (
    AllocationFailure,
    ExecutionLayout,
    Phase,
    PhaseTimings,
)
from repro.obs import DISABLED, Observability
from repro.reasons import ReasonCode
from repro.routing.router import BaseRouter, BfsRouter
from repro.validation.builder import SdfModelOptions

# repro.api's package __init__ is lazy (PEP 562), so this pulls in only
# the pipeline module — no cycle back into the manager
from repro.api.pipeline import PhaseContext, PhasePipeline

#: validation policy names (see module docstring of validator)
VALIDATION_MODES = ("enforce", "report", "skip")

#: failed-attempt rollback strategies (see class docstring)
ROLLBACK_STRATEGIES = ("transaction", "snapshot")

#: negative-result memo size bound; on overflow the memo is cleared
#: wholesale (it is a cache keyed by spec digest — long-running
#: services cycle a bounded spec pool, so this is a safety net only)
_MEMO_LIMIT = 65536

#: relative slack of the aggregate-capacity rejection threshold — wide
#: enough to absorb float ULP drift of the incremental counters, far
#: below any integer-quantity difference
_AGG_SLACK = 1e-9


class AdmissionGate:
    """The admission fast path: feasibility gate + negative-result memo.

    Soundness contract: **every rejection raised here would also be
    raised by the full pipeline against the same state** — the gate
    only proves infeasibility, it never guesses.  Three layers, from
    cheapest to dearest:

    1. **Negative-result memo** — rejections are remembered keyed on
       ``(spec digest, state.epoch)``.  A re-probe of an identical
       specification against an unchanged epoch (the backfill loops of
       :mod:`repro.sim.service`) replays the recorded rejection in
       O(1).  Sound because equal epochs certify bit-identical
       allocation state (see :class:`~repro.arch.state.AllocationState`)
       and the pipeline is deterministic in (spec, state).
    2. **Aggregate-capacity checks** — per resource kind, the sum over
       tasks of the componentwise *minimum* requirement across each
       task's implementations is a lower bound on what any binding
       consumes; if it exceeds the platform-wide (or, for tasks whose
       implementations all target one element class, the per-class)
       aggregate free counter, the binder's provisional pool cannot
       possibly fit the application, so binding must fail.
    3. **Per-implementation feasible-element checks** — a task none of
       whose implementations has *any* element with sufficient free
       capacity right now fails the binder's very first regret round.
       Answered by the state's epoch-stamped
       :class:`~repro.arch.state.AvailabilityCache`, which the mapping
       phase's anchor detection shares: binding performs no state
       mutations, so a surviving attempt re-reads the gate's scans for
       free instead of rescanning the platform.

    Layers 2 and 3 reject exactly where the ungated pipeline would:
    in the **binding** phase.  Results that survive the gate run the
    pipeline unchanged, so gated and ungated managers produce
    bit-identical layouts and decisions (asserted by
    ``tests/test_fastpath.py``).
    """

    __slots__ = (
        "state", "platform", "c_memo_hits", "c_gate_rejections",
        "c_gate_passes", "_memo", "_demand",
    )

    def __init__(self, state: AllocationState, registry=None) -> None:
        self.state = state
        self.platform = state.platform
        #: digest -> (epoch, Phase, reason); entries self-invalidate
        #: when the epoch moves on and are pruned on mismatch
        self._memo: dict[str, tuple[int, Phase, str]] = {}
        #: digest -> (app, total demand, per-element-class demand);
        #: demands are platform-static per specification
        self._demand: dict[str, tuple] = {}
        # registry counter handles; the bare names (``gate.memo_hits``)
        # survive below as read-through properties for one release
        registry = DISABLED.registry if registry is None else registry
        self.c_memo_hits = registry.counter("gate.memo_hits")
        self.c_gate_rejections = registry.counter("gate.rejections")
        self.c_gate_passes = registry.counter("gate.passes")

    @property
    def memo_hits(self):
        return self.c_memo_hits.value

    @property
    def gate_rejections(self):
        return self.c_gate_rejections.value

    @property
    def gate_passes(self):
        return self.c_gate_passes.value

    # -- the memo -----------------------------------------------------------

    def check_memo(self, digest: str, app_id: str) -> None:
        """Replay a remembered rejection if the epoch still matches."""
        entry = self._memo.get(digest)
        if entry is None:
            return
        epoch, phase, reason, code = entry
        if epoch != self.state._epoch:
            # stale for the *current* observation — but inside an open
            # transaction (batch planning) the mismatch only reflects
            # uncommitted mutations that will be rolled back, and the
            # entry stays valid for the committed state it certifies,
            # so it is pruned only when the epoch is a committed one
            if not self.state.in_transaction():
                del self._memo[digest]
            return
        self.c_memo_hits.inc()
        # the recorded reason (and code) is replayed verbatim for this
        # (possibly different) app_id — reasons are diagnostics, and no
        # pipeline reason embeds the attempt id (they name
        # app/task/channel)
        failure = AllocationFailure(phase, app_id, reason, code=code)
        failure.memoized = True
        raise failure

    def remember(self, digest: str, failure: AllocationFailure) -> None:
        """Record a rejection against the current (restored) epoch.

        Inside an open transaction the epoch is *uncommitted*: a later
        committed history can re-reach the same counter value with a
        different ledger (the batch-planning pattern of
        :meth:`repro.api.AdmissionController.plan_batch`), so an entry
        recorded now could replay a rejection against a state it never
        observed.  Such rejections are therefore not memoized — the
        soundness contract beats the cache hit.
        """
        if self.state.in_transaction():
            return
        if len(self._memo) >= _MEMO_LIMIT:
            self._memo.clear()
        self._memo[digest] = (
            self.state._epoch, failure.phase, failure.reason, failure.code
        )

    # -- the feasibility gate ----------------------------------------------

    def check_feasible(self, app: Application, digest: str, app_id: str) -> None:
        """Raise (and memoize) iff the spec is provably inadmissible."""
        rejection = self._infeasible_reason(app, digest)
        if rejection is None:
            self.c_gate_passes.inc()
            return
        reason, code = rejection
        self.c_gate_rejections.inc()
        failure = AllocationFailure(Phase.BINDING, app_id, reason, code=code)
        failure.gated = True
        self.remember(digest, failure)
        raise failure

    def _infeasible_reason(
        self, app: Application, digest: str
    ) -> tuple[str, ReasonCode] | None:
        state = self.state
        total, by_class = self._demand_of(app, digest)
        agg = state._agg_free
        # the incremental aggregate counters can drift from the ledger
        # sum by float ULPs under churn with float quantities, so the
        # rejection threshold carries a tiny slack — integer workloads
        # (where differences are >= 1) are unaffected, and a slack-wide
        # miss merely defers the rejection to the binder
        for resource, needed in total.items():
            have = agg.get(resource, 0)
            if needed > have and needed - have > _AGG_SLACK * (1.0 + abs(have)):
                return (
                    f"aggregate demand exceeds free capacity: needs "
                    f"{needed:g} {resource}, platform has {have:g} free",
                    ReasonCode.AGGREGATE_CAPACITY,
                )
        agg_kind = state._agg_free_kind
        for kind, demand in by_class.items():
            bucket = agg_kind.get(kind)
            for resource, needed in demand.items():
                have = bucket.get(resource, 0) if bucket else 0
                if needed > have and (
                    needed - have > _AGG_SLACK * (1.0 + abs(have))
                ):
                    return (
                        f"aggregate demand exceeds free {kind.value} "
                        f"capacity: needs {needed:g} {resource}, "
                        f"{have:g} free",
                        ReasonCode.AGGREGATE_CAPACITY,
                    )
        availability = state.availability
        for name in sorted(app.tasks):
            task = app.tasks[name]
            for impl in task.implementations:
                if availability.summary(impl)[0]:
                    break
            else:
                # the binder's first regret round evaluates every task
                # against the raw free state, so it fails on exactly
                # this task, with exactly this message
                return (
                    f"task {name!r} of {app.name!r} has no feasible "
                    "implementation (insufficient platform resources)",
                    ReasonCode.NO_FEASIBLE_IMPLEMENTATION,
                )
        return None

    def _demand_of(self, app: Application, digest: str) -> tuple[dict, dict]:
        cached = self._demand.get(digest)
        if cached is not None:
            return cached[1], cached[2]
        if len(self._demand) >= _MEMO_LIMIT:
            self._demand.clear()  # cache, not state — like the memo
        total: dict = {}
        by_class: dict = {}
        for task in app.tasks.values():
            mins: dict = {}
            kinds = set()
            first = True
            for impl in task.implementations:
                kinds.add(self._impl_class(impl))
                data = impl.requirement._data
                if first:
                    mins.update(data)
                    first = False
                else:
                    # componentwise min; a kind absent from any
                    # implementation has minimum zero and drops out
                    for resource in list(mins):
                        quantity = data.get(resource)
                        if quantity is None:
                            del mins[resource]
                        elif quantity < mins[resource]:
                            mins[resource] = quantity
            for resource, quantity in mins.items():
                total[resource] = total.get(resource, 0) + quantity
            if len(kinds) == 1:
                kind = next(iter(kinds))
                if kind is not None:
                    bucket = by_class.setdefault(kind, {})
                    for resource, quantity in mins.items():
                        bucket[resource] = bucket.get(resource, 0) + quantity
        self._demand[digest] = (app, total, by_class)
        return total, by_class

    def _impl_class(self, impl):
        """Element class an implementation charges, or None if unknown."""
        if impl.target_kind is not None:
            return impl.target_kind
        node_id = self.platform._node_ids.get(impl.target_element)
        if node_id is None or not self.platform._is_element_mask[node_id]:
            return None
        return self.platform._nodes_by_id[node_id].kind


@dataclass
class RecoveryReport:
    """Outcome of a fault-recovery pass.

    ``lost`` keeps the human-readable reason strings (they are
    recorded verbatim in sim decision traces, so their format is
    frozen); ``lost_codes`` carries the machine-readable
    :class:`~repro.reasons.ReasonCode` per lost application.
    """

    stranded: tuple[str, ...] = ()
    recovered: dict[str, ExecutionLayout] = field(default_factory=dict)
    lost: dict[str, str] = field(default_factory=dict)  #: app_id -> reason
    lost_codes: dict[str, ReasonCode] = field(default_factory=dict)


class Kairos:
    """Four-phase run-time spatial resource manager.

    Parameters
    ----------
    platform:
        The frozen platform to manage.
    weights:
        Mapping cost weights, a ready :class:`MappingCost`, or any
        custom cost callable with the same signature (e.g. a
        :class:`~repro.core.objectives.CompositeCost`) — "any cost
        function that can be defined for a platform" (Section II).
    mapping_options, router, sdf_options:
        Phase tunables; defaults follow the paper (BFS routing, one
        extra search ring, time-sharing SDF model).
    validation_mode:
        ``"enforce"`` rejects constraint violations, ``"report"``
        computes throughput but never rejects (the Table I protocol),
        ``"skip"`` omits the phase entirely.
    validation_method:
        ``"simulation"`` (exact state-space exploration, the paper's
        approach) or ``"analytical"`` (maximum cycle ratio — the
        future-work scheme of Section V, much faster).
    rollback:
        ``"transaction"`` (default) undoes a failed attempt via the
        state's journal, O(mutations); ``"snapshot"`` restores a full
        pre-attempt ledger copy, O(platform) — kept for comparison.
    fastpath:
        ``True`` (default) enables the :class:`AdmissionGate`:
        epoch-keyed negative-result memoization plus a sound
        pre-pipeline feasibility gate, so attempts destined to fail
        are rejected in microseconds instead of after a full
        bind→map→route→validate run.  Decisions and layouts are
        bit-identical either way; disable it only for comparison
        runs, or when using a custom cost callable that reads mutable
        state outside the :class:`AllocationState` ledgers (the memo
        assumes the pipeline is a pure function of spec and state).
    incremental:
        ``True`` (default) attaches a
        :class:`~repro.core.distfield.DistanceFieldEngine` to the
        state: the mapping phase's ring searches replay persistent
        per-origin distance fields (invalidated by link-traversability
        deltas, repaired by bounded re-expansion) instead of running a
        fresh BFS per attempt, and the routing phase uses the same
        fields as admissible lower bounds for its unreachable
        fast-fail.  Layouts and decisions are bit-identical either
        way (asserted by ``tests/test_distfield.py``); disable only
        for comparison runs.
    health:
        An optional :class:`~repro.resilience.HealthRegistry`.  When
        attached, the mapping cost is wrapped in a
        :class:`~repro.resilience.HealthAwareCost` — suspect, degraded
        and freshly-repaired elements carry a soft avoidance penalty,
        so placement quality degrades gracefully around flaky silicon
        — and the registry rides in the :class:`PhaseContext` for
        custom strategies to query.  Decisions are bit-identical to an
        unattached manager until the first soft penalty exists; the
        *caller* driving the registry must
        :meth:`~repro.arch.state.AllocationState.touch` the state when
        penalties change without a ledger mutation (see the registry's
        class docstring).
    obs:
        An optional :class:`repro.obs.Observability` bundle (metric
        registry + span tracer).  The default is the shared
        :data:`repro.obs.DISABLED` bundle: the gate and distance-field
        counters still count (their read-through stats keep working)
        but nothing is retained for export and spans are no-ops.
        Attach :func:`repro.obs.enabled` to collect
        ``gate.*``/``distfield.*``/``phase.*`` metrics and
        gate-probe/pipeline-phase spans; observability never feeds
        back into decisions, so layouts and digests are bit-identical
        either way (see docs/observability.md).
    """

    def __init__(
        self,
        platform: Platform,
        weights: CostWeights | MappingCost = BOTH,
        mapping_options: MappingOptions = MappingOptions(),
        router: BaseRouter | None = None,
        sdf_options: SdfModelOptions = SdfModelOptions(),
        validation_mode: str = "report",
        validation_max_firings: int | None = None,
        validation_method: str = "simulation",
        rollback: str = "transaction",
        fastpath: bool = True,
        incremental: bool = True,
        pipeline: PhasePipeline | None = None,
        health=None,
        obs: Observability | None = None,
    ) -> None:
        if validation_mode not in VALIDATION_MODES:
            raise ValueError(
                f"validation_mode must be one of {VALIDATION_MODES}, "
                f"got {validation_mode!r}"
            )
        if rollback not in ROLLBACK_STRATEGIES:
            raise ValueError(
                f"rollback must be one of {ROLLBACK_STRATEGIES}, "
                f"got {rollback!r}"
            )
        self.platform = platform
        self.state = AllocationState(platform)
        if isinstance(weights, CostWeights):
            self.cost = MappingCost(weights)
        elif callable(weights):
            self.cost = weights  # MappingCost, CompositeCost, or custom
        else:
            raise TypeError(
                f"weights must be CostWeights or a cost callable, "
                f"got {type(weights).__name__}"
            )
        self.health = health
        if health is not None:
            # lazy import: repro.resilience.recovery imports this
            # module for the legacy RecoveryReport shape
            from repro.resilience.health import HealthAwareCost

            self.cost = HealthAwareCost(self.cost, health)
        self.mapping_options = mapping_options
        self.router = router or BfsRouter()
        self.sdf_options = sdf_options
        self.validation_mode = validation_mode
        self.validation_max_firings = validation_max_firings
        self.validation_method = validation_method
        self.rollback = rollback
        #: the observability bundle (see repro.obs) — DISABLED by
        #: default: counters still count, but nothing is retained and
        #: spans are no-ops, so decisions and perf are untouched
        self.obs = DISABLED if obs is None else obs
        self.fastpath = bool(fastpath)
        self._gate = (
            AdmissionGate(self.state, self.obs.registry)
            if self.fastpath else None
        )
        self.incremental = bool(incremental)
        self._distfield = (
            DistanceFieldEngine(
                self.state, self.obs.registry, self.obs.tracer
            )
            if self.incremental else None
        )
        #: the phase-strategy pipeline (see repro.api.pipeline); the
        #: default reproduces the paper's work-flow exactly — regret
        #: binding, MapApplication, the configured router instance and
        #: the configured validation method
        if pipeline is None:
            pipeline = PhasePipeline(
                binder="regret",
                mapper="kairos",
                router=self.router,
                validator=(
                    "skip" if validation_mode == "skip"
                    else validation_method
                ),
            )
        self.pipeline = pipeline
        self.admitted: dict[str, ExecutionLayout] = {}
        #: original specifications of admitted applications, kept so
        #: fault recovery can re-allocate without the caller having to
        #: supply them (layouts do not retain the full task graph)
        self.specifications: dict[str, Application] = {}
        self._counter = itertools.count()
        self._controller = None  # lazy AdmissionController (repro.api)

    # -- allocation --------------------------------------------------------

    def allocate(
        self, app: Application, app_id: str | None = None
    ) -> ExecutionLayout:
        """Deprecated admission entry point (compat shim since PR 5).

        New code should use :class:`repro.api.AdmissionController`:
        ``admit()`` for the one-shot decision, or ``plan()`` +
        ``commit()`` for the two-phase protocol.  This shim routes
        through plan+commit — behaviour, layouts and churn digests are
        bit-identical to the historical implementation (asserted
        against ``benchmarks/seed_reference`` by the test suite) — and
        re-raises the plan's :class:`AllocationFailure` on rejection.
        """
        warnings.warn(
            "Kairos.allocate is deprecated; use "
            "repro.api.AdmissionController.admit (or plan/commit)",
            DeprecationWarning,
            stacklevel=2,
        )
        controller = self.controller
        plan = controller.plan(app, app_id)
        decision = controller.commit(plan)
        if not decision.admitted:
            raise decision.failure
        return decision.layout

    @property
    def controller(self):
        """The :class:`repro.api.AdmissionController` façade over this
        manager (created on first use; one per manager)."""
        if self._controller is None:
            from repro.api.controller import AdmissionController

            self._controller = AdmissionController.wrap(self)
        return self._controller

    def _admit_direct(
        self, app: Application, app_id: str | None = None
    ) -> ExecutionLayout:
        """One atomic allocation attempt, committed and registered.

        The historical ``allocate`` hot path, used by the façade's
        ``admit()`` and by fault recovery.  Raises
        :class:`AllocationFailure` with the failing phase; the
        allocation state is untouched in that case.
        """
        layout = self._attempt(app, app_id, hold=True)
        self.admitted[layout.app_id] = layout
        self.specifications[layout.app_id] = app
        return layout

    def _attempt(
        self,
        app: Application,
        app_id: str | None = None,
        *,
        hold: bool = True,
    ) -> ExecutionLayout:
        """Gate + four phases; ``hold=False`` unwinds every mutation.

        With the fast path enabled, attempts the
        :class:`AdmissionGate` can prove inadmissible (or has already
        seen fail against this exact state) are rejected before the
        pipeline runs — same phase, same decision, none of the cost.

        ``hold=True`` keeps the successful attempt's mutations (the
        admission path); ``hold=False`` is the *planning* path — the
        pipeline runs to completion, then the journal (or snapshot)
        restores the pre-attempt state bit-exactly, so the returned
        layout describes resources that are **not** held.  Neither
        path registers the layout in :attr:`admitted` — callers do.
        """
        app_id = app_id or f"{app.name}#{next(self._counter)}"
        if app_id in self.admitted:
            raise ValueError(f"app_id {app_id!r} already admitted")
        gate = self._gate
        digest = None
        if gate is not None:
            gate_started = time.perf_counter()
            digest = app.digest()
            # a memo hit replays a failure whose phases ran on an
            # earlier attempt — no phase ran now, so no timings are
            # attached and the latency histograms stay honest
            gate.check_memo(digest, app_id)
        try:
            app.validate()
        except TaskGraphError as exc:
            failure = AllocationFailure(
                Phase.BINDING, app_id, str(exc),
                code=ReasonCode.INVALID_SPECIFICATION,
            )
            if gate is not None:
                gate.remember(digest, failure)
            raise failure from exc

        timings = PhaseTimings()
        if gate is not None:
            with self.obs.tracer.span("gate.probe"):
                try:
                    gate.check_feasible(app, digest, app_id)
                except AllocationFailure as failure:
                    elapsed = time.perf_counter() - gate_started
                    timings.record(Phase.BINDING, elapsed)
                    # the gate rejection is a binding-phase sample the
                    # pipeline never sees; observe it here so the
                    # registry histogram mirrors ServiceMetrics'
                    # phase_latencies exactly
                    self.obs.registry.histogram(
                        "phase.binding.seconds"
                    ).observe(elapsed)
                    failure.timings = timings
                    raise
        try:
            if self.rollback == "snapshot" and not self.state.in_transaction():
                # legacy strategy: full ledger copy up front, restore
                # on failure — or on success when only planning.
                # Inside an open transaction (batch planning) restore()
                # is illegal, so the journal strategy takes over there;
                # the two are equivalence-tested (tests/test_transactions)
                snapshot = self.state.snapshot()
                try:
                    layout = self._run_phases(app, app_id, timings)
                except AllocationFailure:
                    self.state.restore(snapshot)
                    raise
                if not hold:
                    self.state.restore(snapshot)
            else:
                # journal strategy: any exception (phase failure or
                # bug) rolls back exactly the mutations this attempt
                # made; a plan-only attempt rolls back its own success
                mark = self.state._tx_begin()
                try:
                    layout = self._run_phases(app, app_id, timings)
                except BaseException:
                    self.state._tx_rollback(mark)
                    raise
                if hold:
                    self.state._tx_commit()
                else:
                    self.state._tx_rollback(mark)
        except AllocationFailure as failure:
            failure.timings = timings
            if gate is not None:
                # the rollback already restored the pre-attempt epoch,
                # so the memo entry certifies this exact state
                gate.remember(digest, failure)
            raise
        return layout

    @property
    def fastpath_stats(self) -> dict:
        """Observability counters of the admission gate (zeros if off)."""
        gate = self._gate
        if gate is None:
            return {"memo_hits": 0, "gate_rejections": 0, "gate_passes": 0}
        return {
            "memo_hits": gate.memo_hits,
            "gate_rejections": gate.gate_rejections,
            "gate_passes": gate.gate_passes,
        }

    @property
    def distfield_stats(self) -> dict:
        """Counters of the distance-field engine (zeros when off)."""
        engine = self._distfield
        if engine is None:
            return FieldStats().as_dict()
        return engine.stats.as_dict()

    def _phase_context(self, app_id: str) -> PhaseContext:
        """The per-attempt dependency container the strategies receive."""
        return PhaseContext(
            app_id=app_id,
            cost=self.cost,
            mapping_options=self.mapping_options,
            sdf_options=self.sdf_options,
            validation_mode=self.validation_mode,
            validation_max_firings=self.validation_max_firings,
            engine=self._distfield,
            health=self.health,
            obs=self.obs,
        )

    def _run_phases(
        self, app: Application, app_id: str, timings: PhaseTimings
    ) -> ExecutionLayout:
        """Binding, mapping, routing, validation — the Fig. 1 work-flow.

        Delegates to the :class:`~repro.api.pipeline.PhasePipeline`
        (strategies are swappable; the default reproduces the paper).
        Mutates the allocation state; the caller provides atomicity.
        """
        binding, mapping, routing, report = self.pipeline.run(
            app, app_id, self.state, self._phase_context(app_id), timings
        )
        return ExecutionLayout(
            app_id=app_id,
            app_name=app.name,
            binding=binding,
            placement=mapping.placement,
            routes=routing.routes,
            local_channels=routing.local_channels,
            mapping=mapping,
            validation=report,
            timings=timings,
        )

    # -- release -----------------------------------------------------------

    def release(self, app_id: str) -> None:
        """Free every resource of an admitted application."""
        if app_id not in self.admitted:
            raise KeyError(f"unknown app_id {app_id!r}")
        self.state.release_application(app_id)
        del self.admitted[app_id]
        self.specifications.pop(app_id, None)

    def release_all(self) -> None:
        for app_id in list(self.admitted):
            self.release(app_id)

    # -- fault recovery -------------------------------------------------------

    def stranded_by_faults(self) -> tuple[str, ...]:
        """Admitted applications touching failed elements or links."""
        stranded = set()
        failed_elements = self.state.failed_elements
        failed_links = self.state.failed_links
        for app_id, layout in self.admitted.items():
            if layout.elements_used & failed_elements:
                stranded.add(app_id)
                continue
            for route in layout.routes.values():
                touches_fault = any(
                    node in failed_elements for node in route.path
                ) or any(
                    frozenset((a, b)) in failed_links
                    for a, b in zip(route.path, route.path[1:])
                )
                if touches_fault:
                    stranded.add(app_id)
                    break
        return tuple(sorted(stranded))

    def recover(
        self,
        applications: dict[str, Application] | None = None,
        order: str = "admission",
    ) -> RecoveryReport:
        """Re-allocate every stranded application on the degraded platform.

        ``applications`` optionally overrides the original
        specifications by ``app_id``; when omitted (the default) the
        manager's own :attr:`specifications` registry is used, so
        ``recover()`` with no arguments is always sufficient.  Each
        stranded application is released and re-allocated from
        scratch; irrecoverable ones are reported in ``lost``.

        ``order`` controls re-admission order (delegated to a
        :class:`~repro.resilience.RecoveryEngine` pass).  The default
        is ``"admission"`` — oldest admitted first, so a long-resident
        large application is re-placed before younger arrivals can
        fragment the degraded platform under it.  ``"name"`` restores
        the historical alphabetical order (the sim service pins it on
        the legacy path so pre-resilience traces replay byte-exactly);
        ``"priority"`` and ``"size"`` are available for policy studies.
        For a persistent engine with a requeue and retry budget, build
        a :class:`~repro.resilience.RecoveryEngine` directly.
        """
        from repro.resilience.recovery import RecoveryEngine, RecoveryPolicy

        engine = RecoveryEngine(
            self, RecoveryPolicy(order=order, requeue=False)
        )
        return engine.recovery_pass(applications=applications).report()

    # -- metrics ----------------------------------------------------------------

    def external_fragmentation(self) -> float:
        return self.state.external_fragmentation()

    def utilization(self) -> float:
        return self.state.utilization()

    def __repr__(self) -> str:
        return (
            f"<Kairos on {self.platform.name}: {len(self.admitted)} admitted, "
            f"frag {self.external_fragmentation():.1f}%>"
        )
