"""Kairos: the run-time resource manager (paper Section III-E).

"A prototype resource manager named 'Kairos' has been developed,
containing the work-flow of Fig. 1."  An allocation attempt runs the
four phases in order — binding, mapping, routing, validation — each
timed separately (Fig. 7 plots exactly these per-phase times), and is
atomic: any phase failure rolls the allocation state back and raises
:class:`AllocationFailure` tagged with the failing phase (Table I's
unit of account).

Atomicity uses the state's transaction journal by default: rollback
cost scales with the mutations the failed attempt made, not with the
platform size.  The pre-journal strategy — a full ledger snapshot
before every attempt — remains available as ``rollback="snapshot"``
for comparison benchmarks (see ``benchmarks/run_admission_bench.py``).

The manager also provides release (applications leaving the system)
and fault recovery (re-allocating applications stranded by element or
link failures), the run-time capabilities motivating the paper.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from repro.apps.taskgraph import Application, TaskGraphError
from repro.arch.state import AllocationState
from repro.arch.topology import Platform
from repro.binding.binder import BindingError, bind
from repro.core.cost import BOTH, CostWeights, MappingCost
from repro.core.mapping import MappingError, MappingOptions, map_application
from repro.manager.layout import (
    AllocationFailure,
    ExecutionLayout,
    Phase,
    PhaseTimings,
)
from repro.routing.router import BaseRouter, BfsRouter, RoutingError
from repro.validation.builder import SdfModelOptions
from repro.validation.validator import validate_layout

#: validation policy names (see module docstring of validator)
VALIDATION_MODES = ("enforce", "report", "skip")

#: failed-attempt rollback strategies (see class docstring)
ROLLBACK_STRATEGIES = ("transaction", "snapshot")


@dataclass
class RecoveryReport:
    """Outcome of a fault-recovery pass."""

    stranded: tuple[str, ...] = ()
    recovered: dict[str, ExecutionLayout] = field(default_factory=dict)
    lost: dict[str, str] = field(default_factory=dict)  #: app_id -> reason


class Kairos:
    """Four-phase run-time spatial resource manager.

    Parameters
    ----------
    platform:
        The frozen platform to manage.
    weights:
        Mapping cost weights, a ready :class:`MappingCost`, or any
        custom cost callable with the same signature (e.g. a
        :class:`~repro.core.objectives.CompositeCost`) — "any cost
        function that can be defined for a platform" (Section II).
    mapping_options, router, sdf_options:
        Phase tunables; defaults follow the paper (BFS routing, one
        extra search ring, time-sharing SDF model).
    validation_mode:
        ``"enforce"`` rejects constraint violations, ``"report"``
        computes throughput but never rejects (the Table I protocol),
        ``"skip"`` omits the phase entirely.
    validation_method:
        ``"simulation"`` (exact state-space exploration, the paper's
        approach) or ``"analytical"`` (maximum cycle ratio — the
        future-work scheme of Section V, much faster).
    rollback:
        ``"transaction"`` (default) undoes a failed attempt via the
        state's journal, O(mutations); ``"snapshot"`` restores a full
        pre-attempt ledger copy, O(platform) — kept for comparison.
    """

    def __init__(
        self,
        platform: Platform,
        weights: CostWeights | MappingCost = BOTH,
        mapping_options: MappingOptions = MappingOptions(),
        router: BaseRouter | None = None,
        sdf_options: SdfModelOptions = SdfModelOptions(),
        validation_mode: str = "report",
        validation_max_firings: int | None = None,
        validation_method: str = "simulation",
        rollback: str = "transaction",
    ) -> None:
        if validation_mode not in VALIDATION_MODES:
            raise ValueError(
                f"validation_mode must be one of {VALIDATION_MODES}, "
                f"got {validation_mode!r}"
            )
        if rollback not in ROLLBACK_STRATEGIES:
            raise ValueError(
                f"rollback must be one of {ROLLBACK_STRATEGIES}, "
                f"got {rollback!r}"
            )
        self.platform = platform
        self.state = AllocationState(platform)
        if isinstance(weights, CostWeights):
            self.cost = MappingCost(weights)
        elif callable(weights):
            self.cost = weights  # MappingCost, CompositeCost, or custom
        else:
            raise TypeError(
                f"weights must be CostWeights or a cost callable, "
                f"got {type(weights).__name__}"
            )
        self.mapping_options = mapping_options
        self.router = router or BfsRouter()
        self.sdf_options = sdf_options
        self.validation_mode = validation_mode
        self.validation_max_firings = validation_max_firings
        self.validation_method = validation_method
        self.rollback = rollback
        self.admitted: dict[str, ExecutionLayout] = {}
        #: original specifications of admitted applications, kept so
        #: fault recovery can re-allocate without the caller having to
        #: supply them (layouts do not retain the full task graph)
        self.specifications: dict[str, Application] = {}
        self._counter = itertools.count()

    # -- allocation --------------------------------------------------------

    def allocate(
        self, app: Application, app_id: str | None = None
    ) -> ExecutionLayout:
        """Run one atomic allocation attempt; returns the layout.

        Raises :class:`AllocationFailure` with the failing phase; the
        allocation state is untouched in that case.
        """
        app_id = app_id or f"{app.name}#{next(self._counter)}"
        if app_id in self.admitted:
            raise ValueError(f"app_id {app_id!r} already admitted")
        try:
            app.validate()
        except TaskGraphError as exc:
            raise AllocationFailure(Phase.BINDING, app_id, str(exc)) from exc

        timings = PhaseTimings()
        if self.rollback == "snapshot":
            # legacy strategy: full ledger copy up front, restore on failure
            snapshot = self.state.snapshot()
            try:
                layout = self._run_phases(app, app_id, timings)
            except AllocationFailure:
                self.state.restore(snapshot)
                raise
        else:
            # journal strategy: any exception (phase failure or bug)
            # rolls back exactly the mutations this attempt made
            with self.state.transaction():
                layout = self._run_phases(app, app_id, timings)
        self.admitted[app_id] = layout
        self.specifications[app_id] = app
        return layout

    def _run_phases(
        self, app: Application, app_id: str, timings: PhaseTimings
    ) -> ExecutionLayout:
        """Binding, mapping, routing, validation — the Fig. 1 work-flow.

        Mutates the allocation state; the caller provides atomicity.
        """
        # 1. binding
        started = time.perf_counter()
        try:
            binding = bind(app, self.state)
        except BindingError as exc:
            raise AllocationFailure(Phase.BINDING, app_id, str(exc)) from exc
        finally:
            timings.record(Phase.BINDING, time.perf_counter() - started)

        # 2. mapping
        started = time.perf_counter()
        try:
            mapping = map_application(
                app, binding.choice, self.state,
                cost=self.cost, options=self.mapping_options,
                app_id=app_id,
            )
        except MappingError as exc:
            raise AllocationFailure(Phase.MAPPING, app_id, str(exc)) from exc
        finally:
            timings.record(Phase.MAPPING, time.perf_counter() - started)

        # 3. routing
        started = time.perf_counter()
        try:
            routing = self.router.route_application(
                app, mapping.placement, self.state, app_id=app_id
            )
        except RoutingError as exc:
            raise AllocationFailure(Phase.ROUTING, app_id, str(exc)) from exc
        finally:
            timings.record(Phase.ROUTING, time.perf_counter() - started)

        # 4. validation
        report = None
        if self.validation_mode != "skip":
            started = time.perf_counter()
            try:
                report = validate_layout(
                    app, binding.choice, mapping.placement,
                    routing.routes, self.state,
                    options=self.sdf_options,
                    max_firings=self.validation_max_firings,
                    method=self.validation_method,
                )
            finally:
                timings.record(
                    Phase.VALIDATION, time.perf_counter() - started
                )
            if self.validation_mode == "enforce" and not report.satisfied:
                reasons = "; ".join(
                    f"{c.constraint.describe()} (achieved {c.achieved:g})"
                    for c in report.violations()
                ) or "deadlocked dataflow graph"
                raise AllocationFailure(Phase.VALIDATION, app_id, reasons)

        return ExecutionLayout(
            app_id=app_id,
            app_name=app.name,
            binding=binding.choice,
            placement=mapping.placement,
            routes=routing.routes,
            local_channels=routing.local_channels,
            mapping=mapping,
            validation=report,
            timings=timings,
        )

    # -- release -----------------------------------------------------------

    def release(self, app_id: str) -> None:
        """Free every resource of an admitted application."""
        if app_id not in self.admitted:
            raise KeyError(f"unknown app_id {app_id!r}")
        self.state.release_application(app_id)
        del self.admitted[app_id]
        self.specifications.pop(app_id, None)

    def release_all(self) -> None:
        for app_id in list(self.admitted):
            self.release(app_id)

    # -- fault recovery -------------------------------------------------------

    def stranded_by_faults(self) -> tuple[str, ...]:
        """Admitted applications touching failed elements or links."""
        stranded = set()
        failed_elements = self.state.failed_elements
        failed_links = self.state.failed_links
        for app_id, layout in self.admitted.items():
            if layout.elements_used & failed_elements:
                stranded.add(app_id)
                continue
            for route in layout.routes.values():
                touches_fault = any(
                    node in failed_elements for node in route.path
                ) or any(
                    frozenset((a, b)) in failed_links
                    for a, b in zip(route.path, route.path[1:])
                )
                if touches_fault:
                    stranded.add(app_id)
                    break
        return tuple(sorted(stranded))

    def recover(
        self, applications: dict[str, Application] | None = None
    ) -> RecoveryReport:
        """Re-allocate every stranded application on the degraded platform.

        ``applications`` optionally overrides the original
        specifications by ``app_id``; when omitted (the default) the
        manager's own :attr:`specifications` registry is used, so
        ``recover()`` with no arguments is always sufficient.  Each
        stranded application is released and re-allocated from
        scratch; irrecoverable ones are reported in ``lost``.
        """
        lookup = self.specifications if applications is None else applications
        report = RecoveryReport(stranded=self.stranded_by_faults())
        for app_id in report.stranded:
            if app_id not in lookup:
                report.lost[app_id] = "no application specification supplied"
                self.release(app_id)
                continue
            app = lookup[app_id]
            self.release(app_id)
            try:
                report.recovered[app_id] = self.allocate(app, app_id)
            except AllocationFailure as exc:
                report.lost[app_id] = f"{exc.phase.value}: {exc.reason}"
        return report

    # -- metrics ----------------------------------------------------------------

    def external_fragmentation(self) -> float:
        return self.state.external_fragmentation()

    def utilization(self) -> float:
        return self.state.utilization()

    def __repr__(self) -> str:
        return (
            f"<Kairos on {self.platform.name}: {len(self.admitted)} admitted, "
            f"frag {self.external_fragmentation():.1f}%>"
        )
