"""Pluggable mapping objectives beyond the paper's two defaults.

Section III: "Various mapping objectives may be defined, like minimal
energy consumption, reducing resource fragmentation, wear leveling, or
load balancing" — and Section II claims the algorithm works "using any
cost function that can be defined for a platform".  This module makes
those sentences concrete: each objective is a small callable scoring a
(task, element) pair in the same context the built-in
:class:`~repro.core.cost.MappingCost` sees, and
:class:`CompositeCost` sums any weighted set of them into a drop-in
cost function for MapApplication / Kairos.

Provided objectives:

* :class:`CommunicationObjective` / :class:`FragmentationObjective` —
  the paper's two, re-packaged for composition;
* :class:`EnergyObjective` — static per-cycle energy rates per element
  type plus per-hop route energy (the "minimal energy consumption"
  goal);
* :class:`WearLevelingObjective` — penalises elements by accumulated
  allocation count (the :class:`AllocationState` keeps a wear odometer
  that survives releases);
* :class:`LoadBalancingObjective` — penalises elements by current
  utilization, spreading concurrent load.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.arch.elements import ElementType, ProcessingElement
from repro.arch.state import AllocationState
from repro.apps.taskgraph import Application
from repro.core.cost import (
    DEFAULT_DISTANCE_PENALTY,
    CostWeights,
    MappingCost,
)
from repro.core.search import SparseDistanceMatrix

#: default energy per requested cycle, by element type (abstract
#: J/cycle units; DSPs are the efficient workhorses, the GPP pays a
#: generality tax, the FPGA sits in between per effective cycle)
DEFAULT_ENERGY_RATES = {
    ElementType.DSP: 1.0,
    ElementType.GPP: 2.5,
    ElementType.FPGA: 1.5,
    ElementType.MEMORY: 0.2,
    ElementType.TEST: 0.5,
    ElementType.IO: 0.3,
}
#: default energy per hop and bandwidth unit of a route
DEFAULT_HOP_ENERGY = 0.05


class Objective:
    """One weighted scoring term; subclasses implement :meth:`score`."""

    def __init__(self, weight: float = 1.0):
        if weight < 0:
            raise ValueError("objective weight must be non-negative")
        self.weight = weight

    def score(
        self,
        app: Application,
        app_id: str,
        task: str,
        element: ProcessingElement,
        state: AllocationState,
        placement: dict[str, str],
        distances: SparseDistanceMatrix,
    ) -> float:
        raise NotImplementedError

    def __call__(self, *context) -> float:
        if self.weight == 0:
            return 0.0
        return self.weight * self.score(*context)


class CommunicationObjective(Objective):
    """The paper's communication-distance term, composition-ready."""

    def __init__(self, weight: float = 1.0,
                 distance_penalty: int = DEFAULT_DISTANCE_PENALTY):
        super().__init__(weight)
        self._inner = MappingCost(CostWeights(1.0, 0.0), distance_penalty)

    def score(self, app, app_id, task, element, state, placement, distances):
        return self._inner.communication_term(
            app, task, element, placement, distances
        )


class FragmentationObjective(Objective):
    """The paper's fragmentation term (bonuses enter as negative cost)."""

    def __init__(self, weight: float = 1.0):
        super().__init__(weight)
        self._inner = MappingCost(CostWeights(0.0, 1.0))

    def score(self, app, app_id, task, element, state, placement, distances):
        return -self._inner.fragmentation_bonus(
            app, app_id, task, element, state, placement
        )


class EnergyObjective(Objective):
    """Estimated energy of running the task here + moving its data.

    Computation: the bound implementation's requested cycles priced at
    the element type's rate.  Communication: estimated route length to
    each mapped peer times the channel bandwidth times the per-hop
    energy (unknown distances use the communication penalty).
    """

    def __init__(
        self,
        weight: float = 1.0,
        energy_rates: dict | None = None,
        hop_energy: float = DEFAULT_HOP_ENERGY,
        distance_penalty: int = DEFAULT_DISTANCE_PENALTY,
        requirements: dict | None = None,
    ):
        super().__init__(weight)
        self.energy_rates = dict(DEFAULT_ENERGY_RATES)
        if energy_rates:
            self.energy_rates.update(energy_rates)
        self.hop_energy = hop_energy
        self.distance_penalty = distance_penalty
        #: optional task -> ResourceVector map; without it the cycles
        #: demand is read from the element capacity consumed so far
        #: (set by CompositeCost.bind_requirements before mapping)
        self.requirements = requirements or {}

    def bind_requirements(self, requirements: dict) -> None:
        self.requirements = requirements

    def score(self, app, app_id, task, element, state, placement, distances):
        rate = self.energy_rates.get(element.kind, 1.0)
        requirement = self.requirements.get(task)
        cycles = requirement["cycles"] if requirement is not None else 1.0
        energy = rate * cycles
        for channel in app.incident_channels(task):
            peer = channel.target if channel.source == task else channel.source
            peer_element = placement.get(peer)
            if peer_element is None:
                continue
            hops = distances.get(element.name, peer_element)
            if hops is None:
                hops = self.distance_penalty
            energy += self.hop_energy * hops * channel.bandwidth
        return energy


class WearLevelingObjective(Objective):
    """Prefer elements with the least accumulated allocations.

    The allocation state's wear odometer counts every ``occupy`` an
    element ever served (releases do not decrement), so long-running
    systems rotate load across spare tiles instead of grinding the
    same ones — the "wear of materials" concern of the paper's
    introduction.
    """

    def score(self, app, app_id, task, element, state, placement, distances):
        return float(state.wear(element))


class LoadBalancingObjective(Objective):
    """Prefer currently idle elements (utilization-proportional cost)."""

    def score(self, app, app_id, task, element, state, placement, distances):
        capacity = element.capacity.total()
        if capacity == 0:
            return 0.0
        free = state.free(element).total()
        return (capacity - free) / capacity


class CompositeCost:
    """A weighted sum of objectives, drop-in for MapApplication.

    Mirrors the calling convention of
    :class:`~repro.core.cost.MappingCost`, so it can be passed to
    :func:`repro.core.mapping.map_application` or
    :class:`repro.manager.kairos.Kairos` directly::

        cost = CompositeCost([
            CommunicationObjective(1.0),
            WearLevelingObjective(5.0),
        ])
        manager = Kairos(platform, weights=cost)
    """

    def __init__(self, objectives: Iterable[Objective]):
        self.objectives = tuple(objectives)
        if not self.objectives:
            raise ValueError("CompositeCost needs at least one objective")

    def bind_requirements(self, requirements: dict) -> None:
        """Feed task requirements to objectives that price them."""
        for objective in self.objectives:
            binder = getattr(objective, "bind_requirements", None)
            if binder is not None:
                binder(requirements)

    def __call__(
        self,
        app: Application,
        app_id: str,
        task: str,
        element: ProcessingElement,
        state: AllocationState,
        placement: dict[str, str],
        distances: SparseDistanceMatrix,
    ) -> float:
        return sum(
            objective(app, app_id, task, element, state, placement, distances)
            for objective in self.objectives
        )
