"""The paper's primary contribution: the incremental mapping phase.

``map_application`` implements MapApplication (paper Fig. 5) on top of
the ring-wise platform search, the Cohen–Katzir–Raz GAP approximation
and the two-objective mapping cost function.
"""

from repro.core.cost import (
    BOTH,
    COMMUNICATION,
    FRAGMENTATION,
    NAMED_WEIGHTS,
    NONE,
    CostWeights,
    MappingCost,
)
from repro.core.distfield import (
    DistanceField,
    DistanceFieldEngine,
    FieldStats,
)
from repro.core.gap import UNMAPPED_COST, GapAssignment, GapSolver
from repro.core.objectives import (
    CommunicationObjective,
    CompositeCost,
    EnergyObjective,
    FragmentationObjective,
    LoadBalancingObjective,
    Objective,
    WearLevelingObjective,
)
from repro.core.knapsack import (
    KnapsackItem,
    KnapsackSolution,
    solve_dp,
    solve_exhaustive,
    solve_greedy,
)
from repro.core.mapping import (
    LayerTrace,
    MappingError,
    MappingOptions,
    MappingResult,
    available_elements,
    map_application,
)
from repro.core.search import RingSearch, SparseDistanceMatrix

__all__ = [
    "BOTH",
    "COMMUNICATION",
    "CommunicationObjective",
    "CompositeCost",
    "CostWeights",
    "DistanceField",
    "DistanceFieldEngine",
    "EnergyObjective",
    "FieldStats",
    "FRAGMENTATION",
    "FragmentationObjective",
    "LoadBalancingObjective",
    "GapAssignment",
    "GapSolver",
    "KnapsackItem",
    "KnapsackSolution",
    "LayerTrace",
    "MappingCost",
    "MappingError",
    "MappingOptions",
    "MappingResult",
    "NAMED_WEIGHTS",
    "NONE",
    "Objective",
    "RingSearch",
    "SparseDistanceMatrix",
    "UNMAPPED_COST",
    "WearLevelingObjective",
    "available_elements",
    "map_application",
    "solve_dp",
    "solve_exhaustive",
    "solve_greedy",
]
