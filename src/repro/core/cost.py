"""The mapping cost function (paper Section III-D).

"To evaluate the cost of mapping a task t to an element e, we first
look at the total communication distance involved with candidate
element e ... If a required distance lookup fails, a relative high
penalty is given to e ... For yet unmapped tasks the distance is
inherently unknown, and therefore left out of the equation.

The other mapping objective we consider is external resource
fragmentation.  An element e receives decreasing bonuses for neighbor
elements that retain communication peers of t, tasks from the same
application A, or tasks from other applications.  Additionally, the
connectivity of an element e is taken into account as well; elements
on the borders of chips are thus more favorable to use.  The ratio
between these two objectives is given by weight parameters."

The total cost is ``w_comm * distance_term - w_frag * bonus_term``;
lower is better.  :data:`NONE`, :data:`COMMUNICATION`,
:data:`FRAGMENTATION` and :data:`BOTH` are the four configurations of
Figs. 8-10.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.elements import ProcessingElement
from repro.arch.state import AllocationState
from repro.apps.taskgraph import Application
from repro.core.search import SparseDistanceMatrix

#: graded neighbour bonuses (Section III-D: "decreasing bonuses")
BONUS_PEER = 3.0          #: neighbour hosts a communication peer of t
BONUS_SAME_APP = 2.0      #: neighbour hosts another task of the same app
BONUS_OTHER_APP = 1.0     #: neighbour hosts tasks of other applications
#: weight of the border/connectivity bonus per missing neighbour
BONUS_BORDER = 0.5
#: hop penalty used when the sparse distance matrix has no entry
DEFAULT_DISTANCE_PENALTY = 32


@dataclass(frozen=True)
class CostWeights:
    """The two objective weights of the paper's experiments.

    Fig. 10 samples ``communication`` in [0..25] and ``fragmentation``
    in [0..1000]; (0, 0) disables the cost function entirely (the
    "None" configuration, reducing mapping to first-fit in platform
    search order).
    """

    communication: float = 1.0
    fragmentation: float = 1.0

    def __post_init__(self) -> None:
        if self.communication < 0 or self.fragmentation < 0:
            raise ValueError("cost weights must be non-negative")

    @property
    def disabled(self) -> bool:
        return self.communication == 0 and self.fragmentation == 0


#: The four named configurations of Figs. 8 and 9.
NONE = CostWeights(0.0, 0.0)
COMMUNICATION = CostWeights(1.0, 0.0)
FRAGMENTATION = CostWeights(0.0, 1.0)
BOTH = CostWeights(1.0, 1.0)

NAMED_WEIGHTS: dict[str, CostWeights] = {
    "None": NONE,
    "Communication": COMMUNICATION,
    "Fragmentation": FRAGMENTATION,
    "Both": BOTH,
}


class MappingCost:
    """Evaluates the cost of placing a task onto a candidate element.

    The cost depends on the *committed* placement (anchors and earlier
    layers) and the global allocation state, but not on the tentative
    assignments inside the current GAP layer — so one evaluation per
    (task, element) pair per layer suffices (see the complexity remark
    below paper Fig. 5).
    """

    def __init__(
        self,
        weights: CostWeights = BOTH,
        distance_penalty: int = DEFAULT_DISTANCE_PENALTY,
    ) -> None:
        self.weights = weights
        self.distance_penalty = distance_penalty
        self._max_connectivity: dict[int, int] = {}

    def __call__(
        self,
        app: Application,
        app_id: str,
        task: str,
        element: ProcessingElement,
        state: AllocationState,
        placement: dict[str, str],
        distances: SparseDistanceMatrix,
        _comm_peers: tuple | None = None,
        _frag_peers: frozenset | None = None,
        _frag_status: dict | None = None,
    ) -> float:
        """Cost of mapping ``task`` onto ``element``; lower is better.

        ``placement`` maps already-mapped task names of this
        application to element names; ``distances`` is the sparse
        matrix accumulated by the platform search.  ``_comm_peers`` /
        ``_frag_peers`` optionally carry the mapped peers pre-resolved
        to interned node ids, and ``_frag_status`` a per-layer
        neighbour-status memo (the mapping layer hoists them — the
        placement cannot change while one layer's GAP runs).
        """
        if self.weights.disabled:
            return 0.0
        cost = 0.0
        if _comm_peers is not None and _frag_peers is not None:
            if self.weights.communication and _comm_peers:
                cost += self.weights.communication * self._communication_ids(
                    element, distances, _comm_peers
                )
            if self.weights.fragmentation:
                cost -= self.weights.fragmentation * self._fragmentation_ids(
                    app_id, element, state, _frag_peers, _frag_status
                )
            return cost
        # one incidence lookup feeds both terms (they are evaluated for
        # every (task, element) pair of every layer)
        entry = app._incidence().get(task)
        channels, neighbors = entry if entry is not None else ((), ())
        if self.weights.communication:
            cost += self.weights.communication * self.communication_term(
                app, task, element, placement, distances,
                _channels=channels,
            )
        if self.weights.fragmentation:
            cost -= self.weights.fragmentation * self.fragmentation_bonus(
                app, app_id, task, element, state, placement,
                _neighbors=neighbors,
            )
        return cost

    def _communication_ids(
        self,
        element: ProcessingElement,
        distances: SparseDistanceMatrix,
        peer_ids: tuple,
    ) -> float:
        """Id-resolved :meth:`communication_term` (one row fetch per
        evaluation; identical arithmetic)."""
        # only ever called with the mapping layer's own search matrix:
        # platform-bound (node_ids present) and fallback-free, because
        # RingSearch populates rows directly and never records names
        node_ids = distances._node_ids
        element_id = node_ids.get(element.name)
        penalty = self.distance_penalty
        if element_id is None:  # pragma: no cover - defensive
            return penalty * float(len(peer_ids))
        rows = distances._rows
        # cells of engine-served rows are visible only up to the
        # search's current ring — a capped miss must stay a miss (the
        # live search would not have filled the cell yet)
        cap = distances._cap
        total = 0.0
        row_e = rows.get(element_id)
        for peer_id in peer_ids:
            if peer_id == element_id:
                continue  # same element: distance 0
            if peer_id < 0:
                total += penalty
                continue
            best = -1
            if row_e is not None:
                known = row_e[peer_id]
                if known >= 0 and (cap is None or known <= cap):
                    best = known
            row_p = rows.get(peer_id)
            if row_p is not None:
                known = row_p[element_id]
                if (
                    0 <= known
                    and (cap is None or known <= cap)
                    and (best < 0 or known < best)
                ):
                    best = known
            total += penalty if best < 0 else best
        return total

    def _fragmentation_ids(
        self,
        app_id: str,
        element: ProcessingElement,
        state: AllocationState,
        peer_element_ids: frozenset,
        status: dict | None = None,
    ) -> float:
        """Id-resolved :meth:`fragmentation_bonus` body.

        ``status`` optionally carries a per-layer neighbour-status
        memo (neighbour id -> occupant bonus): the bonus is a pure
        function of (neighbour, app_id, allocation state), and one GAP
        layer evaluates the same neighbourhoods for every (task,
        element) pair while the epoch is frozen, so the mapping layer
        hoists one dict per layer instead of re-walking occupant lists
        per evaluation.
        """
        platform = state.platform
        bonus = 0.0
        all_occupants = state._occupants
        neighbor_ids = platform.element_neighbor_ids(element)
        if status is None:
            for neighbor_id in neighbor_ids:
                if neighbor_id in peer_element_ids:
                    bonus += BONUS_PEER
                    continue
                occupants = all_occupants[neighbor_id]
                if not occupants:
                    continue
                for occupant in occupants:
                    if occupant.app_id == app_id:
                        bonus += BONUS_SAME_APP
                        break
                else:
                    bonus += BONUS_OTHER_APP
        else:
            for neighbor_id in neighbor_ids:
                if neighbor_id in peer_element_ids:
                    bonus += BONUS_PEER
                    continue
                cached = status.get(neighbor_id)
                if cached is None:
                    occupants = all_occupants[neighbor_id]
                    if not occupants:
                        cached = 0.0
                    else:
                        for occupant in occupants:
                            if occupant.app_id == app_id:
                                cached = BONUS_SAME_APP
                                break
                        else:
                            cached = BONUS_OTHER_APP
                    status[neighbor_id] = cached
                bonus += cached
        platform_key = id(platform)
        max_connectivity = self._max_connectivity.get(platform_key)
        if max_connectivity is None:
            max_connectivity = max(
                (
                    platform.element_connectivity(e)
                    for e in platform.elements
                ),
                default=0,
            )
            self._max_connectivity[platform_key] = max_connectivity
        bonus += BONUS_BORDER * (max_connectivity - len(neighbor_ids))
        return bonus

    # -- objective terms ---------------------------------------------------

    def communication_term(
        self,
        app: Application,
        task: str,
        element: ProcessingElement,
        placement: dict[str, str],
        distances: SparseDistanceMatrix,
        _channels: tuple | None = None,
    ) -> float:
        """Total estimated route length to already-mapped peers.

        Each channel between ``task`` and a mapped peer contributes the
        sparse-matrix distance between ``element`` and the peer's
        element, or :attr:`distance_penalty` when the lookup fails
        (the search never reached one from the other — "we assume a
        large communication distance").  Channels to unmapped tasks
        are left out.
        """
        total = 0.0
        channels = (
            app.incident_channels(task) if _channels is None else _channels
        )
        if not channels:
            return total
        # symmetric distance lookup inlined over interned ids (one
        # element-id resolution per call instead of two name hashes
        # per channel); the name path serves platform-less matrices
        node_ids = distances._node_ids
        rows = distances._rows
        cap = distances._cap
        element_id = (
            node_ids.get(element.name) if node_ids is not None else None
        )
        fallback = distances._fallback
        penalty = self.distance_penalty
        for channel in channels:
            peer = channel.target if channel.source == task else channel.source
            peer_element = placement.get(peer)
            if peer_element is None:
                continue
            if element_id is None or fallback:
                distance = distances.get(element.name, peer_element)
                total += penalty if distance is None else distance
                continue
            peer_id = node_ids.get(peer_element)
            if peer_id is None:
                total += penalty
                continue
            if peer_id == element_id:
                continue  # distance 0
            best = -1
            row = rows.get(element_id)
            if row is not None:
                known = row[peer_id]
                if known >= 0 and (cap is None or known <= cap):
                    best = known
            row = rows.get(peer_id)
            if row is not None:
                known = row[element_id]
                if (
                    0 <= known
                    and (cap is None or known <= cap)
                    and (best < 0 or known < best)
                ):
                    best = known
            total += penalty if best < 0 else best
        return total

    def fragmentation_bonus(
        self,
        app: Application,
        app_id: str,
        task: str,
        element: ProcessingElement,
        state: AllocationState,
        placement: dict[str, str],
        _neighbors: tuple[str, ...] | None = None,
    ) -> float:
        """Graded neighbourhood bonuses plus the border bonus.

        A neighbour element contributes the *highest* single bonus it
        qualifies for (peer > same app > other app); an element whose
        neighbourhood is already busy is attractive because using it
        does not strand fresh resources.  The border term favours
        low-connectivity elements: filling the chip from its edges
        inward keeps the contiguous free area compact.
        """
        platform = state.platform
        node_ids = platform._node_ids
        # peer elements as interned ids: the neighbourhood loop then
        # compares ints instead of hashing node names per neighbour
        peer_element_ids = set()
        task_peers = app.neighbors(task) if _neighbors is None else _neighbors
        for peer in task_peers:
            placed = placement.get(peer)
            if placed is not None:
                peer_id = node_ids.get(placed)
                if peer_id is not None:
                    peer_element_ids.add(peer_id)
        bonus = 0.0
        all_occupants = state._occupants
        neighbor_ids = platform.element_neighbor_ids(element)
        for neighbor_id in neighbor_ids:
            if neighbor_id in peer_element_ids:
                bonus += BONUS_PEER
                continue
            occupants = all_occupants[neighbor_id]
            if not occupants:
                continue
            for occupant in occupants:
                if occupant.app_id == app_id:
                    bonus += BONUS_SAME_APP
                    break
            else:
                bonus += BONUS_OTHER_APP
        platform_key = id(state.platform)
        max_connectivity = self._max_connectivity.get(platform_key)
        if max_connectivity is None:
            max_connectivity = max(
                (
                    state.platform.element_connectivity(e)
                    for e in state.platform.elements
                ),
                default=0,
            )
            self._max_connectivity[platform_key] = max_connectivity
        # element_connectivity(element) is by definition the length of
        # the adjacency list already in hand
        bonus += BONUS_BORDER * (max_connectivity - len(neighbor_ids))
        return bonus
