"""Incremental per-origin distance fields for the mapping phase.

PR 3's phase-latency histograms show the mapping phase owning roughly
two thirds of pipeline time under queueing policies, and almost all of
it is the Section III-B ring search: every attempt re-runs a
breadth-first exploration of the platform from scratch even though
consecutive attempts observe nearly identical platform state.  This
module makes that exploration *incremental*: a
:class:`DistanceFieldEngine` keeps one persistent
:class:`DistanceField` per search origin — the distance row plus the
**ordered ring lists** of the breadth-first traversal, grown lazily to
the depth searches actually request — and serves it across attempts
and epochs, invalidating by *deltas* instead of recomputing.

What a field depends on
-----------------------

A congestion-respecting ring search treats a link as a wall exactly
when it is failed or offers no free virtual channel in either
direction (:class:`~repro.core.search.RingSearch`'s traversability
predicate).  A per-origin BFS is therefore a pure function of

* the frozen platform adjacency (node order and per-node neighbour
  order — both immutable after ``freeze()``), and
* the **traversability bit of every link**, which changes only when a
  reservation consumes a link's last free virtual channel, a release
  returns it, or the link fails/heals.  Element occupancy, element
  faults and bandwidth levels are invisible to the search.

:class:`~repro.arch.state.AllocationState` records exactly those
changes in its append-only *link-traversability flip log*: one link id
per committed flip, with journal undo appending the *reversing* flip
rather than erasing history.  A field stamped with the log position at
validation time (its *mark*) is valid at a later position iff every
link has an even number of log entries in between — the odd ones are
the net-dirty links.

Serving, repairing, extending
-----------------------------

``field(origin_id)`` revalidates (or creates) a field in O(dirty):

1. **Hit** — no net-dirty link touches the explored prefix (links
   whose endpoints both carry no cached distance are incident to no
   explored ring, so they cannot alter one).  The cached rings are
   served as-is.
2. **Repair** — some net-dirty link touches an explored node.  Let
   ``r_stop`` be the minimum cached distance over the touched
   endpoints.  Ring ``j`` of a BFS is generated purely from ring
   ``j-1``'s ordered nodes and the traversability of their incident
   links, so by induction every ring up to ``r_stop`` is unchanged —
   those are kept verbatim and the deeper rings are discarded
   (distance cells reset).  No recomputation happens here: cost is
   bounded by the *discarded* region, and rebuilding is deferred.
3. **Miss** — cold origin, a trimmed log, or a ``restore()``
   timeline break: a fresh one-ring field (the origin itself).

``ring(field, j)`` then serves ring ``j``, **extending the field by
breadth-first expansion against the live ledgers** only when the
caller asks past the cached prefix.  The first search from an origin
therefore pays exactly the BFS it would have paid anyway (plus the
cache write); repeated searches replay ring lists; a repaired field
re-expands only as deep as the next search actually looks.  Between a
``field()`` fetch and the last ``ring()`` call of the same search the
caller must not flip link traversability — the mapping phase
satisfies this trivially (layer searches only read; layer commits
occupy elements, which never flips a link).

Bit-identity
------------

The mapping phase is sensitive not only to the distances but to the
**discovery order** of candidate elements (the GAP solver breaks ties
in presentation order).  The ring lists preserve it exactly: in the
lockstep multi-origin search each origin's BFS is independent of the
others (they share only the *reporting* mask), so a cached solo-BFS
ring equals the per-origin ring of the live search, node for node, in
the same order — the induction above covers order as well as
membership, because ring ``j``'s order is a function of ring
``j-1``'s order and the interned adjacency lists.
:mod:`tests.test_distfield` asserts lockstep equality of layouts,
churn digests and service traces with the engine on and off.

The engine also serves the routing phase: a clean, *complete* field
(one whose expansion exhausted the reachable component — exactly what
a failed layer search leaves behind on a congested platform) answers
"is the target reachable from the source over any traversable links
at all?", which is a **sound route-length lower bound** (unreachable
= infinite): every directed route hop needs a free virtual channel
and is therefore traversable.  :meth:`unreachable` only ever probes
clean complete fields — it never computes, repairs or extends — so
the router's fast-fail costs nothing when the cache cannot prove
anything.

Lifecycle: the engine belongs to one manager
(:class:`~repro.manager.kairos.Kairos` owns one when constructed with
``incremental=True``, the default); ``recover()`` resets it at fault
boundaries and ``restore()`` invalidates it wholesale through the log
base.  Fields read inside a transaction that later rolls back stay
sound automatically: the rollback appends reversing flips, so a field
that observed the rolled-back traversability reads as dirty and is
truncated back to the unaffected prefix.
"""

from __future__ import annotations

from repro.arch.state import AllocationState
from repro.obs.registry import NullRegistry
from repro.obs.tracing import NullTracer

_NULL_REGISTRY = NullRegistry()
_NULL_TRACER = NullTracer()


class FieldStats:
    """Observability counters of one engine (all monotone).

    The counters live as :class:`repro.obs.registry.Counter` handles
    (``c_hits``, ``c_repairs``, ...) interned into the registry the
    engine was built with — ``distfield.hits`` etc. in a metrics
    snapshot.  The bare attribute names (``stats.hits``) survive as
    read-through properties so existing callers and tests keep
    working; prefer the registry names going forward (see
    docs/observability.md for the deprecation note).

    Counter meanings:

    * ``hits`` — field revalidations served without discarding anything
    * ``repairs`` — revalidations that truncated a dirty suffix
      (prefix kept)
    * ``misses`` — cold fetches: new origin, trimmed log, or a broken
      timeline
    * ``rings_reused`` — ring requests served from the cached prefix
    * ``rings_recomputed`` — rings built (or rebuilt) by live BFS
      expansion
    * ``rings_discarded`` — rings discarded by repairs (the
      re-expansion is lazy, so this bounds repair cost; it is *not*
      added to rings_recomputed until a search asks for the depth
      again)
    * ``route_fastfails`` — routing-phase probes answered
      "unreachable" without a path search
    * ``bypasses`` — fetch cycles served live because repairs would
      have discarded more than they kept — the fields are left
      untouched so that oscillating links (a release whose capacity
      the next admission re-takes) can cancel out by parity and
      re-validate them
    * ``resets`` — whole-cache invalidations (fault recovery /
      explicit reset)
    * ``evictions`` — safety-net wholesale evictions (cache overflow)
    """

    NAMES = (
        "hits", "repairs", "misses", "rings_reused", "rings_recomputed",
        "rings_discarded", "route_fastfails", "bypasses", "resets",
        "evictions",
    )

    __slots__ = tuple(f"c_{name}" for name in NAMES)

    def __init__(self, registry=None) -> None:
        registry = _NULL_REGISTRY if registry is None else registry
        for name in self.NAMES:
            setattr(self, f"c_{name}", registry.counter(f"distfield.{name}"))

    def as_dict(self) -> dict:
        """JSON-able summary with the derived rates the benches report."""
        fetches = self.hits + self.repairs + self.misses
        rings = self.rings_reused + self.rings_recomputed
        return {
            "hits": self.hits,
            "repairs": self.repairs,
            "misses": self.misses,
            "fetches": fetches,
            "hit_rate": self.hits / fetches if fetches else 0.0,
            "repair_rate": self.repairs / fetches if fetches else 0.0,
            "miss_rate": self.misses / fetches if fetches else 0.0,
            "rings_reused": self.rings_reused,
            "rings_recomputed": self.rings_recomputed,
            "rings_discarded": self.rings_discarded,
            "ring_reuse_ratio": self.rings_reused / rings if rings else 0.0,
            "route_fastfails": self.route_fastfails,
            "bypasses": self.bypasses,
            "resets": self.resets,
            "evictions": self.evictions,
        }


def _stat_property(name: str) -> property:
    attr = f"c_{name}"

    def getter(self):
        return getattr(self, attr).value

    def setter(self, value):
        handle = getattr(self, attr)
        handle._values[handle._slot] = value

    return property(getter, setter, doc=f"read-through for c_{name}.value")


for _name in FieldStats.NAMES:
    setattr(FieldStats, _name, _stat_property(_name))
del _name


class DistanceField:
    """One origin's persistent, lazily-grown BFS state.

    ``row[node_id]`` is the hop distance from the origin over
    traversable links for every node in the explored prefix (-1 =
    not explored yet, or unreachable once ``complete``); ``rings[j]``
    is the ordered list of node ids at distance ``j`` (``rings[0]`` is
    the origin itself); ``complete`` is set when an expansion step
    found the frontier empty, i.e. the whole reachable component is in
    ``rings``.  ``mark`` is the link-flip-log position the field was
    last validated against.  The arrays are owned by the engine —
    callers treat them as read-only and must not hold them across
    another ``field()`` fetch for the same origin.
    """

    __slots__ = (
        "origin_id", "respect_congestion", "mark", "row", "rings",
        "element_rings", "parent", "complete", "plan_end", "plan_r_stop",
        "stale",
    )

    def __init__(
        self,
        origin_id: int,
        respect_congestion: bool,
        node_count: int,
    ) -> None:
        self.origin_id = origin_id
        self.respect_congestion = respect_congestion
        self.mark = 0
        self.row = [-1] * node_count
        self.row[origin_id] = 0
        self.rings: list[list[int]] = [[origin_id]]
        #: per ring, the processing elements among its nodes as
        #: ``(node id, element)`` pairs, in discovery order — replaying
        #: searches report candidates from these without touching the
        #: ring's router nodes at all
        self.element_rings: list[list] = [[]]
        #: discovering parent per explored node (-1 for the origin;
        #: meaningful only while ``row[node] >= 0``) — lets the
        #: validity check tell BFS *tree* edges from never-used ones
        self.parent = [-1] * node_count
        self.complete = False
        #: memoized revalidation plan: while the flip log still ends at
        #: ``plan_end`` and the field is untouched, ``plan_r_stop`` is
        #: its dirty frontier (None = clean).  Bypassed cycles leave
        #: fields as they are, so consecutive searches against a quiet
        #: log replan for free.
        self.plan_end = -1
        self.plan_r_stop: int | None = None
        #: consecutive fetch cycles this field was seen dirty without
        #: being repaired (waiting for parity to cancel the flips);
        #: past a small bound the oscillation bet is off and the next
        #: cycle repairs it for real
        self.stale = 0


#: flip-log length that triggers trimming (drops the oldest half; any
#: field older than the cut becomes a miss — a memory bound, not state)
_FLIP_LOG_LIMIT = 4096

#: cached-field count that triggers a wholesale eviction.  Keys are
#: (origin node id, congestion flag), so a platform can populate at
#: most ``2 * node_count`` entries — this is a safety net for callers
#: cycling many platforms through one engine, not a tuning knob.
_FIELD_LIMIT = 8192

#: how many consecutive dirty sightings a field survives un-repaired
#: before the parity-convergence bet is abandoned and it is truncated
#: for real (see :meth:`DistanceFieldEngine.acquire`)
_STALE_LIMIT = 4

#: repair-pressure hysteresis: consecutive repair-voting cycles drive
#: the pressure up, clean ones drive it down; at or above the high
#: water mark the engine stops even *planning* (serving only every
#: :data:`_PROBE_INTERVAL`-th cycle to notice the regime changing),
#: and re-engages below the low water mark
_PRESSURE_HIGH = 4
_PRESSURE_LOW = 0
_PRESSURE_MAX = 8
_PROBE_INTERVAL = 32


class DistanceFieldEngine:
    """Persistent, delta-invalidated per-origin BFS distance fields.

    One engine per :class:`~repro.arch.state.AllocationState` (one
    manager): fields read the state's live ledgers when they extend,
    and the state's link-flip log when they validate.  The engine
    performs no locking and no defensive copies — the same
    single-pipeline exclusivity contract as the state's scratch pool.
    """

    __slots__ = (
        "state", "platform", "stats", "_tracer", "_fields", "_link_ends",
        "_dirty_memo", "_cycle", "_pressure", "_dormant", "forced_dormant",
    )

    def __init__(
        self, state: AllocationState, registry=None, tracer=None
    ) -> None:
        self.state = state
        self.platform = state.platform
        self.stats = FieldStats(registry)
        self._tracer = _NULL_TRACER if tracer is None else tracer
        #: (origin id, respect_congestion) -> DistanceField
        self._fields: dict[tuple[int, bool], DistanceField] = {}
        #: link id -> (node id, node id), built on first validity check
        self._link_ends: list[tuple[int, int]] | None = None
        #: parity scans shared across fields and extended incrementally:
        #: start mark -> [log position consumed so far, odd-parity set].
        #: Fields fetched at the same mark share one entry, and when the
        #: log grows the entry absorbs only the *new* flips instead of
        #: rescanning its whole suffix.
        self._dirty_memo: dict[int, list] = {}
        #: global repair-pressure controller (see :meth:`acquire`)
        self._cycle = 0
        self._pressure = 0
        self._dormant = False
        #: externally-imposed dormancy (the brownout controller's
        #: level-3 lever): the engine answers None unconditionally —
        #: decision-neutral, since callers run their live BFS instead
        self.forced_dormant = False

    # -- fetch: revalidate or create ---------------------------------------

    def acquire(
        self,
        origin_ids,
        respect_congestion: bool = True,
        force: bool = False,
    ) -> list[DistanceField] | None:
        """Fields for one search's origins, or None to run it live.

        The engine first *plans* the cycle: per origin it classifies
        the cached field as clean, repairable at some ring, or cold —
        without touching anything.  Clean fields replay and cold
        origins build lazily (an investment that costs one live BFS
        and pays back on every later hit).  A field that needs repair
        instead votes to **bypass**: the caller runs its ordinary
        live search, and the fields are left exactly as they are.
        That is more than damage control — under admission churn the
        same links oscillate around their saturation boundary (a
        departure frees the virtual channel the next admission
        re-takes), so a field that looks dirty right now often
        re-validates *by parity* a few events later; eager truncation
        would destroy precisely the rings about to become serveable
        again.  Only when a field stays dirty for
        :data:`_STALE_LIMIT` consecutive sightings is the bet
        abandoned and the repair committed.

        A hysteresis controller sits above the per-cycle rule: when
        repair votes dominate recent cycles (sustained saturation,
        where field reuse is structurally impossible), the engine goes
        **dormant** — it stops even planning, answering None at the
        cost of one counter check, and probes every
        :data:`_PROBE_INTERVAL`-th cycle to notice the regime calming
        down.  Worst case the engine therefore costs a couple of
        integer compares per search; best case the whole mapping
        phase replays from cache.
        """
        if not force:
            if self.forced_dormant:
                # no probe cycles while forced: the imposer lifts
                # dormancy explicitly (brownout recovery), not by
                # regime detection
                self.stats.c_bypasses.inc()
                return None
            self._cycle += 1
            if self._dormant and self._cycle % _PROBE_INTERVAL:
                self.stats.c_bypasses.inc()
                return None
        state = self.state
        flips = state._link_flips
        if len(flips) > _FLIP_LOG_LIMIT:
            self._trim_log()
            flips = state._link_flips
        mark_now = state._flip_base + len(flips)
        fields = self._fields
        plan: list = []
        fresh_repairs = False
        for origin_id in origin_ids:
            key = (origin_id, respect_congestion)
            cached = fields.get(key)
            if cached is None:
                plan.append((key, None, None))
                continue
            if not respect_congestion:
                # topology-only field: the frozen platform cannot change
                plan.append((key, cached, -1))
                continue
            if cached.plan_end == mark_now:
                r_stop = cached.plan_r_stop
            else:
                dirty = self._net_dirty_links(cached)
                if dirty is None:  # unverifiable: treat as cold
                    plan.append((key, None, None))
                    continue
                r_stop = self._dirty_frontier(cached, dirty)
                cached.plan_end = mark_now
                cached.plan_r_stop = r_stop
            if r_stop is None:
                plan.append((key, cached, -1))
            else:
                if cached.stale < _STALE_LIMIT:
                    fresh_repairs = True
                plan.append((key, cached, r_stop))
        if not force:
            if fresh_repairs:
                if self._pressure < _PRESSURE_MAX:
                    self._pressure += 1
                if self._pressure >= _PRESSURE_HIGH:
                    self._dormant = True
            else:
                if self._pressure > 0:
                    self._pressure -= 1
                if self._pressure <= _PRESSURE_LOW:
                    self._dormant = False
            if fresh_repairs:
                self.stats.c_bypasses.inc()
                for _key, cached, r_stop in plan:
                    if (
                        cached is not None
                        and r_stop is not None and r_stop >= 0
                    ):
                        cached.stale += 1
                return None
        tracer = self._tracer
        if tracer.enabled:
            cold = sum(1 for _key, cached, _r in plan if cached is None)
            repairing = sum(
                1 for _key, cached, r_stop in plan
                if cached is not None and r_stop is not None and r_stop >= 0
            )
            if cold or repairing:
                # span only cycles doing cold builds or repairs —
                # clean replays are the overwhelmingly common case and
                # would drown the span stream for no information
                with tracer.span(
                    "distfield.acquire",
                    origins=len(plan), misses=cold, repairs=repairing,
                ):
                    return self._materialize(plan, mark_now)
        return self._materialize(plan, mark_now)

    def _materialize(self, plan: list, mark_now: int) -> list[DistanceField]:
        """Execute an acquire plan: build cold fields, commit repairs."""
        fields = self._fields
        acquired: list[DistanceField] = []
        for key, cached, r_stop in plan:
            if cached is None:
                cached = DistanceField(
                    key[0], key[1], self.platform.node_count
                )
                if len(fields) >= _FIELD_LIMIT:
                    fields.clear()
                    self.stats.c_evictions.inc()
                fields[key] = cached
                self.stats.c_misses.inc()
            elif r_stop is not None and r_stop >= 0:
                self._truncate(cached, r_stop)
                self.stats.c_repairs.inc()
            else:
                self.stats.c_hits.inc()
            cached.mark = mark_now
            cached.plan_end = mark_now
            cached.plan_r_stop = None
            cached.stale = 0
            acquired.append(cached)
        return acquired

    def field(
        self, origin_id: int, respect_congestion: bool = True
    ) -> DistanceField:
        """One origin's field, revalidated unconditionally (no bypass)."""
        return self.acquire((origin_id,), respect_congestion, force=True)[0]

    def ring(self, field: DistanceField, index: int) -> list[int] | None:
        """Ring ``index`` of a fetched field, or None past exhaustion.

        Serves the cached prefix and extends by live BFS expansion on
        demand.  Only legal between the ``field()`` fetch and the end
        of the same search, with no link-traversability change in
        between (see the module doc) — which is exactly how
        :class:`~repro.core.search.RingSearch` drives it.
        """
        rings = field.rings
        if index < len(rings):
            self.stats.c_rings_reused.inc()
            return rings[index]
        while not field.complete and len(rings) <= index:
            self._expand_one(field)
        if index < len(rings):
            return rings[index]
        return None

    def unreachable(self, source_id: int, target_id: int) -> bool:
        """Probe-only route fast-fail: provably no traversable path?

        Consults a cached congestion field for either endpoint only
        when it is *current* (its mark equals the flip log's position,
        i.e. link traversability has not changed since it was served —
        true whenever this attempt's reservations saturated nothing)
        and never computes, repairs, extends or even parity-scans one:
        a cold or possibly-stale cache answers False (unknown) at the
        cost of two integer compares.  True — which needs a *complete*
        field, the kind an exhausted layer search leaves behind on a
        congested platform — is sound for the routers: every directed
        route hop needs a free virtual channel, hence is traversable,
        hence a route implies field-reachability, and unreachability
        implies the path search would return empty-handed.
        """
        state = self.state
        mark_now = state._flip_base + len(state._link_flips)
        fields = self._fields
        for origin, other in ((source_id, target_id), (target_id, source_id)):
            field = fields.get((origin, True))
            if field is None or field.mark != mark_now:
                # cold or possibly stale: deciding would cost a parity
                # scan (and maybe a repair) per channel — this is a
                # best-effort probe, so only the free case answers
                continue
            if field.row[other] < 0:
                if not field.complete:
                    continue  # deciding would mean extending: skip
                self.stats.c_route_fastfails.inc()
                return True
            return False  # reachable by traversable links: must search
        return False

    def reset(self) -> None:
        """Drop every cached field (fault-recovery boundary)."""
        self._fields.clear()
        self._dirty_memo.clear()
        self._pressure = 0
        self._dormant = False
        self.stats.c_resets.inc()

    # -- validity -----------------------------------------------------------

    def _net_dirty_links(self, field: DistanceField):
        """Link ids with net-changed traversability since ``field.mark``.

        Returns a set (empty = certainly clean) or None when the mark
        predates the log base, i.e. validity cannot be certified.
        Parity over the log suffix is exact because undo appends
        reversing flips: a saturate-then-rollback pair cancels out.
        """
        state = self.state
        base = state._flip_base
        mark = field.mark
        if mark < base:
            return None
        flips = state._link_flips
        end = base + len(flips)
        if mark >= end:
            return ()
        memo = self._dirty_memo
        entry = memo.get(mark)
        if entry is None:
            if len(memo) > 256:
                memo.clear()  # marks are monotone; old entries are dead
            entry = memo[mark] = [mark, set()]
        seen, odd = entry
        if seen < end:
            for link_id in flips[seen - base:]:
                if link_id in odd:
                    odd.discard(link_id)
                else:
                    odd.add(link_id)
            entry[0] = end
        return odd

    def _dirty_frontier(self, field: DistanceField, dirty) -> int | None:
        """First ring the dirty links can influence, or None if none.

        Filters the net-dirty links down to the ones that can actually
        change the cached prefix:

        * **No explored endpoint** — incident to no cached ring;
          extensions read live state anyway.  Irrelevant.
        * **Flipped closed** (traversable at field time, walled now) —
          the prefix inspected this link, but only its *discovery*
          consumed it: if it is not the explored child's tree edge
          (``parent[child] is not the other endpoint``), every
          inspection found the far side already visited and skipped
          it, so membership and order are untouched.  Equal endpoint
          distances mean the same (never a tree edge).  A child beyond
          the explored prefix means the link was only reachable from
          the last cached ring, whose expansion has not happened yet.
          Irrelevant in all three cases; a severed tree edge
          invalidates from the parent's ring on.
        * **Flipped open** (walled at field time, traversable now) —
          equal explored endpoint distances cannot change anything
          (each side is visited before either side's expansion
          inspects the edge); any other shape can shorten distances or
          discover new nodes, and invalidates from the nearest
          explored endpoint's ring on.
        """
        if not dirty:
            return None
        row = field.row
        parent = field.parent
        state = self.state
        saturated = state._slot_saturated
        failed_links = state._failed_links
        ends = self._link_ends
        if ends is None:
            ends = self._build_link_ends()
        r_stop: int | None = None
        for link_id in dirty:
            end_a, end_b = ends[link_id]
            distance_a = row[end_a]
            distance_b = row[end_b]
            if distance_a < 0 and distance_b < 0:
                continue  # incident to no explored ring
            slot = link_id << 1
            if not (
                (saturated[slot] and saturated[slot | 1])
                or link_id in failed_links
            ):
                # flipped open since the field's mark
                if distance_a == distance_b:
                    continue  # both explored, same ring: never used
                if distance_a < 0:
                    nearest = distance_b
                elif distance_b < 0:
                    nearest = distance_a
                else:
                    nearest = (
                        distance_a if distance_a < distance_b else distance_b
                    )
            else:
                # flipped closed: only a severed tree edge matters
                if distance_a < 0 or distance_b < 0:
                    continue  # child beyond the cached prefix
                if distance_a == distance_b:
                    continue  # equal rings: never a tree edge
                if distance_a < distance_b:
                    if parent[end_b] != end_a:
                        continue  # non-tree: inspections skipped it
                    nearest = distance_a
                else:
                    if parent[end_a] != end_b:
                        continue
                    nearest = distance_b
            if r_stop is None or nearest < r_stop:
                r_stop = nearest
        return r_stop

    def _build_link_ends(self) -> list[tuple[int, int]]:
        node_ids = self.platform._node_ids
        self._link_ends = [
            (node_ids[link.a.name], node_ids[link.b.name])
            for link in self.platform._links_by_id
        ]
        return self._link_ends

    def _trim_log(self) -> None:
        """Bound the flip log: drop the oldest half, retire stale fields."""
        state = self.state
        cut = state._flip_base + len(state._link_flips) - _FLIP_LOG_LIMIT // 2
        self._fields = {
            key: field
            for key, field in self._fields.items()
            if field.mark >= cut or not key[1]
        }
        self._dirty_memo.clear()
        state.trim_link_flips(cut)

    # -- growth and truncation ---------------------------------------------

    def _truncate(self, field: DistanceField, r_stop: int) -> None:
        """Discard rings past ``r_stop`` (distance cells reset to -1).

        The distance row doubles as the visited mask during expansion,
        so after the reset ``row[n] >= 0`` holds exactly for the nodes
        of the kept prefix — precisely the live search's visited set
        at that point of its traversal.  Rebuilding is deferred to
        :meth:`ring`.
        """
        rings = field.rings
        if r_stop + 1 < len(rings):
            row = field.row
            for ring_nodes in rings[r_stop + 1:]:
                self.stats.c_rings_discarded.inc()
                for node_id in ring_nodes:
                    row[node_id] = -1
            del rings[r_stop + 1:]
            del field.element_rings[r_stop + 1:]
        field.complete = False

    def _expand_one(self, field: DistanceField) -> None:
        """Grow the field by one ring of live breadth-first expansion.

        The traversal — frontier nodes in ring order, neighbours in
        the platform's interned adjacency order, the congestion wall
        test inlined — replicates
        :meth:`repro.core.search.RingSearch.advance` cell for cell, so
        a served ring equals the ring the live search would discover.
        """
        platform = self.platform
        neighbor_ids = platform._neighbor_ids
        neighbor_slots = platform._neighbor_slots
        state = self.state
        failed_links = state._failed_links
        saturated = state._slot_saturated
        respect_congestion = field.respect_congestion
        is_element = platform._is_element_mask
        nodes = platform._nodes_by_id
        row = field.row
        parent = field.parent
        rings = field.rings
        ring = len(rings)
        next_frontier: list[int] = []
        ring_elements: list = []
        for node_id in rings[-1]:
            ids = neighbor_ids[node_id]
            slots = neighbor_slots[node_id]
            for neighbor_id, slot in zip(ids, slots):
                if row[neighbor_id] >= 0:
                    continue
                if respect_congestion:
                    if failed_links and (slot >> 1) in failed_links:
                        continue
                    if saturated[slot] and saturated[slot ^ 1]:
                        continue
                row[neighbor_id] = ring
                parent[neighbor_id] = node_id
                next_frontier.append(neighbor_id)
                if is_element[neighbor_id]:
                    ring_elements.append((neighbor_id, nodes[neighbor_id]))
        if next_frontier:
            rings.append(next_frontier)
            field.element_rings.append(ring_elements)
            self.stats.c_rings_recomputed.inc()
        else:
            field.complete = True
