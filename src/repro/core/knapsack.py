"""Knapsack solvers: the inner subroutine of the GAP approximation.

The GAP algorithm of Cohen, Katzir & Raz [15] delegates all actual
optimization to a knapsack oracle: its approximation guarantee is
(1 + alpha) where alpha is the knapsack's ratio, and its running time
is O(E * k(T) + E * T) where k(T) is the knapsack's cost.  The paper
states "our knapsack implementation has a time complexity O(T^2)"
(Section III-C); :func:`solve_greedy` reproduces that: a density-greedy
pass followed by a quadratic pairwise-improvement pass.

Capacities and requirements are multi-dimensional
(:class:`~repro.arch.resources.ResourceVector`), since elements offer
several resource kinds at once.  Exact solvers (:func:`solve_dp`,
:func:`solve_exhaustive`) are provided as test oracles and for the
ablation benchmark A2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.resources import ResourceVector, vector_sum


@dataclass(frozen=True)
class KnapsackItem:
    """One candidate (task) for a bin (element)."""

    key: str
    profit: float
    requirement: ResourceVector

    def __post_init__(self) -> None:
        if self.profit < 0:
            raise ValueError(
                f"knapsack items must have non-negative profit ({self.key})"
            )


@dataclass(frozen=True)
class KnapsackSolution:
    chosen: tuple[str, ...]
    profit: float

    def __contains__(self, key: str) -> bool:
        return key in self.chosen


def _fits(items: list[KnapsackItem], capacity: ResourceVector) -> bool:
    return vector_sum(i.requirement for i in items).fits_in(capacity)


def _density(item: KnapsackItem, capacity: ResourceVector) -> float:
    """Profit per unit of the bottleneck resource fraction consumed."""
    load = item.requirement.bottleneck(capacity)
    if load == 0:
        return float("inf")
    return item.profit / load


def solve_greedy(
    items: list[KnapsackItem], capacity: ResourceVector
) -> KnapsackSolution:
    """Density-greedy with an O(T^2) single-swap improvement pass.

    1. Sort by profit density (profit / bottleneck utilization) and
       take items that still fit.
    2. For every excluded item, check whether evicting one chosen item
       admits it at a net profit gain; apply the best such swap until
       none improves.
    3. Return the better of the greedy solution and the single most
       profitable item — the classic guard that makes density greedy a
       1/2-approximation (one fat high-profit item can otherwise be
       blocked by several lean ones that no single swap can evict).

    Total cost stays O(T^2), matching the paper's statement about its
    knapsack implementation.
    """
    viable = [i for i in items if i.profit > 0 and i.requirement.fits_in(capacity)]
    if not viable:
        return KnapsackSolution((), 0.0)
    order = sorted(
        viable, key=lambda i: (-_density(i, capacity), -i.profit, i.key)
    )
    chosen: list[KnapsackItem] = []
    remaining = capacity
    excluded: list[KnapsackItem] = []
    for item in order:
        if item.requirement.fits_in(remaining):
            chosen.append(item)
            remaining = remaining - item.requirement
        else:
            excluded.append(item)

    improved = True
    while improved and excluded:
        improved = False
        best_swap: tuple[float, int, int] | None = None  # (gain, out_idx, in_idx)
        for in_index, candidate in enumerate(excluded):
            for out_index, resident in enumerate(chosen):
                gain = candidate.profit - resident.profit
                if gain <= 0:
                    continue
                freed = remaining + resident.requirement
                if not candidate.requirement.fits_in(freed):
                    continue
                if best_swap is None or gain > best_swap[0]:
                    best_swap = (gain, out_index, in_index)
        if best_swap is not None:
            _gain, out_index, in_index = best_swap
            resident = chosen[out_index]
            candidate = excluded[in_index]
            remaining = remaining + resident.requirement - candidate.requirement
            chosen[out_index] = candidate
            excluded[in_index] = resident
            # the evicted resident may fit again after future swaps;
            # also try to re-add any excluded item that now fits
            still_excluded = []
            for item in excluded:
                if item.requirement.fits_in(remaining) and item.profit > 0:
                    chosen.append(item)
                    remaining = remaining - item.requirement
                else:
                    still_excluded.append(item)
            excluded = still_excluded
            improved = True

    profit = sum(i.profit for i in chosen)
    best_single = max(viable, key=lambda i: (i.profit, i.key))
    if best_single.profit > profit:
        return KnapsackSolution((best_single.key,), best_single.profit)
    return KnapsackSolution(tuple(sorted(i.key for i in chosen)), profit)


def solve_dp(
    items: list[KnapsackItem],
    capacity: ResourceVector,
    scale: int = 1,
) -> KnapsackSolution:
    """Exact 0/1 knapsack by dynamic programming over one dimension.

    Only valid when capacity and all requirements use a *single*
    resource kind with integral quantities (after multiplying by
    ``scale``).  Raises ``ValueError`` otherwise.  Used as a test
    oracle and in the knapsack ablation.
    """
    kinds = set(capacity.kinds())
    for item in items:
        kinds |= set(item.requirement.kinds())
    if len(kinds) > 1:
        raise ValueError(f"solve_dp is one-dimensional; got kinds {sorted(kinds)}")
    kind = next(iter(kinds)) if kinds else None
    if kind is None:
        # all requirements empty: take every positive-profit item
        chosen = tuple(sorted(i.key for i in items if i.profit > 0))
        return KnapsackSolution(chosen, sum(i.profit for i in items if i.profit > 0))

    budget = int(capacity[kind] * scale)
    weights = []
    for item in items:
        weight = item.requirement[kind] * scale
        if weight != int(weight):
            raise ValueError(
                f"item {item.key} weight {weight} not integral at scale {scale}"
            )
        weights.append(int(weight))

    viable = [
        (item, weight)
        for item, weight in zip(items, weights)
        if item.profit > 0 and weight <= budget
    ]
    # table[w] = (profit, chosen frozenset)
    best = [0.0] * (budget + 1)
    pick: list[set[str]] = [set() for _ in range(budget + 1)]
    for item, weight in viable:
        for w in range(budget, weight - 1, -1):
            candidate = best[w - weight] + item.profit
            if candidate > best[w]:
                best[w] = candidate
                pick[w] = pick[w - weight] | {item.key}
    w_best = max(range(budget + 1), key=lambda w: best[w])
    return KnapsackSolution(tuple(sorted(pick[w_best])), best[w_best])


def solve_exhaustive(
    items: list[KnapsackItem], capacity: ResourceVector
) -> KnapsackSolution:
    """Exact multi-dimensional solver by subset enumeration (<= 20 items)."""
    if len(items) > 20:
        raise ValueError("exhaustive solver limited to 20 items")
    best_profit = 0.0
    best_chosen: tuple[str, ...] = ()
    n = len(items)
    for mask in range(1 << n):
        subset = [items[i] for i in range(n) if mask >> i & 1]
        profit = sum(i.profit for i in subset)
        if profit > best_profit and _fits(subset, capacity):
            best_profit = profit
            best_chosen = tuple(sorted(i.key for i in subset))
    return KnapsackSolution(best_chosen, best_profit)
