"""SolveGAP: the Cohen–Katzir–Raz GAP approximation (Section III-C).

"Adopting the approach of [15], we iterate over the elements Ei that
were discovered in MapApplication.  For every e in Ei, we calculate
for each t in Ti the cost of mapping task t to element e.  We put
these values in a vector c2 ... Another vector c1 contains the cost of
the best known mappings in Mi, initially set to very large values.
We pass both vectors to a knapsack routine that selects for that
single element a subset of tasks with a minimal total cost.  When an
element e picks a task t, the cost of that combination is stored as
c1(t).  Any subsequent evaluations for e' consider the cost reduction
over that combination.  Thus, we only consider remapping a task t, if
the cost reduction c1(t) - c2(t) is positive."

The solver is *stateful across invocations* within one mapping layer:
when MapApplication grows the candidate element set, only the new
elements are processed, "allowing us to reuse the mappings and their
associated cost, as determined in the previous invocation".
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.arch.elements import ProcessingElement
from repro.arch.resources import ResourceVector
from repro.arch.state import AllocationState
from repro.core.knapsack import KnapsackItem, KnapsackSolution, solve_greedy

#: stand-in for "very large values" initialising c1.  Large enough to
#: dominate any real mapping cost, small enough that profit arithmetic
#: stays in float range.
UNMAPPED_COST = 1.0e12

#: signature of the per-pair cost evaluation (task, element) -> cost
PairCost = Callable[[str, ProcessingElement], float]
#: signature of the knapsack oracle
KnapsackSolver = Callable[[list[KnapsackItem], ResourceVector], KnapsackSolution]


@dataclass
class GapAssignment:
    """The evolving solution of one layer's assignment problem."""

    element_of: dict[str, str]
    cost_of: dict[str, float]

    def mapped_tasks(self) -> tuple[str, ...]:
        return tuple(sorted(self.element_of))


class GapSolver:
    """Iterative-knapsack GAP over a growing element set.

    Parameters
    ----------
    tasks:
        The layer's task names (the paper's ``Ti``).
    requirements:
        task name -> bound resource requirement (from the binding
        phase's implementation choice).
    compatible:
        ``compatible(task, element) -> bool`` — static suitability of
        the bound implementation for the element (type/pin match).
    pair_cost:
        ``pair_cost(task, element) -> float`` — the mapping cost
        function, evaluated lazily per new element.
    state:
        Global allocation state; an element's knapsack capacity is its
        *free* capacity minus this layer's tentative assignments.
    knapsack:
        The knapsack oracle (density-greedy + O(T^2) improvement by
        default; swappable for the A2 ablation).
    """

    def __init__(
        self,
        tasks: Iterable[str],
        requirements: dict[str, ResourceVector],
        compatible: Callable[[str, ProcessingElement], bool],
        pair_cost: PairCost,
        state: AllocationState,
        knapsack: KnapsackSolver = solve_greedy,
    ) -> None:
        self.tasks = tuple(tasks)
        missing = [t for t in self.tasks if t not in requirements]
        if missing:
            raise ValueError(f"no requirement for tasks {missing}")
        self.requirements = requirements
        #: per-task requirement components, hoisted once — the
        #: capacity check runs per (task, element) pair per layer
        self._requirement_items = {
            task: tuple(requirements[task]._data.items())
            for task in self.tasks
        }
        #: componentwise minimum over the layer's requirements: a lower
        #: bound on what *any* task needs, so an element that cannot
        #: even host the minimum skips the whole task loop (on a busy
        #: platform that is most elements)
        minimums: dict = {}
        first = True
        for task in self.tasks:
            data = requirements[task]._data
            if first:
                minimums.update(data)
                first = False
            else:
                for kind in list(minimums):
                    quantity = data.get(kind)
                    if quantity is None:
                        del minimums[kind]
                    elif quantity < minimums[kind]:
                        minimums[kind] = quantity
        self._min_requirement_items = tuple(minimums.items())
        #: the minimums paired with the state's per-kind free arrays
        #: (mutated in place by occupy/vacate, so the references stay
        #: current); a kind no element offers has no array — no element
        #: can ever host the layer then
        self._min_checks = tuple(
            (state._free_arrays.get(kind), quantity)
            for kind, quantity in minimums.items()
        )
        self.compatible = compatible
        self.pair_cost = pair_cost
        self.state = state
        self.knapsack = knapsack
        # c1: best known mapping cost per task ("initially set to very
        # large values"); element_of tracks where that best lives.
        self.c1: dict[str, float] = {t: UNMAPPED_COST for t in self.tasks}
        self.element_of: dict[str, str] = {}
        # tentative load per element within this layer
        self._load: dict[str, ResourceVector] = {}
        self._elements_seen: set[str] = set()
        #: statistics for the experiment reports
        self.knapsack_calls = 0
        self.evaluations = 0

    # -- queries -------------------------------------------------------------

    @property
    def unmapped(self) -> tuple[str, ...]:
        return tuple(t for t in self.tasks if t not in self.element_of)

    @property
    def complete(self) -> bool:
        return not self.unmapped

    def assignment(self) -> GapAssignment:
        return GapAssignment(dict(self.element_of), {
            t: self.c1[t] for t in self.element_of
        })

    def free_capacity(self, element: ProcessingElement) -> ResourceVector:
        """Element capacity available to this layer right now."""
        state = self.state
        platform = state.platform
        # elements come from the platform's own interned tables, so the
        # identity-keyed position lookup avoids hashing the name; the
        # name path remains for foreign element objects (tests)
        position = platform._element_position.get(id(element))
        if position is None:
            free = state.free(element)
        else:
            element_id = platform._element_ids[position]
            if element_id in state._failed_elements:
                free = ResourceVector()
            else:
                free = state._free[element_id]
        load = self._load.get(element.name)
        if load is not None:
            free = free - load
        return free

    # -- solving ---------------------------------------------------------------

    def solve(self, new_elements: Iterable[ProcessingElement]) -> GapAssignment:
        """Process newly discovered elements, one knapsack each.

        Elements already processed in earlier invocations are skipped,
        as are elements that cannot host even the layer's componentwise
        minimum requirement (a pure lower-bound capacity check — on a
        busy platform that is most candidates, and skipping them leaves
        every observable of the solver untouched).
        """
        state = self.state
        platform = state.platform
        element_position = platform._element_position
        element_ids = platform._element_ids
        failed = state._failed_elements
        free = state._free
        load = self._load
        seen = self._elements_seen
        min_checks = self._min_checks
        for element in new_elements:
            name = element.name
            if name in seen:
                continue
            seen.add(name)
            # lower-bound prefilter over the state's per-kind free
            # arrays (unloaded elements need no capacity vector)
            position = element_position.get(id(element))
            capacity = None
            if position is not None and name not in load:
                element_id = element_ids[position]
                if element_id in failed:
                    if self._min_requirement_items:
                        continue  # zero capacity hosts no minimum
                    capacity = ResourceVector()
                else:
                    fits = True
                    for array, quantity in min_checks:
                        if array is None or quantity > array[element_id]:
                            fits = False
                            break
                    if not fits:
                        continue
                    capacity = free[element_id]
            else:
                capacity = self.free_capacity(element)
                capacity_data = capacity._data
                fits = True
                for kind, quantity in self._min_requirement_items:
                    have = capacity_data.get(kind)
                    if have is None or quantity > have:
                        fits = False
                        break
                if not fits:
                    continue
            self._process_element(element, capacity)
        return self.assignment()

    def _process_element(
        self, element: ProcessingElement, capacity: ResourceVector
    ) -> None:
        capacity_data = capacity._data
        items: list[KnapsackItem] = []
        costs: dict[str, float] = {}
        element_name = element.name
        element_of = self.element_of
        compatible = self.compatible
        requirements = self.requirements
        requirement_items = self._requirement_items
        pair_cost = self.pair_cost
        c1 = self.c1
        for task in self.tasks:
            if element_of.get(task) == element_name:
                continue  # already living here
            if not compatible(task, element):
                continue
            fits = True
            for kind, quantity in requirement_items[task]:
                have = capacity_data.get(kind)
                if have is None or quantity > have:
                    fits = False
                    break
            if not fits:
                # Note: a task evicted from here by a later swap is not
                # reconsidered — matches the single-pass structure of [15].
                continue
            cost = pair_cost(task, element)
            self.evaluations += 1
            reduction = c1[task] - cost
            if reduction <= 0:
                continue  # only remap on a positive cost reduction
            costs[task] = cost
            items.append(KnapsackItem(task, reduction, requirements[task]))
        if not items:
            return
        solution = self.knapsack(items, capacity)
        self.knapsack_calls += 1
        for task in solution.chosen:
            self._move(task, element, costs[task])

    def _move(self, task: str, element: ProcessingElement, cost: float) -> None:
        previous = self.element_of.get(task)
        requirement = self.requirements[task]
        if previous is not None:
            self._load[previous] = self._load[previous] - requirement
        self.element_of[task] = element.name
        self.c1[task] = cost
        self._load[element.name] = (
            self._load.get(element.name, ResourceVector()) + requirement
        )
