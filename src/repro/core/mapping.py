"""MapApplication: the incremental mapping algorithm (paper Fig. 5).

The mapping phase assigns each task (with its implementation chosen by
the binding phase) to a concrete processing element.  The paper's
heuristic uses divide-and-conquer over the task graph:

1. Anchor: ``M0`` holds the tasks with exactly one available element
   (fixed I/O interfaces etc.).  If there are none, the task with the
   lowest degree δ(T) is anchored on the element of minimal mapping
   cost — an element "that is likely to become isolated later on, when
   it is not used now".
2. Layering: tasks are grouped into sets ``Ti`` of equal (undirected)
   graph distance ``i`` to the anchors.
3. Per layer, a ring-wise breadth-first platform search gathers
   candidate elements near the elements of the previous layer, one
   extra ring beyond sufficiency; the layer is then solved as a GAP.
   If tasks remain unmapped, the candidate set is grown ring by ring,
   reusing the GAP's incremental state, until either every task is
   mapped or the search exhausts (mapping failure).

The algorithm mutates the :class:`AllocationState` as layers commit;
callers (the manager) wrap the whole allocation attempt in a
``state.transaction()`` so failures roll back atomically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.implementations import Implementation
from repro.apps.taskgraph import Application
from repro.arch.elements import ProcessingElement
from repro.arch.state import AllocationError, AllocationState
from repro.core.cost import MappingCost
from repro.core.gap import GapSolver, KnapsackSolver
from repro.core.knapsack import solve_greedy
from repro.core.search import RingSearch, SparseDistanceMatrix
from repro.reasons import ReasonCode


class MappingError(RuntimeError):
    """The mapping phase could not place every task.

    ``code`` classifies the failure machine-readably (see
    :class:`~repro.reasons.ReasonCode`); the manager copies it onto
    the failure object / decision it produces.
    """

    def __init__(
        self, message: str, code: ReasonCode = ReasonCode.MAPPING_INFEASIBLE
    ):
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class MappingOptions:
    """Tunables of the mapping phase.

    ``extra_rings`` is the paper's "single additional search step"
    performed after enough elements are found (Section III-B);
    ``respect_congestion`` makes the platform search treat saturated
    links as walls; ``max_rings`` bounds the per-layer search radius
    (None = the platform's diameter, i.e. unbounded).
    """

    extra_rings: int = 1
    respect_congestion: bool = True
    max_rings: int | None = None
    knapsack: KnapsackSolver = solve_greedy


@dataclass(frozen=True)
class LayerTrace:
    """What happened while mapping one task layer (for Fig. 2 style
    walk-throughs and the experiment statistics)."""

    index: int
    tasks: tuple[str, ...]
    origins: tuple[str, ...]
    rings_searched: int
    candidates_found: int
    gap_invocations: int
    assignment: dict[str, str]


@dataclass
class MappingResult:
    """The outcome of a successful MapApplication run."""

    placement: dict[str, str]              #: task name -> element name
    anchors: dict[str, str]                #: the M0 part of the placement
    layers: list[LayerTrace] = field(default_factory=list)
    distances: SparseDistanceMatrix = field(default_factory=SparseDistanceMatrix)

    @property
    def rings_searched(self) -> int:
        return sum(layer.rings_searched for layer in self.layers)


def available_elements(
    task: str,
    implementation: Implementation,
    state: AllocationState,
) -> list[ProcessingElement]:
    """All elements that can host the bound implementation *now*.

    This is the paper's ``{e | av(e, t)}``: static compatibility of the
    implementation and sufficient free resources in the current state.
    Served from the state's epoch-stamped availability cache — the
    admission gate and the anchor detection scanned the same
    implementations at the same epoch.
    """
    return list(state.availability.available(implementation))




def _single_available_element(
    implementation: Implementation,
    state: AllocationState,
) -> ProcessingElement | None:
    """The element of a single-option task, or None when 0 or >= 2 fit.

    Anchor detection only needs to know whether *exactly one* element
    is available, so it asks the state's epoch-stamped
    :class:`~repro.arch.state.AvailabilityCache` — the admission gate
    already scanned for these implementations at the same epoch (the
    binding phase makes no state mutations), so the common case is a
    dictionary hit instead of a platform scan.
    """
    count, first = state.availability.summary(implementation)
    return first if count == 1 else None


def map_application(
    app: Application,
    binding: dict[str, Implementation],
    state: AllocationState,
    cost: MappingCost | None = None,
    options: MappingOptions = MappingOptions(),
    app_id: str | None = None,
    engine=None,
) -> MappingResult:
    """Run MapApplication (paper Fig. 5); raises :class:`MappingError`.

    ``binding`` maps every task name to its chosen implementation.
    On success the state holds the new placements; on failure the
    state may hold partial placements of this app — callers should
    wrap the attempt in ``state.transaction()`` (the manager does).

    ``engine`` optionally supplies a
    :class:`~repro.core.distfield.DistanceFieldEngine` bound to
    ``state``: the per-layer ring searches then replay persistent
    per-origin distance fields instead of running a fresh BFS each —
    placements are bit-identical either way (the manager passes its
    engine when constructed with ``incremental=True``).
    """
    cost = cost or MappingCost()
    app_id = app_id or app.name
    missing = [t for t in app.tasks if t not in binding]
    if missing:
        raise MappingError(f"no binding for tasks {missing}")

    requirements = {t: binding[t].requirement for t in app.tasks}
    bind_requirements = getattr(cost, "bind_requirements", None)
    if bind_requirements is not None:
        bind_requirements(requirements)

    # static compatibility as platform-position sets: one membership
    # probe per (task, element) query instead of a runs_on call — the
    # GAP solver asks this for every task on every candidate element
    element_position = state.platform._element_position
    platform = state.platform
    positions_of = {
        task: binding[task].compatible_positions(platform)
        for task in app.tasks
    }

    def compatible(task: str, element: ProcessingElement) -> bool:
        position = element_position.get(id(element))
        if position is None:  # foreign element object: fall back
            return binding[task].runs_on(element)
        return position in positions_of[task]

    result = MappingResult(placement={}, anchors={})

    # ---- M0: single-option anchors (paper Fig. 5, line 2) ----------------
    anchor_pairs: list[tuple[str, ProcessingElement]] = []
    for task in sorted(app.tasks):
        anchor = _single_available_element(binding[task], state)
        if anchor is not None:
            anchor_pairs.append((task, anchor))

    # ---- empty M0: anchor the minimum-degree task (lines 3-4) ------------
    if not anchor_pairs:
        t0 = min(app.min_degree_tasks())
        impl0 = binding[t0]
        # With an empty placement the stock cost function is a pure
        # function of (element, allocation state): the communication
        # term is zero (no mapped peers yet) and the fragmentation
        # bonus can never match the fresh app_id.  The chosen anchor
        # is therefore shared across attempts at the same epoch —
        # restricted to exactly MappingCost, because custom cost
        # callables may read anything at all.
        memo = key = None
        if type(cost) is MappingCost:
            memo = state.availability.epoch_memo()
            key = ("anchor", id(cost), id(impl0))
            cached = memo.get(key)
            if cached is not None and cached[0] is impl0 and cached[1] is cost:
                e0 = cached[2]
                if e0 is None:
                    raise MappingError(
                        f"no available element for starting task {t0!r}",
                        code=ReasonCode.MAPPING_NO_ANCHOR,
                    )
                anchor_pairs.append((t0, e0))
        if not anchor_pairs:
            candidates = available_elements(t0, impl0, state)
            if not candidates:
                if memo is not None:
                    memo[key] = (impl0, cost, None)
                raise MappingError(
                    f"no available element for starting task {t0!r}",
                    code=ReasonCode.MAPPING_NO_ANCHOR,
                )
            empty_distances = SparseDistanceMatrix(state.platform)
            if memo is not None:
                # the per-element anchor cost is likewise a pure
                # function of (element, state) for the stock cost, so
                # the evaluations are shared across *different* specs
                # probing at the same epoch (consecutive rejected
                # arrivals between two capacity events)
                table_entry = memo.get(("anchor_costs", id(cost)))
                if table_entry is None or table_entry[0] is not cost:
                    table_entry = (cost, {})
                    memo[("anchor_costs", id(cost))] = table_entry
                table = table_entry[1]

                def anchor_key(e):
                    value = table.get(id(e))
                    if value is None:
                        # empty placement: no communication peers, no
                        # fragmentation peers — the stock cost takes
                        # the pre-resolved-id path with empty contexts
                        value = cost(
                            app, app_id, t0, e, state, {}, empty_distances,
                            _comm_peers=(), _frag_peers=frozenset(),
                        )
                        table[id(e)] = value
                    return (value, e.name)

                e0 = min(candidates, key=anchor_key)
            else:
                e0 = min(
                    candidates,
                    key=lambda e: (
                        cost(app, app_id, t0, e, state, {}, empty_distances),
                        e.name,
                    ),
                )
            if memo is not None:
                memo[key] = (impl0, cost, e0)
            anchor_pairs.append((t0, e0))

    # commit the anchors
    for task, element in anchor_pairs:
        try:
            state.occupy(element, app_id, task, requirements[task])
        except AllocationError as exc:
            raise MappingError(
                f"anchor task {task!r} does not fit on {element.name}: {exc}"
            ) from exc
        result.placement[task] = element.name
        result.anchors[task] = element.name

    # ---- layered traversal (lines 5-15) -----------------------------------
    layers = app.distance_layers(list(result.anchors))
    for index, layer in enumerate(layers):
        if index == 0:
            continue
        tasks = tuple(sorted(t for t in layer if t not in result.placement))
        if not tasks:
            continue
        trace = _map_layer(
            app, app_id, index, tasks, requirements, compatible,
            state, cost, options, result, engine,
        )
        result.layers.append(trace)

    unmapped = [t for t in app.tasks if t not in result.placement]
    if unmapped:
        # distance_layers covers all tasks of a connected application,
        # so this is a defensive check against future model changes.
        raise MappingError(f"tasks never reached by traversal: {unmapped}")
    return result


def _map_layer(
    app: Application,
    app_id: str,
    index: int,
    tasks: tuple[str, ...],
    requirements: dict,
    compatible,
    state: AllocationState,
    cost: MappingCost,
    options: MappingOptions,
    result: MappingResult,
    engine=None,
) -> LayerTrace:
    """Map one distance layer ``Ti`` (paper Fig. 5 inner loop)."""
    # E+/E-: elements of mapped tasks with channels into/out of this
    # layer (lines 7-8).  Platform links are full duplex, so both sets
    # seed the same search; keeping them separate here documents the
    # directed derivation.
    task_set = set(tasks)
    origins_in: set[str] = set()
    origins_out: set[str] = set()
    for channel in app.channels.values():
        if channel.source in result.placement and channel.target in task_set:
            origins_out.add(result.placement[channel.source])
        if channel.target in result.placement and channel.source in task_set:
            origins_in.add(result.placement[channel.target])
    origins = sorted(origins_in | origins_out)
    if not origins:
        # isolated layer (no mapped neighbours): fall back to the
        # elements of the previous layer / anchors
        origins = sorted(set(result.placement.values()))

    search = RingSearch(
        state, origins, options.respect_congestion,
        scratch=state.scratch, engine=engine,
    )

    if type(cost) is MappingCost:
        # the committed placement is frozen while this layer's GAP
        # runs, so each task's peer lookups intern to ids once; the
        # stock cost function accepts them pre-resolved (custom cost
        # callables keep the plain signature)
        node_ids = state.platform._node_ids
        placement_now = result.placement
        cost_context: dict[str, tuple] = {}
        # per-layer neighbour-status memo for the fragmentation bonus
        # (epoch-scoped: the layer's GAP runs at a frozen epoch, and
        # the dict lives in the availability cache's epoch memo so a
        # later layer at the same epoch keeps sharing it)
        frag_status = state.availability.epoch_memo().setdefault(
            ("frag_status", app_id), {}
        )

        def _task_context(task: str) -> tuple:
            comm_peers = []
            for channel in app.incident_channels(task):
                peer = (
                    channel.target if channel.source == task
                    else channel.source
                )
                placed = placement_now.get(peer)
                if placed is not None:
                    comm_peers.append(node_ids.get(placed, -1))
            frag_peers = set()
            for peer in app.neighbors(task):
                placed = placement_now.get(peer)
                if placed is not None:
                    peer_id = node_ids.get(placed)
                    if peer_id is not None:
                        frag_peers.add(peer_id)
            return (tuple(comm_peers), frozenset(frag_peers))

        def pair_cost(task: str, element: ProcessingElement) -> float:
            context = cost_context.get(task)
            if context is None:
                context = cost_context[task] = _task_context(task)
            return cost(
                app, app_id, task, element, state, placement_now,
                search.distances,
                _comm_peers=context[0], _frag_peers=context[1],
                _frag_status=frag_status,
            )
    else:
        def pair_cost(task: str, element: ProcessingElement) -> float:
            return cost(
                app, app_id, task, element, state, result.placement,
                search.distances,
            )

    gap = GapSolver(
        tasks, requirements, compatible, pair_cost, state,
        knapsack=options.knapsack,
    )

    element_position = state.platform._element_position
    element_ids = state.platform.element_ids
    free_by_node = state._free
    failed_elements = state._failed_elements
    #: per-task static position set + requirement components, hoisted
    #: so each candidate probe is hash-probe + a couple of compares
    task_checks = tuple(
        (compatible, task, requirements[task]._data)
        for task in tasks
    )
    # the componentwise layer-minimum lower bound and its pairing with
    # the state's per-kind free arrays are the GapSolver's — one
    # computation, one source of truth for the soundness argument
    layer_minimums = dict(gap._min_requirement_items)
    layer_minimum_checks = gap._min_checks

    def availability(element: ProcessingElement) -> bool:
        # id-indexed free lookup with the fits check inlined — this
        # probe runs per candidate element per gathered ring
        position = element_position.get(id(element))
        if position is None or element_ids[position] in failed_elements:
            # foreign element object or failed element (zero vector):
            # generic dict path keeps the free()-semantics exact
            free_data = state.free(element)._data
            for kind, quantity in layer_minimums.items():
                have = free_data.get(kind)
                if have is None or quantity > have:
                    return False
        else:
            element_id = element_ids[position]
            for array, quantity in layer_minimum_checks:
                if array is None or quantity > array[element_id]:
                    return False  # cannot host any task of the layer
            free_data = free_by_node[element_id]._data
        for is_compatible, task, requirement_data in task_checks:
            if is_compatible(task, element):
                fits = True
                for kind, quantity in requirement_data.items():
                    have = free_data.get(kind)
                    if have is None or quantity > have:
                        fits = False
                        break
                if fits:
                    return True
        return False

    candidates_found = 0
    gap_invocations = 0

    new_elements = search.gather(
        needed=len(tasks),
        availability=availability,
        extra_rings=options.extra_rings,
        max_rings=options.max_rings,
    )
    candidates_found += len(new_elements)
    gap.solve(new_elements)
    gap_invocations += 1

    while not gap.complete:
        if search.exhausted or (
            options.max_rings is not None and search.ring >= options.max_rings
        ):
            raise MappingError(
                f"layer {index}: search exhausted after {search.ring} rings "
                f"with tasks {list(gap.unmapped)} unmapped",
                code=ReasonCode.MAPPING_SEARCH_EXHAUSTED,
            )
        ring_elements = search.advance()
        if not ring_elements:
            # keep expanding through element-free rings (router rings);
            # exhaustion is handled at the top of the loop
            continue
        candidates_found += len(ring_elements)
        gap.solve(ring_elements)
        gap_invocations += 1

    # commit the layer (the GAP's tentative loads become occupancy)
    assignment = gap.assignment()
    for task in tasks:
        element_name = assignment.element_of[task]
        try:
            state.occupy(element_name, app_id, task, requirements[task])
        except AllocationError as exc:  # pragma: no cover - defensive
            raise MappingError(
                f"layer {index}: committing {task!r} to {element_name} "
                f"failed: {exc}"
            ) from exc
        result.placement[task] = element_name
    result.distances.merge(search.distances)

    return LayerTrace(
        index=index,
        tasks=tasks,
        origins=tuple(origins),
        rings_searched=search.ring,
        candidates_found=candidates_found,
        gap_invocations=gap_invocations,
        assignment=dict(assignment.element_of),
    )
