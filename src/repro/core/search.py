"""Platform search: ring-wise BFS for candidate elements (Section III-B).

"In every iteration, we start searching in the topological
neighborhood of the elements that were allocated in the previous
iteration.  From the location of the elements Ei-1, a breadth-first
search (BFS) is started.  When the partial mapping Mi-1 contains more
than one element, we start this search at multiple locations ...  In
this search, we keep track of the distance between a newly discovered
element and the origins of the BFS, to estimate the cost of the
communication routes."

:class:`RingSearch` runs one BFS *per origin element* in lockstep
rings, so the sparse distance matrix records, for every discovered
node, its distance to each individual origin — exactly what the
mapping cost function needs to estimate route lengths to already-mapped
communication peers.  Links without a free virtual channel are not
traversed (a congestion-aware search keeps the distance estimates
honest and avoids proposing unreachable elements).

Both classes operate on the interned integer ids a frozen platform
provides (see :mod:`repro.arch.topology`): BFS frontiers are id lists,
visited sets are per-origin byte masks, and distances live in
origin-indexed rows — one array cell per node — instead of a dict
keyed by string pairs.  Names appear only at the public boundaries
(``origins``, ``advance()``'s returned elements, and name-based
``record``/``get`` lookups).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.arch.elements import ProcessingElement
from repro.arch.state import AllocationState
from repro.arch.topology import Platform


class SparseDistanceMatrix:
    """Distances discovered so far, keyed by (origin element, node).

    "A sparse distance matrix is built while searching the platform
    for elements.  If a required distance lookup fails, a relative
    high penalty is given" (Section III-D) — the penalty policy lives
    in the cost function; this class just answers ``get`` with None
    for unknown pairs.  Lookups are symmetric.

    When built over a frozen platform the matrix stores origin-indexed
    rows (one distance cell per node id); without a platform it falls
    back to a name-keyed dict, which keeps ad-hoc construction in
    tests and callers working.
    """

    __slots__ = ("_platform", "_node_ids", "_rows", "_fallback", "_pool")

    def __init__(self, platform: Platform | None = None, pool=None) -> None:
        self._platform = platform
        self._node_ids = platform._node_ids if platform is not None else None
        #: origin node id -> per-node distance row (-1 = unknown)
        self._rows: dict[int, list[int]] = {}
        #: legacy symmetric name-keyed store (no-platform mode)
        self._fallback: dict[tuple[str, str], int] = {}
        #: optional scratch pool lending reusable row storage; pooled
        #: rows are transient — :meth:`merge` copies them out, so only
        #: provably short-lived matrices (the mapping phase's per-layer
        #: searches) opt in
        self._pool = pool

    def row(self, origin_id: int) -> list[int]:
        """The (mutable) distance row of ``origin_id`` (hot path)."""
        rows = self._rows
        row = rows.get(origin_id)
        if row is None:
            if self._pool is not None:
                row = rows[origin_id] = self._pool.row(
                    self._platform.node_count, -1
                )
            else:
                row = rows[origin_id] = [-1] * self._platform.node_count
        return row

    def record(self, origin: str, node: str, distance: int) -> None:
        node_ids = self._node_ids
        if node_ids is not None:
            origin_id = node_ids.get(origin)
            node_id = node_ids.get(node)
            if origin_id is not None and node_id is not None:
                row = self.row(origin_id)
                if row[node_id] < 0 or distance < row[node_id]:
                    row[node_id] = distance
                return
        key = (origin, node) if origin <= node else (node, origin)
        previous = self._fallback.get(key)
        if previous is None or distance < previous:
            self._fallback[key] = distance

    def get(self, a: str, b: str) -> int | None:
        if a == b:
            return 0
        best: int | None = None
        node_ids = self._node_ids
        if node_ids is not None and self._rows:
            id_a = node_ids.get(a)
            id_b = node_ids.get(b)
            if id_a is not None and id_b is not None:
                best = self.get_ids(id_a, id_b)
        if self._fallback:
            key = (a, b) if a <= b else (b, a)
            distance = self._fallback.get(key)
            if distance is not None and (best is None or distance < best):
                best = distance
        return best

    def get_ids(self, id_a: int, id_b: int) -> int | None:
        """Symmetric lookup over node ids (platform mode only)."""
        if id_a == id_b:
            return 0
        best: int | None = None
        rows = self._rows
        row = rows.get(id_a)
        if row is not None and row[id_b] >= 0:
            best = row[id_b]
        row = rows.get(id_b)
        if row is not None and 0 <= row[id_a] and (best is None or row[id_a] < best):
            best = row[id_a]
        return best

    def __len__(self) -> int:
        count = len(self._fallback)
        for row in self._rows.values():
            count += sum(1 for distance in row if distance >= 0)
        return count

    def merge(self, other: "SparseDistanceMatrix") -> None:
        """Keep the minimum of both matrices (used across iterations)."""
        if (
            self._platform is None
            and other._platform is not None
            and not self._fallback
        ):
            # adopt the other's interning (fresh result matrices start
            # platform-less; the first merge binds them)
            self._platform = other._platform
            self._node_ids = other._node_ids
        if other._rows:
            if other._platform is self._platform:
                for origin_id, row in other._rows.items():
                    mine = self._rows.get(origin_id)
                    if mine is None:
                        self._rows[origin_id] = list(row)
                        continue
                    for node_id, distance in enumerate(row):
                        if 0 <= distance and (
                            mine[node_id] < 0 or distance < mine[node_id]
                        ):
                            mine[node_id] = distance
            else:  # cross-platform merge: degrade to names
                nodes = other._platform._nodes_by_id
                for origin_id, row in other._rows.items():
                    origin = nodes[origin_id].name
                    for node_id, distance in enumerate(row):
                        if distance >= 0:
                            self.record(origin, nodes[node_id].name, distance)
        for (a, b), distance in other._fallback.items():
            self.record(a, b, distance)


class RingSearch:
    """Lockstep per-origin BFS producing rings of candidate elements.

    ``advance()`` expands every origin's frontier by one hop and
    returns the processing elements discovered for the first time by
    *any* origin in that ring (the paper's ``Ei,j``).  An empty return
    with :attr:`exhausted` set means the reachable platform has been
    fully explored — the mapping iteration must then fail.
    """

    def __init__(
        self,
        state: AllocationState,
        origins: Iterable[ProcessingElement | str],
        respect_congestion: bool = True,
        scratch=None,
    ) -> None:
        """``scratch`` (a :class:`~repro.arch.scratch.ScratchPool`)
        opts into reusable visited masks and distance rows.  Only pass
        it when this search provably cannot interleave with another
        scratch-backed search on the same state — the mapping phase
        (one search per layer, strictly sequential) qualifies; ad-hoc
        or concurrent searches must use the default fresh arrays."""
        self.state = state
        self.platform = state.platform
        self.respect_congestion = respect_congestion
        node_ids = self.platform._node_ids
        origin_ids: list[int] = []
        origin_names: list[str] = []
        for origin in origins:
            name = origin if isinstance(origin, str) else origin.name
            if name not in origin_names:
                origin_names.append(name)
                origin_ids.append(node_ids[name])
        if not origin_names:
            raise ValueError("RingSearch needs at least one origin element")
        self.origins = tuple(origin_names)
        self._origin_ids = tuple(origin_ids)
        # per-origin BFS state: byte visited masks and id frontiers,
        # pooled (zeroed on acquire) when a scratch pool is provided
        node_count = self.platform.node_count
        if scratch is not None:
            scratch.begin_rows()
            self.distances = SparseDistanceMatrix(self.platform, pool=scratch)
            self._visited = scratch.zeroed_bytes_family(
                "ring.visited", len(origin_ids), node_count
            )
            self._seen_elements = scratch.zeroed_bytes("ring.seen", node_count)
        else:
            self.distances = SparseDistanceMatrix(self.platform)
            self._visited = [
                bytearray(node_count) for _ in origin_ids
            ]
            self._seen_elements = bytearray(node_count)
        self._frontier: list[list[int]] = []
        self._exhausted = False  # maintained by advance()
        self._ring = 0
        for index, origin_id in enumerate(origin_ids):
            self._visited[index][origin_id] = 1
            self._frontier.append([origin_id])
            self._seen_elements[origin_id] = 1
            self.distances.row(origin_id)[origin_id] = 0

    @property
    def ring(self) -> int:
        """Number of rings expanded so far (the paper's ``j``)."""
        return self._ring

    @property
    def exhausted(self) -> bool:
        """True when no origin has frontier nodes left to expand."""
        return self._exhausted

    def _traversable(self, slot: int) -> bool:
        """Can the search step across the link owning directed ``slot``?

        With ``respect_congestion`` a link must offer a free virtual
        channel in at least one direction; fully saturated or failed
        links act as walls, so distance estimates reflect the
        platform's *current* connectivity.
        """
        if not self.respect_congestion:
            return True
        state = self.state
        if (slot >> 1) in state._failed_links:
            return False
        vc_used, slot_vc = state._vc_used, self.platform._slot_vc
        reverse = slot ^ 1
        return (
            vc_used[slot] < slot_vc[slot]
            or vc_used[reverse] < slot_vc[reverse]
        )

    def advance(self) -> list[ProcessingElement]:
        """Expand one ring; return globally new candidate elements."""
        if self._exhausted:
            return []
        self._ring += 1
        ring = self._ring
        platform = self.platform
        neighbor_ids = platform._neighbor_ids
        neighbor_slots = platform._neighbor_slots
        nodes = platform._nodes_by_id
        is_element = platform._is_element_mask
        seen = self._seen_elements
        respect_congestion = self.respect_congestion
        # the congestion wall test (see _traversable) inlined: these
        # four ledger arrays are read per candidate hop
        state = self.state
        failed_links = state._failed_links
        vc_used = state._vc_used
        slot_vc = platform._slot_vc
        new_elements: list[ProcessingElement] = []
        any_frontier = False
        for index, origin_id in enumerate(self._origin_ids):
            frontier = self._frontier[index]
            if not frontier:
                continue
            visited = self._visited[index]
            row = self.distances.row(origin_id)
            next_frontier: list[int] = []
            for node_id in frontier:
                ids = neighbor_ids[node_id]
                slots = neighbor_slots[node_id]
                for neighbor_id, slot in zip(ids, slots):
                    if visited[neighbor_id]:
                        continue
                    if respect_congestion:
                        if failed_links and (slot >> 1) in failed_links:
                            continue
                        if vc_used[slot] >= slot_vc[slot]:
                            reverse = slot ^ 1
                            if vc_used[reverse] >= slot_vc[reverse]:
                                continue
                    visited[neighbor_id] = 1
                    next_frontier.append(neighbor_id)
                    # first visit of this (origin, node) pair — the
                    # visited mask guarantees the cell is still unset,
                    # so the minimum-keeping compare is unnecessary
                    row[neighbor_id] = ring
                    if is_element[neighbor_id] and not seen[neighbor_id]:
                        seen[neighbor_id] = 1
                        new_elements.append(nodes[neighbor_id])
            self._frontier[index] = next_frontier
            if next_frontier:
                any_frontier = True
        self._exhausted = not any_frontier
        return new_elements

    def gather(
        self,
        needed: int,
        availability,
        extra_rings: int = 1,
        max_rings: int | None = None,
    ) -> list[ProcessingElement]:
        """Expand rings until ``needed`` available elements are found.

        ``availability(element) -> bool`` decides whether an element
        counts towards ``needed`` (typically: at least one task of the
        current layer fits on it).  Per Section III-B, "once we have
        discovered enough elements ... a single additional search step
        is performed" — controlled by ``extra_rings`` — so later
        objectives (fragmentation) have slack to choose from.

        Returns all *new* candidate elements found by this call, in
        discovery order.  The caller decides what to do when the
        search exhausts before ``needed`` is reached (the returned
        list is simply shorter in that case).
        """
        found: list[ProcessingElement] = []
        useful = 0
        while useful < needed and not self.exhausted:
            if max_rings is not None and self._ring >= max_rings:
                break
            ring_elements = self.advance()
            for element in ring_elements:
                found.append(element)
                if availability(element):
                    useful += 1
        for _ in range(extra_rings):
            if self.exhausted:
                break
            if max_rings is not None and self._ring >= max_rings:
                break
            found.extend(self.advance())
        return found
