"""Platform search: ring-wise BFS for candidate elements (Section III-B).

"In every iteration, we start searching in the topological
neighborhood of the elements that were allocated in the previous
iteration.  From the location of the elements Ei-1, a breadth-first
search (BFS) is started.  When the partial mapping Mi-1 contains more
than one element, we start this search at multiple locations ...  In
this search, we keep track of the distance between a newly discovered
element and the origins of the BFS, to estimate the cost of the
communication routes."

:class:`RingSearch` runs one BFS *per origin element* in lockstep
rings, so the sparse distance matrix records, for every discovered
node, its distance to each individual origin — exactly what the
mapping cost function needs to estimate route lengths to already-mapped
communication peers.  Links without a free virtual channel are not
traversed (a congestion-aware search keeps the distance estimates
honest and avoids proposing unreachable elements).

Both classes operate on the interned integer ids a frozen platform
provides (see :mod:`repro.arch.topology`): BFS frontiers are id lists,
visited sets are per-origin byte masks, and distances live in
origin-indexed rows — one array cell per node — instead of a dict
keyed by string pairs.  Names appear only at the public boundaries
(``origins``, ``advance()``'s returned elements, and name-based
``record``/``get`` lookups).

Given a :class:`~repro.core.distfield.DistanceFieldEngine`, the search
runs in *replay* mode: rings and distance rows come from persistent
per-origin fields maintained incrementally across attempts, and
``advance()`` degenerates to serving precomputed ring lists — same
elements, same order, same distances, none of the per-hop work.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.arch.elements import ProcessingElement
from repro.arch.state import AllocationState
from repro.arch.topology import Platform


class SparseDistanceMatrix:
    """Distances discovered so far, keyed by (origin element, node).

    "A sparse distance matrix is built while searching the platform
    for elements.  If a required distance lookup fails, a relative
    high penalty is given" (Section III-D) — the penalty policy lives
    in the cost function; this class just answers ``get`` with None
    for unknown pairs.  Lookups are symmetric.

    When built over a frozen platform the matrix stores origin-indexed
    rows (one distance cell per node id); without a platform it falls
    back to a name-keyed dict, which keeps ad-hoc construction in
    tests and callers working.

    A matrix may also *serve* rows owned by the incremental
    distance-field engine (:meth:`serve_field_row`): those rows hold
    the full cached field, and a **visibility cap** hides every cell
    beyond the rings the replaying search has advanced through, so
    readers observe exactly the partial view a live lockstep search
    would have filled — including its lookup misses, which the cost
    function penalises (Section III-D) and which must therefore not
    silently become hits.
    """

    __slots__ = ("_platform", "_node_ids", "_rows", "_fallback", "_pool",
                 "_cap")

    def __init__(self, platform: Platform | None = None, pool=None) -> None:
        self._platform = platform
        self._node_ids = platform._node_ids if platform is not None else None
        #: origin node id -> per-node distance row (-1 = unknown)
        self._rows: dict[int, list[int]] = {}
        #: legacy symmetric name-keyed store (no-platform mode)
        self._fallback: dict[tuple[str, str], int] = {}
        #: optional scratch pool lending reusable row storage; pooled
        #: rows are transient — :meth:`merge` copies them out, so only
        #: provably short-lived matrices (the mapping phase's per-layer
        #: searches) opt in
        self._pool = pool
        #: visibility cap over served field rows (None = plain matrix,
        #: every non-negative cell visible)
        self._cap: int | None = None

    def serve_field_row(self, origin_id: int, row: list[int]) -> None:
        """Expose an engine-owned distance row, visibility-capped.

        The replaying search raises :attr:`_cap` one ring at a time;
        a cell is visible only while ``value <= cap``.  Served rows
        are never mutated — :meth:`record` diverts to the name-keyed
        fallback store while a cap is active.
        """
        self._rows[origin_id] = row
        if self._cap is None:
            self._cap = 0

    def row(self, origin_id: int) -> list[int]:
        """The (mutable) distance row of ``origin_id`` (hot path)."""
        rows = self._rows
        row = rows.get(origin_id)
        if row is None:
            if self._pool is not None:
                row = rows[origin_id] = self._pool.row(
                    self._platform.node_count, -1
                )
            else:
                row = rows[origin_id] = [-1] * self._platform.node_count
        return row

    def record(self, origin: str, node: str, distance: int) -> None:
        node_ids = self._node_ids
        if node_ids is not None and self._cap is None:
            origin_id = node_ids.get(origin)
            node_id = node_ids.get(node)
            if origin_id is not None and node_id is not None:
                row = self.row(origin_id)
                if row[node_id] < 0 or distance < row[node_id]:
                    row[node_id] = distance
                return
        key = (origin, node) if origin <= node else (node, origin)
        previous = self._fallback.get(key)
        if previous is None or distance < previous:
            self._fallback[key] = distance

    def get(self, a: str, b: str) -> int | None:
        if a == b:
            return 0
        best: int | None = None
        node_ids = self._node_ids
        if node_ids is not None and self._rows:
            id_a = node_ids.get(a)
            id_b = node_ids.get(b)
            if id_a is not None and id_b is not None:
                best = self.get_ids(id_a, id_b)
        if self._fallback:
            key = (a, b) if a <= b else (b, a)
            distance = self._fallback.get(key)
            if distance is not None and (best is None or distance < best):
                best = distance
        return best

    def get_ids(self, id_a: int, id_b: int) -> int | None:
        """Symmetric lookup over node ids (platform mode only)."""
        if id_a == id_b:
            return 0
        cap = self._cap
        best: int | None = None
        rows = self._rows
        row = rows.get(id_a)
        if row is not None:
            known = row[id_b]
            if known >= 0 and (cap is None or known <= cap):
                best = known
        row = rows.get(id_b)
        if row is not None:
            known = row[id_a]
            if (
                0 <= known
                and (cap is None or known <= cap)
                and (best is None or known < best)
            ):
                best = known
        return best

    def __len__(self) -> int:
        count = len(self._fallback)
        cap = self._cap
        for row in self._rows.values():
            if cap is None:
                count += sum(1 for distance in row if distance >= 0)
            else:
                count += sum(1 for distance in row if 0 <= distance <= cap)
        return count

    def merge(self, other: "SparseDistanceMatrix") -> None:
        """Keep the minimum of both matrices (used across iterations)."""
        if (
            self._platform is None
            and other._platform is not None
            and not self._fallback
        ):
            # adopt the other's interning (fresh result matrices start
            # platform-less; the first merge binds them)
            self._platform = other._platform
            self._node_ids = other._node_ids
        if other._rows:
            cap = other._cap
            if other._platform is self._platform:
                for origin_id, row in other._rows.items():
                    mine = self._rows.get(origin_id)
                    if mine is None:
                        if cap is None:
                            self._rows[origin_id] = list(row)
                        else:  # copy only the visible prefix
                            self._rows[origin_id] = [
                                distance if 0 <= distance <= cap else -1
                                for distance in row
                            ]
                        continue
                    for node_id, distance in enumerate(row):
                        if (
                            0 <= distance
                            and (cap is None or distance <= cap)
                            and (mine[node_id] < 0 or distance < mine[node_id])
                        ):
                            mine[node_id] = distance
            else:  # cross-platform merge: degrade to names
                nodes = other._platform._nodes_by_id
                for origin_id, row in other._rows.items():
                    origin = nodes[origin_id].name
                    for node_id, distance in enumerate(row):
                        if 0 <= distance and (cap is None or distance <= cap):
                            self.record(origin, nodes[node_id].name, distance)
        for (a, b), distance in other._fallback.items():
            self.record(a, b, distance)


class RingSearch:
    """Lockstep per-origin BFS producing rings of candidate elements.

    ``advance()`` expands every origin's frontier by one hop and
    returns the processing elements discovered for the first time by
    *any* origin in that ring (the paper's ``Ei,j``).  An empty return
    with :attr:`exhausted` set means the reachable platform has been
    fully explored — the mapping iteration must then fail.
    """

    def __init__(
        self,
        state: AllocationState,
        origins: Iterable[ProcessingElement | str],
        respect_congestion: bool = True,
        scratch=None,
        engine=None,
    ) -> None:
        """``scratch`` (a :class:`~repro.arch.scratch.ScratchPool`)
        opts into reusable visited masks and distance rows.  Only pass
        it when this search provably cannot interleave with another
        scratch-backed search on the same state — the mapping phase
        (one search per layer, strictly sequential) qualifies; ad-hoc
        or concurrent searches must use the default fresh arrays.

        ``engine`` (a :class:`~repro.core.distfield.DistanceFieldEngine`
        bound to the same state) switches the search to *replay* mode:
        per-origin rings and distances are drawn from the engine's
        persistent fields instead of a live BFS.  Discovery order,
        distances and exhaustion behaviour are bit-identical — the
        fields store the exact solo-BFS traversal each origin of the
        lockstep search would perform (see the engine's module doc for
        the induction) — only the per-hop adjacency walks, congestion
        probes and visited masks disappear.  The served field arrays
        are valid until the engine's next fetch, which cannot happen
        while this search runs (one search at a time per state)."""
        self.state = state
        self.platform = state.platform
        self.respect_congestion = respect_congestion
        node_ids = self.platform._node_ids
        origin_ids: list[int] = []
        origin_names: list[str] = []
        for origin in origins:
            name = origin if isinstance(origin, str) else origin.name
            if name not in origin_names:
                origin_names.append(name)
                origin_ids.append(node_ids[name])
        if not origin_names:
            raise ValueError("RingSearch needs at least one origin element")
        self.origins = tuple(origin_names)
        self._origin_ids = tuple(origin_ids)
        # per-origin BFS state: byte visited masks and id frontiers,
        # pooled (zeroed on acquire) when a scratch pool is provided
        node_count = self.platform.node_count
        if scratch is not None:
            scratch.begin_rows()
            self.distances = SparseDistanceMatrix(self.platform, pool=scratch)
            self._seen_elements = scratch.zeroed_bytes("ring.seen", node_count)
        else:
            self.distances = SparseDistanceMatrix(self.platform)
            self._seen_elements = bytearray(node_count)
        self._engine = engine
        self._fields = None
        if engine is not None:
            # None = the engine judged this cycle repair-heavy and
            # bypassed (see DistanceFieldEngine.acquire): run live
            self._fields = engine.acquire(origin_ids, respect_congestion)
        if self._fields is not None:
            self._visited = None
        elif scratch is not None:
            self._visited = scratch.zeroed_bytes_family(
                "ring.visited", len(origin_ids), node_count
            )
        else:
            self._visited = [
                bytearray(node_count) for _ in origin_ids
            ]
        self._frontier: list[list[int]] = []
        self._exhausted = False  # maintained by advance()
        self._ring = 0
        if self._fields is not None:
            # replay mode: the engine's rows are served through the
            # matrix behind a visibility cap instead of being copied
            # ring by ring (they already carry the origin's 0 cell)
            distances = self.distances
            seen = self._seen_elements
            for index, origin_id in enumerate(origin_ids):
                seen[origin_id] = 1
                distances.serve_field_row(
                    origin_id, self._fields[index].row
                )
        else:
            for index, origin_id in enumerate(origin_ids):
                self._visited[index][origin_id] = 1
                self._frontier.append([origin_id])
                self._seen_elements[origin_id] = 1
                self.distances.row(origin_id)[origin_id] = 0

    @property
    def ring(self) -> int:
        """Number of rings expanded so far (the paper's ``j``)."""
        return self._ring

    @property
    def exhausted(self) -> bool:
        """True when no origin has frontier nodes left to expand."""
        return self._exhausted

    def _traversable(self, slot: int) -> bool:
        """Can the search step across the link owning directed ``slot``?

        With ``respect_congestion`` a link must offer a free virtual
        channel in at least one direction; fully saturated or failed
        links act as walls, so distance estimates reflect the
        platform's *current* connectivity.
        """
        if not self.respect_congestion:
            return True
        state = self.state
        if (slot >> 1) in state._failed_links:
            return False
        saturated = state._slot_saturated
        return not (saturated[slot] and saturated[slot ^ 1])

    def advance(self) -> list[ProcessingElement]:
        """Expand one ring; return globally new candidate elements."""
        if self._exhausted:
            return []
        if self._fields is not None:
            return self._advance_replay()
        self._ring += 1
        ring = self._ring
        platform = self.platform
        neighbor_ids = platform._neighbor_ids
        neighbor_slots = platform._neighbor_slots
        nodes = platform._nodes_by_id
        is_element = platform._is_element_mask
        seen = self._seen_elements
        respect_congestion = self.respect_congestion
        # the congestion wall test (see _traversable) inlined: these
        # ledger arrays are read per candidate hop
        state = self.state
        failed_links = state._failed_links
        saturated = state._slot_saturated
        new_elements: list[ProcessingElement] = []
        any_frontier = False
        for index, origin_id in enumerate(self._origin_ids):
            frontier = self._frontier[index]
            if not frontier:
                continue
            visited = self._visited[index]
            row = self.distances.row(origin_id)
            next_frontier: list[int] = []
            for node_id in frontier:
                ids = neighbor_ids[node_id]
                slots = neighbor_slots[node_id]
                for neighbor_id, slot in zip(ids, slots):
                    if visited[neighbor_id]:
                        continue
                    if respect_congestion:
                        if failed_links and (slot >> 1) in failed_links:
                            continue
                        if saturated[slot] and saturated[slot ^ 1]:
                            continue
                    visited[neighbor_id] = 1
                    next_frontier.append(neighbor_id)
                    # first visit of this (origin, node) pair — the
                    # visited mask guarantees the cell is still unset,
                    # so the minimum-keeping compare is unnecessary
                    row[neighbor_id] = ring
                    if is_element[neighbor_id] and not seen[neighbor_id]:
                        seen[neighbor_id] = 1
                        new_elements.append(nodes[neighbor_id])
            self._frontier[index] = next_frontier
            if next_frontier:
                any_frontier = True
        self._exhausted = not any_frontier
        return new_elements

    def _advance_replay(self) -> list[ProcessingElement]:
        """One ring served from the engine's persistent fields.

        Each origin's ring list *is* its live next-frontier (in
        discovery order), so this loop only has to mirror the visible
        effects of :meth:`advance`: report elements unseen by every
        origin so far, and raise the distance matrix's visibility cap
        (the served rows already hold the cells).  Cached rings replay
        for free; past the cached prefix the engine extends the field
        by live expansion — at worst the BFS the non-incremental
        search would have run anyway, now remembered for the next
        attempt.
        """
        self._ring += 1
        ring = self._ring
        engine = self._engine
        fields = self._fields
        new_elements: list[ProcessingElement] = []
        any_frontier = False
        if len(fields) == 1:
            # solo BFS never revisits a node, so every element of the
            # ring is new by construction — no mask, no per-node work
            field = fields[0]
            if ring < len(field.rings):
                engine.stats.rings_reused += 1
                any_frontier = True
            elif engine.ring(field, ring) is not None:
                any_frontier = True
            if any_frontier:
                ring_elements = field.element_rings[ring]
                if ring_elements:
                    seen = self._seen_elements
                    for node_id, element in ring_elements:
                        seen[node_id] = 1
                        new_elements.append(element)
        else:
            seen = self._seen_elements
            for field in fields:
                if ring < len(field.rings):  # inlined ring() fast path
                    engine.stats.rings_reused += 1
                elif engine.ring(field, ring) is None:
                    continue
                any_frontier = True
                for node_id, element in field.element_rings[ring]:
                    if not seen[node_id]:
                        seen[node_id] = 1
                        new_elements.append(element)
        # distances become visible by raising the cap, not by copying:
        # every served row already holds the ring's cells
        self.distances._cap = ring
        self._exhausted = not any_frontier
        return new_elements

    def gather(
        self,
        needed: int,
        availability,
        extra_rings: int = 1,
        max_rings: int | None = None,
    ) -> list[ProcessingElement]:
        """Expand rings until ``needed`` available elements are found.

        ``availability(element) -> bool`` decides whether an element
        counts towards ``needed`` (typically: at least one task of the
        current layer fits on it).  Per Section III-B, "once we have
        discovered enough elements ... a single additional search step
        is performed" — controlled by ``extra_rings`` — so later
        objectives (fragmentation) have slack to choose from.

        Returns all *new* candidate elements found by this call, in
        discovery order.  The caller decides what to do when the
        search exhausts before ``needed`` is reached (the returned
        list is simply shorter in that case).
        """
        found: list[ProcessingElement] = []
        useful = 0
        while useful < needed and not self.exhausted:
            if max_rings is not None and self._ring >= max_rings:
                break
            ring_elements = self.advance()
            for element in ring_elements:
                found.append(element)
                if availability(element):
                    useful += 1
        for _ in range(extra_rings):
            if self.exhausted:
                break
            if max_rings is not None and self._ring >= max_rings:
                break
            found.extend(self.advance())
        return found
