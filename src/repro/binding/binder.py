"""Binding: regret-ordered implementation selection (paper Section II).

"For the binding phase, we use the approach in [9], which selects for
each task an implementation, ordered by the difference between the
cheapest and second cheapest assignment, as in [10]."  The idea is the
classic *regret* (max-difference) heuristic from the knapsack
literature [10]: tasks whose best option is much better than their
runner-up are bound first, because postponing them risks losing a
uniquely good fit.

Binding checks that "the required resources must be available
*somewhere* in the platform" (Section I) — it does not pick locations
(that is the mapping phase) but it does maintain a provisional
capacity pool so that several tasks cannot all be bound against the
same last free element.  Computation-intensive applications therefore
fail predominantly here when the platform fills up, matching Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.implementations import Implementation
from repro.apps.taskgraph import Application
from repro.arch.elements import ProcessingElement
from repro.arch.resources import ResourceVector
from repro.arch.state import AllocationState
from repro.reasons import ReasonCode

#: regret assigned to tasks with a single feasible implementation —
#: they are bound first, before any flexible task eats their capacity.
SINGLE_OPTION_REGRET = float("inf")

#: bound of the per-application sorted-options cache kept on the
#: state's scratch; cleared wholesale on overflow (it is a cache — a
#: fresh Application per request must not accumulate forever)
_OPTIONS_CACHE_LIMIT = 4096


class BindingError(RuntimeError):
    """The binding phase found no feasible implementation for a task.

    ``code`` classifies the failure machine-readably; the manager
    copies it onto the :class:`~repro.manager.layout.AllocationFailure`
    it raises (or the :class:`~repro.api.Decision` it returns).
    """

    def __init__(
        self, message: str, code: ReasonCode = ReasonCode.BINDING_INFEASIBLE
    ):
        super().__init__(message)
        self.code = code


@dataclass
class BindingResult:
    """Chosen implementation per task, plus provisioning diagnostics."""

    choice: dict[str, Implementation]
    #: element provisionally charged for each task's requirement (a
    #: feasibility witness, *not* a placement — mapping decides that)
    provisional: dict[str, str] = field(default_factory=dict)
    #: binding order with the regret that drove it (diagnostics)
    order: list[tuple[str, float]] = field(default_factory=list)

    def __getitem__(self, task: str) -> Implementation:
        return self.choice[task]

    def __contains__(self, task: str) -> bool:
        return task in self.choice

    def total_cost(self) -> float:
        return sum(impl.cost for impl in self.choice.values())


class _CapacityPool:
    """Provisional free capacities during one binding run.

    The regret loop asks for every unbound implementation's best-fit
    element on every round, which used to rescan the whole platform
    each time — O(rounds x impls x elements).  Since reservations only
    ever *shrink* one element's capacity, the best-fit answer per
    implementation is cached and maintained incrementally: a reserve
    invalidates only the implementations whose cached best is the
    touched element, and for all others the touched element is simply
    re-compared against the cached best (shrinking an element can make
    it a better best-fit or infeasible, never change other elements).
    """

    def __init__(self, state: AllocationState):
        self.platform = state.platform
        #: provisional free capacity indexed like ``platform.elements``
        #: (None marks failed elements), so the per-implementation
        #: static compatibility lists can index it directly
        self._free: list[ResourceVector | None] = []
        #: id(element) -> position in ``platform.elements`` — the
        #: platform's interned table (static per frozen platform)
        self._position: dict[int, int] = state.platform._element_position
        #: id(impl) -> (impl, best element, best slack) or (impl, None, 0.0)
        self._best: dict[int, tuple[Implementation, ProcessingElement | None, float]] = {}
        self._availability = state.availability
        #: True until the first provisional reservation: while pristine
        #: the pool's free vectors equal the raw state's, so best-fit
        #: scans are delegated to the state's epoch-stamped
        #: availability cache (one shared scan per implementation per
        #: epoch across the gate, the anchors and this pool)
        self._pristine = True
        self.reset(state)

    def reset(self, state: AllocationState) -> None:
        """Refill from the live ledgers (id-indexed, no name hashing).

        The pool object itself is reused across binding runs via the
        state's scratch cache — the free list and the best-fit cache's
        hash table are recycled storage, their *contents* always come
        from the current allocation state.
        """
        free_by_node = state._free
        failed = state._failed_elements
        element_ids = state.platform.element_ids
        pool_free = self._free
        pool_free.clear()
        if failed:
            pool_free.extend(
                None if element_id in failed else free_by_node[element_id]
                for element_id in element_ids
            )
        else:
            pool_free.extend(
                free_by_node[element_id] for element_id in element_ids
            )
        self._best.clear()
        self._availability = state.availability
        self._pristine = True

    def _slack(self, impl: Implementation, position: int) -> float | None:
        """Best-fit score of the element at ``position``; None when unfit.

        Smaller is better: minimal leftover on the bottleneck resource
        keeps the provisional packing tight, so binding only fails when
        the platform is genuinely close to full.
        """
        if not impl.runs_on(self.platform.elements[position]):
            return None
        free = self._free[position]
        requirement = impl.requirement
        if free is None or not requirement.fits_in(free):
            return None
        return 1.0 - requirement.bottleneck(free)

    def _scan(self, impl: Implementation) -> tuple[ProcessingElement | None, float]:
        best: ProcessingElement | None = None
        best_slack = float("inf")
        free = self._free
        # fits_in + bottleneck fused into one pass over the component
        # dicts: same comparisons, same float divisions in the same
        # order, one traversal instead of two method calls per element
        requirement_items = tuple(impl.requirement._data.items())
        for position, element in impl.compatible_on(self.platform):
            available = free[position]
            if available is None:
                continue
            data = available._data
            worst = 0.0
            for kind, quantity in requirement_items:
                have = data.get(kind)
                if have is None or quantity > have:
                    worst = -1.0
                    break
                ratio = quantity / have
                if ratio > worst:
                    worst = ratio
            if worst < 0.0:
                continue
            slack = 1.0 - worst
            if slack < best_slack or (
                slack == best_slack and best is not None and element.name < best.name
            ):
                best = element
                best_slack = slack
        return best, best_slack

    def feasible_element(self, impl: Implementation) -> ProcessingElement | None:
        """Best-fit element that can still host ``impl``, or None."""
        key = id(impl)
        cached = self._best.get(key)
        if cached is None:
            if self._pristine:
                # no provisional reservations yet: the answer over the
                # raw state is shared via the availability cache
                best, best_slack = self._availability.best_fit(impl)
            else:
                best, best_slack = self._scan(impl)
            self._best[key] = (impl, best, best_slack)
            return best
        return cached[1]

    def reserve(self, element: ProcessingElement, impl: Implementation) -> None:
        self._pristine = False
        position = self._position[id(element)]
        self._free[position] = self._free[position] - impl.requirement
        for key, (cached_impl, best, best_slack) in list(self._best.items()):
            if best is None:
                continue  # nothing fit before; a shrink changes nothing
            if best is element:
                # the cached winner shrank: recompute lazily on next ask
                del self._best[key]
                continue
            slack = self._slack(cached_impl, position)
            if slack is not None and (
                slack < best_slack
                or (slack == best_slack and element.name < best.name)
            ):
                self._best[key] = (cached_impl, element, slack)


def bind(
    app: Application,
    state: AllocationState,
    quality_weight: float = 0.0,
) -> BindingResult:
    """Select one implementation per task, regret-first.

    ``quality_weight`` biases the per-implementation score by its
    execution time (0 = pure cost, as in the paper's setup; > 0 trades
    cost against speed, an extension hook used by the examples).

    Raises :class:`BindingError` naming the first task that has no
    feasible implementation left.
    """
    # the provisional pool's storage is recycled across binding runs
    # (one bind at a time per state); its contents are reset from the
    # live ledgers on every acquisition
    scratch_objects = state.scratch.objects
    pool = scratch_objects.get("binder.pool")
    if pool is None or pool.platform is not state.platform:
        pool = _CapacityPool(state)
        scratch_objects["binder.pool"] = pool
    else:
        pool.reset(state)
    result = BindingResult(choice={})
    unbound = sorted(app.tasks)

    def score(impl: Implementation) -> float:
        return impl.cost + quality_weight * impl.execution_time

    # implementations pre-sorted by (score, name) once per application
    # (static given the quality weight): the regret of a round needs
    # only the two cheapest *feasible* options, which filtering a
    # sorted list yields without re-sorting per round
    options_key = ("binder.options", id(app), quality_weight)
    if len(scratch_objects) >= _OPTIONS_CACHE_LIMIT:
        # a cache, not state: callers minting a fresh Application per
        # request must not pin every one of them for the state's life
        pool_entry = scratch_objects.get("binder.pool")
        scratch_objects.clear()
        if pool_entry is not None:
            scratch_objects["binder.pool"] = pool_entry
    # guarded by the identity of every Task object: in-place task
    # replacement (the documented mutation pattern of
    # Application.invalidate_graph_cache) swaps frozen Task instances,
    # so a stale options list can never be served
    task_signature = tuple(map(id, app.tasks.values()))
    cached_options = scratch_objects.get(options_key)
    if cached_options is not None and cached_options[0] is app and (
        cached_options[1] == task_signature
    ):
        task_options = cached_options[3]
    else:
        task_options = {
            task: sorted(
                ((score(impl), impl)
                 for impl in app.task(task).implementations),
                key=lambda item: (item[0], item[1].name),
            )
            for task in unbound
        }
        scratch_objects[options_key] = (
            # the Task tuple keeps the signature ids alive
            app, task_signature, tuple(app.tasks.values()), task_options,
        )

    while unbound:
        # evaluate regret for every unbound task against the current pool
        best_task: str | None = None
        best_regret = -1.0
        best_option: tuple[Implementation, ProcessingElement] | None = None
        infeasible_task: str | None = None
        for task in unbound:
            first: tuple | None = None
            second_score: float | None = None
            for impl_score, impl in task_options[task]:
                element = pool.feasible_element(impl)
                if element is None:
                    continue
                if first is None:
                    first = (impl_score, impl, element)
                else:
                    second_score = impl_score
                    break
            if first is None:
                infeasible_task = task
                break
            if second_score is None:
                regret = SINGLE_OPTION_REGRET
            else:
                regret = second_score - first[0]
            if regret > best_regret or (
                regret == best_regret and (best_task is None or task < best_task)
            ):
                best_task = task
                best_regret = regret
                best_option = (first[1], first[2])
        if infeasible_task is not None:
            raise BindingError(
                f"task {infeasible_task!r} of {app.name!r} has no feasible "
                "implementation (insufficient platform resources)",
                code=ReasonCode.NO_FEASIBLE_IMPLEMENTATION,
            )
        assert best_task is not None and best_option is not None
        impl, element = best_option
        pool.reserve(element, impl)
        result.choice[best_task] = impl
        result.provisional[best_task] = element.name
        result.order.append((best_task, best_regret))
        unbound.remove(best_task)

    return result
