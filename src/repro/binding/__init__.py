"""Binding phase: regret-ordered implementation selection."""

from repro.binding.binder import (
    SINGLE_OPTION_REGRET,
    BindingError,
    BindingResult,
    bind,
)

__all__ = ["BindingError", "BindingResult", "SINGLE_OPTION_REGRET", "bind"]
