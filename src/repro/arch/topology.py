"""The platform graph: elements, routers and links.

A platform ``P = <E, L>`` "provides resources through the processing
elements E, which are connected with the links L" (paper Section III).
We model the interconnect explicitly as a graph whose nodes are
processing elements and NoC routers, and whose edges are physical
links.  Every link carries a virtual-channel count and a bandwidth
capacity; their run-time occupancy is tracked by
:class:`repro.arch.state.AllocationState`, not here — the topology is
immutable once frozen.

Two derived views are central to the algorithms:

* **hop distances** over the full node graph (used by the mapping cost
  function and the routers), and
* the **element adjacency graph** — two elements are adjacent when they
  share a router or sit on directly-linked routers — which defines the
  "pairs of adjacent elements" in the paper's external-fragmentation
  metric and the neighbour bonuses of the mapping cost function.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.arch.elements import Node, ProcessingElement, Router, is_element


class TopologyError(ValueError):
    """Raised for malformed platform construction."""


@dataclass(frozen=True)
class Link:
    """An undirected physical link between two platform nodes.

    ``virtual_channels`` is the number of time-shared logical channels
    the link supports per direction [11]; ``bandwidth`` is the
    capacity (abstract units/s) shared by the virtual channels of one
    direction.
    """

    a: Node
    b: Node
    virtual_channels: int = 4
    bandwidth: float = 100.0

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise TopologyError(f"self-link on {self.a}")
        if self.virtual_channels < 1:
            raise TopologyError("a link needs at least one virtual channel")
        if self.bandwidth <= 0:
            raise TopologyError("link bandwidth must be positive")

    def endpoints(self) -> tuple[Node, Node]:
        return (self.a, self.b)

    def other(self, node: Node) -> Node:
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise TopologyError(f"{node} is not an endpoint of {self}")

    def key(self) -> frozenset[str]:
        return frozenset((self.a.name, self.b.name))


class Platform:
    """An immutable-after-freeze heterogeneous MPSoC model.

    Build by adding nodes and links, then call :meth:`freeze` (the
    builders in :mod:`repro.arch.builders` do this for you).  After
    freezing, the derived adjacency and element-neighbour structures
    are computed once and shared by all allocation state objects.
    """

    def __init__(self, name: str = "platform"):
        self.name = name
        self._nodes: dict[str, Node] = {}
        self._links: dict[frozenset[str], Link] = {}
        self._adjacency: dict[str, list[Node]] = {}
        self._frozen = False
        self._element_neighbors: dict[str, tuple[ProcessingElement, ...]] = {}
        self._element_pairs: tuple[tuple[ProcessingElement, ProcessingElement], ...] = ()

    # -- construction -------------------------------------------------

    def add_node(self, node: Node) -> Node:
        self._require_mutable()
        if node.name in self._nodes:
            raise TopologyError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        self._adjacency[node.name] = []
        return node

    def add_element(self, element: ProcessingElement) -> ProcessingElement:
        if not isinstance(element, ProcessingElement):
            raise TopologyError(f"{element!r} is not a ProcessingElement")
        return self.add_node(element)

    def add_router(self, router: Router) -> Router:
        if not isinstance(router, Router):
            raise TopologyError(f"{router!r} is not a Router")
        return self.add_node(router)

    def add_link(
        self,
        a: Node | str,
        b: Node | str,
        virtual_channels: int = 4,
        bandwidth: float = 100.0,
    ) -> Link:
        self._require_mutable()
        node_a = self._resolve(a)
        node_b = self._resolve(b)
        link = Link(node_a, node_b, virtual_channels, bandwidth)
        if link.key() in self._links:
            raise TopologyError(f"duplicate link {node_a}—{node_b}")
        self._links[link.key()] = link
        self._adjacency[node_a.name].append(node_b)
        self._adjacency[node_b.name].append(node_a)
        return link

    def freeze(self) -> "Platform":
        """Finalize the topology and precompute derived structures."""
        if self._frozen:
            return self
        self._frozen = True
        self._compute_element_adjacency()
        return self

    def _require_mutable(self) -> None:
        if self._frozen:
            raise TopologyError("platform is frozen; cannot modify topology")

    def _resolve(self, node: Node | str) -> Node:
        if isinstance(node, str):
            try:
                return self._nodes[node]
            except KeyError:
                raise TopologyError(f"unknown node {node!r}") from None
        if node.name not in self._nodes or self._nodes[node.name] is not node:
            raise TopologyError(f"node {node!r} does not belong to this platform")
        return node

    # -- basic queries -------------------------------------------------

    @property
    def frozen(self) -> bool:
        return self._frozen

    def __contains__(self, node: Node | str) -> bool:
        name = node if isinstance(node, str) else node.name
        return name in self._nodes

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise TopologyError(f"unknown node {name!r}") from None

    def element(self, name: str) -> ProcessingElement:
        node = self.node(name)
        if not is_element(node):
            raise TopologyError(f"{name!r} is a router, not an element")
        return node

    @property
    def nodes(self) -> tuple[Node, ...]:
        return tuple(self._nodes.values())

    @property
    def elements(self) -> tuple[ProcessingElement, ...]:
        return tuple(n for n in self._nodes.values() if is_element(n))

    @property
    def routers(self) -> tuple[Router, ...]:
        return tuple(n for n in self._nodes.values() if not is_element(n))

    @property
    def links(self) -> tuple[Link, ...]:
        return tuple(self._links.values())

    def link_between(self, a: Node | str, b: Node | str) -> Link:
        name_a = a if isinstance(a, str) else a.name
        name_b = b if isinstance(b, str) else b.name
        try:
            return self._links[frozenset((name_a, name_b))]
        except KeyError:
            raise TopologyError(f"no link between {name_a} and {name_b}") from None

    def neighbors(self, node: Node | str) -> tuple[Node, ...]:
        name = node if isinstance(node, str) else node.name
        try:
            return tuple(self._adjacency[name])
        except KeyError:
            raise TopologyError(f"unknown node {name!r}") from None

    def degree(self, node: Node | str) -> int:
        return len(self.neighbors(node))

    # -- distances and neighbourhoods -----------------------------------

    def bfs_distances(
        self, origins: Iterable[Node], limit: int | None = None
    ) -> dict[Node, int]:
        """Hop distances from a set of origins over the full node graph.

        The mapping phase "keeps track of the distance between a newly
        discovered element and the origins of the BFS, to estimate the
        cost of the communication routes" (Section III-B); this is that
        primitive.  ``limit`` bounds the search radius.
        """
        distances: dict[Node, int] = {}
        queue: deque[Node] = deque()
        for origin in origins:
            node = self._resolve_frozen(origin)
            if node not in distances:
                distances[node] = 0
                queue.append(node)
        while queue:
            node = queue.popleft()
            depth = distances[node]
            if limit is not None and depth >= limit:
                continue
            for neighbor in self._adjacency[node.name]:
                if neighbor not in distances:
                    distances[neighbor] = depth + 1
                    queue.append(neighbor)
        return distances

    def hop_distance(self, a: Node | str, b: Node | str) -> int:
        """Shortest hop count between two nodes (``-1`` if disconnected)."""
        node_a = self._resolve_frozen(a)
        node_b = self._resolve_frozen(b)
        if node_a == node_b:
            return 0
        distances = self.bfs_distances([node_a])
        return distances.get(node_b, -1)

    def neighborhood(self, nodes: Iterable[Node], ring: int) -> set[Node]:
        """The set of nodes at hop distance exactly ``ring`` from ``nodes``."""
        if ring < 0:
            raise ValueError("ring must be non-negative")
        distances = self.bfs_distances(nodes, limit=ring)
        return {node for node, depth in distances.items() if depth == ring}

    def is_connected(self) -> bool:
        if not self._nodes:
            return True
        first = next(iter(self._nodes.values()))
        return len(self.bfs_distances([first])) == len(self._nodes)

    def _resolve_frozen(self, node: Node | str) -> Node:
        if isinstance(node, str):
            return self.node(node)
        if node.name not in self._nodes:
            raise TopologyError(f"node {node!r} does not belong to this platform")
        return node

    # -- element adjacency (fragmentation substrate) --------------------

    def _compute_element_adjacency(self) -> None:
        """Two elements are adjacent when they share a router, sit on
        directly-linked routers, or are directly linked to each other.

        This matches the intuitive "neighbouring tiles" notion of a
        NoC: in a mesh with one element per router, the elements of
        neighbouring routers are adjacent.
        """
        neighbors: dict[str, set[ProcessingElement]] = {
            e.name: set() for e in self.elements
        }
        for element in self.elements:
            reachable: set[ProcessingElement] = set()
            for first in self._adjacency[element.name]:
                if is_element(first):
                    reachable.add(first)
                    continue
                # first is a router: elements on it, and on adjacent routers
                for second in self._adjacency[first.name]:
                    if is_element(second):
                        reachable.add(second)
                    else:
                        for third in self._adjacency[second.name]:
                            if is_element(third):
                                reachable.add(third)
            reachable.discard(element)
            neighbors[element.name] = reachable
        self._element_neighbors = {
            name: tuple(sorted(found, key=lambda e: e.name))
            for name, found in neighbors.items()
        }
        pairs = set()
        for name, found in self._element_neighbors.items():
            for other in found:
                pairs.add(frozenset((name, other.name)))
        self._element_pairs = tuple(
            tuple(sorted((self.element(x) for x in pair), key=lambda e: e.name))
            for pair in sorted(pairs, key=sorted)
        )

    def element_neighbors(self, element: ProcessingElement | str) -> tuple[ProcessingElement, ...]:
        """Adjacent elements of ``element`` (see class docstring)."""
        self._require_frozen()
        name = element if isinstance(element, str) else element.name
        try:
            return self._element_neighbors[name]
        except KeyError:
            raise TopologyError(f"unknown element {name!r}") from None

    @property
    def element_pairs(self) -> tuple[tuple[ProcessingElement, ProcessingElement], ...]:
        """All unordered pairs of adjacent elements.

        The denominator of the paper's external resource fragmentation:
        "the percentage of pairs of adjacent elements of which only one
        element is used, over all pairs of adjacent elements".
        """
        self._require_frozen()
        return self._element_pairs

    def element_connectivity(self, element: ProcessingElement | str) -> int:
        """Number of adjacent elements — low values mean border tiles."""
        return len(self.element_neighbors(element))

    def _require_frozen(self) -> None:
        if not self._frozen:
            raise TopologyError("platform must be frozen first (call freeze())")

    # -- misc ------------------------------------------------------------

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return (
            f"<Platform {self.name!r}: {len(self.elements)} elements, "
            f"{len(self.routers)} routers, {len(self._links)} links>"
        )
