"""The platform graph: elements, routers and links.

A platform ``P = <E, L>`` "provides resources through the processing
elements E, which are connected with the links L" (paper Section III).
We model the interconnect explicitly as a graph whose nodes are
processing elements and NoC routers, and whose edges are physical
links.  Every link carries a virtual-channel count and a bandwidth
capacity; their run-time occupancy is tracked by
:class:`repro.arch.state.AllocationState`, not here — the topology is
immutable once frozen.

Two derived views are central to the algorithms:

* **hop distances** over the full node graph (used by the mapping cost
  function and the routers), and
* the **element adjacency graph** — two elements are adjacent when they
  share a router or sit on directly-linked routers — which defines the
  "pairs of adjacent elements" in the paper's external-fragmentation
  metric and the neighbour bonuses of the mapping cost function.

Freezing also *interns* every node and link to a dense integer id and
precomputes id-based adjacency and link tables.  The run-time hot
paths (allocation state ledgers, ring search, routing) operate on
these ids — array indexing instead of string hashing — and translate
back to names only at public API boundaries:

* ``node_id`` / ``node_by_id`` — name ↔ dense node id,
* ``neighbor_ids(i)`` with the parallel ``neighbor_slots(i)`` — the
  adjacency of node ``i`` together with the *directed link slot* of
  each edge,
* directed link slots: link ``l`` (id ``k``) owns slots ``2k`` and
  ``2k + 1`` for its two directions, so ``slot ^ 1`` is always the
  reverse direction; ``slot >> 1`` recovers the undirected link id,
* ``slot_vc`` / ``slot_bw`` — per-slot capacity arrays mirroring the
  :class:`Link` attributes.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.arch.elements import Node, ProcessingElement, Router, is_element


class TopologyError(ValueError):
    """Raised for malformed platform construction."""


@dataclass(frozen=True)
class Link:
    """An undirected physical link between two platform nodes.

    ``virtual_channels`` is the number of time-shared logical channels
    the link supports per direction [11]; ``bandwidth`` is the
    capacity (abstract units/s) shared by the virtual channels of one
    direction.
    """

    a: Node
    b: Node
    virtual_channels: int = 4
    bandwidth: float = 100.0

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise TopologyError(f"self-link on {self.a}")
        if self.virtual_channels < 1:
            raise TopologyError("a link needs at least one virtual channel")
        if self.bandwidth <= 0:
            raise TopologyError("link bandwidth must be positive")

    def endpoints(self) -> tuple[Node, Node]:
        return (self.a, self.b)

    def other(self, node: Node) -> Node:
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise TopologyError(f"{node} is not an endpoint of {self}")

    def key(self) -> frozenset[str]:
        return frozenset((self.a.name, self.b.name))


class Platform:
    """An immutable-after-freeze heterogeneous MPSoC model.

    Build by adding nodes and links, then call :meth:`freeze` (the
    builders in :mod:`repro.arch.builders` do this for you).  After
    freezing, the derived adjacency and element-neighbour structures
    are computed once and shared by all allocation state objects.
    """

    def __init__(self, name: str = "platform"):
        self.name = name
        self._nodes: dict[str, Node] = {}
        self._links: dict[frozenset[str], Link] = {}
        self._adjacency: dict[str, list[Node]] = {}
        self._frozen = False
        self._element_neighbors: dict[str, tuple[ProcessingElement, ...]] = {}
        self._element_pairs: tuple[tuple[ProcessingElement, ProcessingElement], ...] = ()
        # id interning tables, populated by freeze() (see module docstring)
        self._node_ids: dict[str, int] = {}
        self._nodes_by_id: tuple[Node, ...] = ()
        self._neighbor_ids: tuple[tuple[int, ...], ...] = ()
        self._neighbor_slots: tuple[tuple[int, ...], ...] = ()
        self._links_by_id: tuple[Link, ...] = ()
        self._directed_slots: dict[tuple[int, int], int] = {}
        self._slot_vc: tuple[int, ...] = ()
        self._slot_bw: tuple[float, ...] = ()
        self._is_element_mask: tuple[bool, ...] = ()
        self._element_ids: tuple[int, ...] = ()
        self._element_position: dict[int, int] = {}
        self._elements_tuple: tuple[ProcessingElement, ...] = ()
        self._routers_tuple: tuple[Router, ...] = ()
        self._element_neighbor_ids: dict[str, tuple[int, ...]] = {}
        self._element_pair_ids: tuple[tuple[int, int], ...] = ()

    # -- construction -------------------------------------------------

    def add_node(self, node: Node) -> Node:
        self._require_mutable()
        if node.name in self._nodes:
            raise TopologyError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        self._adjacency[node.name] = []
        return node

    def add_element(self, element: ProcessingElement) -> ProcessingElement:
        if not isinstance(element, ProcessingElement):
            raise TopologyError(f"{element!r} is not a ProcessingElement")
        return self.add_node(element)

    def add_router(self, router: Router) -> Router:
        if not isinstance(router, Router):
            raise TopologyError(f"{router!r} is not a Router")
        return self.add_node(router)

    def add_link(
        self,
        a: Node | str,
        b: Node | str,
        virtual_channels: int = 4,
        bandwidth: float = 100.0,
    ) -> Link:
        self._require_mutable()
        node_a = self._resolve(a)
        node_b = self._resolve(b)
        link = Link(node_a, node_b, virtual_channels, bandwidth)
        if link.key() in self._links:
            raise TopologyError(f"duplicate link {node_a}—{node_b}")
        self._links[link.key()] = link
        self._adjacency[node_a.name].append(node_b)
        self._adjacency[node_b.name].append(node_a)
        return link

    def freeze(self) -> "Platform":
        """Finalize the topology and precompute derived structures."""
        if self._frozen:
            return self
        self._frozen = True
        self._intern()
        self._compute_element_adjacency()
        return self

    def _intern(self) -> None:
        """Assign dense integer ids to nodes and links (see docstring)."""
        names = list(self._nodes)
        self._node_ids = {name: index for index, name in enumerate(names)}
        self._nodes_by_id = tuple(self._nodes[name] for name in names)
        self._is_element_mask = tuple(
            is_element(node) for node in self._nodes_by_id
        )
        self._element_ids = tuple(
            index for index, flag in enumerate(self._is_element_mask) if flag
        )
        self._elements_tuple = tuple(
            node for node in self._nodes_by_id if is_element(node)
        )
        self._routers_tuple = tuple(
            node for node in self._nodes_by_id if not is_element(node)
        )
        # position of each element object in ``elements`` (identity-
        # keyed: the tuple holds the references, so ids stay valid) —
        # lets hot loops map an element back to its scan position
        # without hashing its name
        self._element_position = {
            id(element): position
            for position, element in enumerate(self._elements_tuple)
        }
        self._links_by_id = tuple(self._links.values())
        slot_vc: list[int] = []
        slot_bw: list[float] = []
        directed: dict[tuple[int, int], int] = {}
        for link_id, link in enumerate(self._links_by_id):
            id_a = self._node_ids[link.a.name]
            id_b = self._node_ids[link.b.name]
            directed[(id_a, id_b)] = 2 * link_id
            directed[(id_b, id_a)] = 2 * link_id + 1
            slot_vc += [link.virtual_channels, link.virtual_channels]
            slot_bw += [link.bandwidth, link.bandwidth]
        self._directed_slots = directed
        self._slot_vc = tuple(slot_vc)
        self._slot_bw = tuple(slot_bw)
        neighbor_ids = []
        neighbor_slots = []
        for index, node in enumerate(self._nodes_by_id):
            ids = tuple(
                self._node_ids[other.name] for other in self._adjacency[node.name]
            )
            neighbor_ids.append(ids)
            neighbor_slots.append(
                tuple(directed[(index, other)] for other in ids)
            )
        self._neighbor_ids = tuple(neighbor_ids)
        self._neighbor_slots = tuple(neighbor_slots)

    def _require_mutable(self) -> None:
        if self._frozen:
            raise TopologyError("platform is frozen; cannot modify topology")

    def _resolve(self, node: Node | str) -> Node:
        if isinstance(node, str):
            try:
                return self._nodes[node]
            except KeyError:
                raise TopologyError(f"unknown node {node!r}") from None
        if node.name not in self._nodes or self._nodes[node.name] is not node:
            raise TopologyError(f"node {node!r} does not belong to this platform")
        return node

    # -- basic queries -------------------------------------------------

    @property
    def frozen(self) -> bool:
        return self._frozen

    def __contains__(self, node: Node | str) -> bool:
        name = node if isinstance(node, str) else node.name
        return name in self._nodes

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise TopologyError(f"unknown node {name!r}") from None

    def element(self, name: str) -> ProcessingElement:
        node = self.node(name)
        if not is_element(node):
            raise TopologyError(f"{name!r} is a router, not an element")
        return node

    @property
    def nodes(self) -> tuple[Node, ...]:
        if self._frozen:
            return self._nodes_by_id
        return tuple(self._nodes.values())

    @property
    def elements(self) -> tuple[ProcessingElement, ...]:
        if self._frozen:
            return self._elements_tuple
        return tuple(n for n in self._nodes.values() if is_element(n))

    @property
    def routers(self) -> tuple[Router, ...]:
        if self._frozen:
            return self._routers_tuple
        return tuple(n for n in self._nodes.values() if not is_element(n))

    @property
    def links(self) -> tuple[Link, ...]:
        if self._frozen:
            return self._links_by_id
        return tuple(self._links.values())

    def link_between(self, a: Node | str, b: Node | str) -> Link:
        name_a = a if isinstance(a, str) else a.name
        name_b = b if isinstance(b, str) else b.name
        try:
            return self._links[frozenset((name_a, name_b))]
        except KeyError:
            raise TopologyError(f"no link between {name_a} and {name_b}") from None

    def neighbors(self, node: Node | str) -> tuple[Node, ...]:
        name = node if isinstance(node, str) else node.name
        try:
            return tuple(self._adjacency[name])
        except KeyError:
            raise TopologyError(f"unknown node {name!r}") from None

    def degree(self, node: Node | str) -> int:
        return len(self.neighbors(node))

    # -- interned-id queries (frozen platforms only) ---------------------

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def slot_count(self) -> int:
        """Number of directed link slots (two per undirected link)."""
        return 2 * len(self._links)

    def node_id(self, node: Node | str) -> int:
        """Dense integer id of a node (frozen platforms only)."""
        self._require_frozen()
        name = node if isinstance(node, str) else node.name
        try:
            return self._node_ids[name]
        except KeyError:
            raise TopologyError(f"unknown node {name!r}") from None

    def node_by_id(self, node_id: int) -> Node:
        return self._nodes_by_id[node_id]

    def neighbor_ids(self, node_id: int) -> tuple[int, ...]:
        """Neighbor node ids of ``node_id``, in link insertion order."""
        self._require_frozen()
        return self._neighbor_ids[node_id]

    def neighbor_slots(self, node_id: int) -> tuple[int, ...]:
        """Directed link slot of each edge, parallel to neighbor_ids."""
        self._require_frozen()
        return self._neighbor_slots[node_id]

    @property
    def element_ids(self) -> tuple[int, ...]:
        """Node ids of processing elements, in declaration order."""
        self._require_frozen()
        return self._element_ids

    def is_element_id(self, node_id: int) -> bool:
        return self._is_element_mask[node_id]

    def directed_slot(self, a_id: int, b_id: int) -> int:
        """The directed slot of link ``a -> b``; raises if not linked.

        The reverse direction is always ``slot ^ 1``, the undirected
        link id ``slot >> 1``.
        """
        try:
            return self._directed_slots[(a_id, b_id)]
        except KeyError:
            name_a = self._nodes_by_id[a_id].name
            name_b = self._nodes_by_id[b_id].name
            raise TopologyError(
                f"no link between {name_a} and {name_b}"
            ) from None

    def link_by_id(self, link_id: int) -> Link:
        return self._links_by_id[link_id]

    @property
    def slot_vc(self) -> tuple[int, ...]:
        """Per-slot virtual-channel capacities."""
        return self._slot_vc

    @property
    def slot_bw(self) -> tuple[float, ...]:
        """Per-slot bandwidth capacities."""
        return self._slot_bw

    # -- distances and neighbourhoods -----------------------------------

    def bfs_distances(
        self, origins: Iterable[Node], limit: int | None = None
    ) -> dict[Node, int]:
        """Hop distances from a set of origins over the full node graph.

        The mapping phase "keeps track of the distance between a newly
        discovered element and the origins of the BFS, to estimate the
        cost of the communication routes" (Section III-B); this is that
        primitive.  ``limit`` bounds the search radius.
        """
        distances: dict[Node, int] = {}
        queue: deque[Node] = deque()
        for origin in origins:
            node = self._resolve_frozen(origin)
            if node not in distances:
                distances[node] = 0
                queue.append(node)
        while queue:
            node = queue.popleft()
            depth = distances[node]
            if limit is not None and depth >= limit:
                continue
            for neighbor in self._adjacency[node.name]:
                if neighbor not in distances:
                    distances[neighbor] = depth + 1
                    queue.append(neighbor)
        return distances

    def hop_distance(self, a: Node | str, b: Node | str) -> int:
        """Shortest hop count between two nodes (``-1`` if disconnected)."""
        node_a = self._resolve_frozen(a)
        node_b = self._resolve_frozen(b)
        if node_a == node_b:
            return 0
        distances = self.bfs_distances([node_a])
        return distances.get(node_b, -1)

    def neighborhood(self, nodes: Iterable[Node], ring: int) -> set[Node]:
        """The set of nodes at hop distance exactly ``ring`` from ``nodes``."""
        if ring < 0:
            raise ValueError("ring must be non-negative")
        distances = self.bfs_distances(nodes, limit=ring)
        return {node for node, depth in distances.items() if depth == ring}

    def is_connected(self) -> bool:
        if not self._nodes:
            return True
        first = next(iter(self._nodes.values()))
        return len(self.bfs_distances([first])) == len(self._nodes)

    def _resolve_frozen(self, node: Node | str) -> Node:
        if isinstance(node, str):
            return self.node(node)
        if node.name not in self._nodes:
            raise TopologyError(f"node {node!r} does not belong to this platform")
        return node

    # -- element adjacency (fragmentation substrate) --------------------

    def _compute_element_adjacency(self) -> None:
        """Two elements are adjacent when they share a router, sit on
        directly-linked routers, or are directly linked to each other.

        This matches the intuitive "neighbouring tiles" notion of a
        NoC: in a mesh with one element per router, the elements of
        neighbouring routers are adjacent.
        """
        neighbors: dict[str, set[ProcessingElement]] = {
            e.name: set() for e in self.elements
        }
        for element in self.elements:
            reachable: set[ProcessingElement] = set()
            for first in self._adjacency[element.name]:
                if is_element(first):
                    reachable.add(first)
                    continue
                # first is a router: elements on it, and on adjacent routers
                for second in self._adjacency[first.name]:
                    if is_element(second):
                        reachable.add(second)
                    else:
                        for third in self._adjacency[second.name]:
                            if is_element(third):
                                reachable.add(third)
            reachable.discard(element)
            neighbors[element.name] = reachable
        self._element_neighbors = {
            name: tuple(sorted(found, key=lambda e: e.name))
            for name, found in neighbors.items()
        }
        pairs = set()
        for name, found in self._element_neighbors.items():
            for other in found:
                pairs.add(frozenset((name, other.name)))
        self._element_pairs = tuple(
            tuple(sorted((self.element(x) for x in pair), key=lambda e: e.name))
            for pair in sorted(pairs, key=sorted)
        )
        self._element_neighbor_ids = {
            name: tuple(self._node_ids[e.name] for e in found)
            for name, found in self._element_neighbors.items()
        }
        self._element_pair_ids = tuple(
            (self._node_ids[a.name], self._node_ids[b.name])
            for a, b in self._element_pairs
        )

    def element_neighbors(self, element: ProcessingElement | str) -> tuple[ProcessingElement, ...]:
        """Adjacent elements of ``element`` (see class docstring)."""
        self._require_frozen()
        name = element if isinstance(element, str) else element.name
        try:
            return self._element_neighbors[name]
        except KeyError:
            raise TopologyError(f"unknown element {name!r}") from None

    @property
    def element_pairs(self) -> tuple[tuple[ProcessingElement, ProcessingElement], ...]:
        """All unordered pairs of adjacent elements.

        The denominator of the paper's external resource fragmentation:
        "the percentage of pairs of adjacent elements of which only one
        element is used, over all pairs of adjacent elements".
        """
        self._require_frozen()
        return self._element_pairs

    def element_connectivity(self, element: ProcessingElement | str) -> int:
        """Number of adjacent elements — low values mean border tiles."""
        return len(self.element_neighbors(element))

    def element_neighbor_ids(self, element: ProcessingElement | str) -> tuple[int, ...]:
        """Node ids of the adjacent elements of ``element``."""
        self._require_frozen()
        name = element if isinstance(element, str) else element.name
        try:
            return self._element_neighbor_ids[name]
        except KeyError:
            raise TopologyError(f"unknown element {name!r}") from None

    @property
    def element_pair_ids(self) -> tuple[tuple[int, int], ...]:
        """:attr:`element_pairs` as node-id pairs (fragmentation hot path)."""
        self._require_frozen()
        return self._element_pair_ids

    def _require_frozen(self) -> None:
        if not self._frozen:
            raise TopologyError("platform must be frozen first (call freeze())")

    # -- misc ------------------------------------------------------------

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return (
            f"<Platform {self.name!r}: {len(self.elements)} elements, "
            f"{len(self.routers)} routers, {len(self._links)} links>"
        )
