"""Run-time allocation state of a platform.

The :class:`Platform` is immutable; everything that changes while
applications come and go lives here:

* per-element free resource vectors,
* which tasks of which applications occupy each element,
* per-directed-link virtual-channel and bandwidth ledgers,
* failed (faulty) elements and links, and
* the external-resource-fragmentation metric of Section III-A:
  "the percentage of pairs of adjacent elements of which only one
  element is used, over all pairs of adjacent elements in the
  platform".

A whole allocation attempt (binding, mapping, routing, validation) must
be atomic — a failure in any phase must leave no residue.  Atomicity is
provided by a **transaction journal**: every mutation appends an undo
entry while a transaction is open, and rollback replays those entries
in reverse.  Rollback cost is therefore O(mutations performed), not
O(platform size), which is what keeps failed-admission recovery flat
as platforms grow.  Use::

    with state.transaction():
        state.occupy(...)
        state.reserve_route(...)
        # raising any exception rolls everything back

Within a transaction, :meth:`savepoint` / :meth:`rollback_to` provide
partial undo (used by the exhaustive baseline's branch-and-bound).

The state also maintains **capacity epochs** for the admission fast
path (see :mod:`repro.manager.kairos`): a monotonic mutation counter
(:attr:`epoch`) bumped by every committed mutation, plus per-resource-
kind aggregate free counters — platform-wide and per element class —
updated incrementally by occupy/vacate/fail/heal.  Both are journaled
like every other ledger, so a rolled-back attempt restores them
bit-exactly; equal epochs therefore certify identical allocation
state, which is what makes negative-result memoization sound.

For the incremental distance-field engine
(:mod:`repro.core.distfield`) the state additionally keeps a
**link-traversability flip log**: an append-only sequence of link ids,
one entry per committed *change* of a link's search-traversability —
"not failed, and at least one free virtual channel in some direction",
exactly the congestion wall the ring search and the routers test.
Mutations that flip a link append its id; journal *undo* appends the
reversing flip instead of erasing history, so the log position
(:meth:`link_flip_mark`) is monotone and a cached field is valid iff
every link has an *even* number of entries in the log suffix recorded
since the field was built (odd counts are the net-dirty links).
``restore()`` breaks the timeline wholesale and therefore advances the
log base past every outstanding mark.

The legacy :meth:`snapshot` / :meth:`restore` pair — a full O(platform)
copy of every ledger — is kept as a compatibility wrapper; new code
should prefer transactions.

Internally all ledgers are arrays indexed by the interned integer ids
the platform assigns at freeze time (see :mod:`repro.arch.topology`);
the name-based public methods translate at the boundary.

Package-internal contract: the ledger arrays ``_free``, ``_vc_used``,
``_bw_used``, ``_failed_elements`` and ``_failed_links`` are read
directly (never written) by the hot loops in
:mod:`repro.routing.router`, :mod:`repro.core.search`,
:mod:`repro.core.mapping` and :mod:`repro.core.distfield` — hoisting
them once per search avoids a method call per hop.  A representation
change here must update those modules (and nothing else; external
code uses the public API).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.arch.elements import Node, ProcessingElement
from repro.arch.resources import ResourceError, ResourceVector
from repro.arch.scratch import ScratchPool
from repro.arch.topology import Platform, TopologyError


class AllocationError(RuntimeError):
    """Raised when an occupy/reserve request cannot be satisfied."""


@dataclass(frozen=True)
class Occupant:
    """A task instance resident on an element."""

    app_id: str
    task_id: str
    requirement: ResourceVector


@dataclass(frozen=True)
class ChannelReservation:
    """A reserved route: one virtual channel + bandwidth per hop."""

    app_id: str
    channel_id: str
    path: tuple[str, ...]  # node names, source element ... target element
    bandwidth: float

    @property
    def hops(self) -> int:
        return len(self.path) - 1


#: journal op codes (first element of every undo entry)
_OP_OCCUPY = 0
_OP_VACATE = 1
_OP_RESERVE = 2
_OP_RELEASE = 3
_OP_FAIL_ELEMENT = 4
_OP_HEAL_ELEMENT = 5
_OP_FAIL_LINK = 6
_OP_HEAL_LINK = 7

#: below this magnitude a drained bandwidth ledger snaps back to zero,
#: so float accumulation drift cannot shadow a fully free link
_BW_EPSILON = 1e-9

#: safety cap on the link-traversability flip log for states without
#: an attached distance-field engine (the engine trims much earlier,
#: at its own limit); on overflow the oldest half is dropped and the
#: base raised, turning any still-outstanding reader marks into
#: "unverifiable" — a cache miss, never a wrong answer
_FLIP_LOG_CAP = 1 << 15


class AvailabilityCache:
    """Epoch-stamped per-implementation availability summaries.

    Several callers ask the same question about the same specification
    pool many times per admission attempt: *which elements can host
    this implementation right now?*  The admission gate needs "at
    least one", the mapping phase's anchor detection needs "exactly
    one, and which".  Both are answered by one platform scan whose
    result is a pure function of (implementation, allocation state) —
    so the scan is cached and keyed by the capacity epoch: any
    mutation invalidates wholesale, and within one epoch (one gate
    check plus the binding phase, which never mutates state) every
    repeat is O(1).

    ``summary(impl)`` returns ``(count, first)`` where ``count`` is
    0, 1 or 2 (2 meaning *two or more*) and ``first`` is the first
    available element in platform scan order (None when count is 0).
    ``best_fit(impl)`` returns the binder's best-fit answer over the
    raw state — ``(element, slack)`` with minimal leftover on the
    bottleneck resource, name-tie-broken — which the binding phase's
    provisional pool reuses for its pristine (pre-reservation) round.
    Both come from one platform scan.
    """

    __slots__ = ("_state", "_epoch", "_summaries", "memo")

    def __init__(self, state: "AllocationState") -> None:
        self._state = state
        self._epoch = -1
        #: id(impl) -> (impl, count, first, best, best_slack) — impl
        #: kept in the value so a recycled id can never alias a dead
        #: object
        self._summaries: dict[int, tuple] = {}
        #: free-form epoch-scoped memo for callers whose derived values
        #: are pure functions of (their key, allocation state) — e.g.
        #: the mapping phase's anchor-element choice.  Cleared together
        #: with the summaries whenever the epoch moves.
        self.memo: dict = {}

    def summary(self, impl) -> tuple[int, ProcessingElement | None]:
        entry = self._entry(impl)
        return entry[1], entry[2]

    def best_fit(self, impl) -> tuple[ProcessingElement | None, float]:
        entry = self._entry(impl)
        return entry[3], entry[4]

    def available(self, impl) -> tuple:
        """All currently available elements, in platform scan order."""
        return self._entry(impl)[5]

    def epoch_memo(self) -> dict:
        """The epoch-scoped free-form memo (cleared on any mutation)."""
        if self._epoch != self._state._epoch:
            self._summaries.clear()
            self.memo.clear()
            self._epoch = self._state._epoch
        return self.memo

    def _entry(self, impl) -> tuple:
        state = self._state
        epoch = state._epoch
        if self._epoch != epoch:
            self._summaries.clear()
            self.memo.clear()
            self._epoch = epoch
        key = id(impl)
        cached = self._summaries.get(key)
        if cached is not None and cached[0] is impl:
            return cached
        entry = self._scan(impl)
        self._summaries[key] = entry
        return entry

    def _scan(self, impl) -> tuple:
        state = self._state
        platform = state.platform
        requirement_items = tuple(impl.requirement._data.items())
        failed = state._failed_elements
        count = 0
        first: ProcessingElement | None = None
        best: ProcessingElement | None = None
        best_slack = float("inf")
        available_elements: list = []
        # fits + bottleneck fused over the state's per-kind free
        # arrays: identical comparisons and divisions (in the same
        # order) as ResourceVector.fits_in / .bottleneck, but each
        # probe is one flat-array read; the one- and two-kind
        # requirement shapes (virtually every generated implementation)
        # skip the inner loop entirely.  A requirement kind no element
        # ever offered has no array — nothing can fit.
        free_arrays = state._free_arrays
        arity = len(requirement_items)
        array_a = array_b = None
        quantity_a = quantity_b = None
        if arity == 1:
            ((kind_a, quantity_a),) = requirement_items
            array_a = free_arrays.get(kind_a)
            if array_a is None:
                return (impl, 0, None, None, best_slack, ())
        elif arity == 2:
            (kind_a, quantity_a), (kind_b, quantity_b) = requirement_items
            array_a = free_arrays.get(kind_a)
            array_b = free_arrays.get(kind_b)
            if array_a is None or array_b is None:
                return (impl, 0, None, None, best_slack, ())
        for element_id, element in impl.compatible_nodes(platform):
            if failed and element_id in failed:
                continue
            if arity == 1:
                have = array_a[element_id]
                if quantity_a > have:
                    continue
                worst = quantity_a / have
            elif arity == 2:
                have = array_a[element_id]
                if quantity_a > have:
                    continue
                worst = quantity_a / have
                have = array_b[element_id]
                if quantity_b > have:
                    continue
                ratio = quantity_b / have
                if ratio > worst:
                    worst = ratio
            else:
                available = state._free[element_id]._data
                worst = 0.0
                for kind, quantity in requirement_items:
                    have = available.get(kind)
                    if have is None or quantity > have:
                        worst = -1.0
                        break
                    ratio = quantity / have
                    if ratio > worst:
                        worst = ratio
                if worst < 0.0:
                    continue
            if count == 0:
                first = element
                count = 1
            elif count == 1:
                count = 2
            available_elements.append(element)
            slack = 1.0 - worst
            if slack < best_slack or (
                slack == best_slack
                and best is not None and element.name < best.name
            ):
                best = element
                best_slack = slack
        return (impl, count, first, best, best_slack,
                tuple(available_elements))


class _Transaction:
    """Context manager returned by :meth:`AllocationState.transaction`."""

    __slots__ = ("_state", "_mark")

    def __init__(self, state: "AllocationState") -> None:
        self._state = state
        self._mark = 0

    def __enter__(self) -> "AllocationState":
        self._mark = self._state._tx_begin()
        return self._state

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self._state._tx_commit()
        else:
            self._state._tx_rollback(self._mark)
        return False


class AllocationState:
    """Mutable occupancy ledger over a frozen :class:`Platform`."""

    def __init__(self, platform: Platform):
        if not platform.frozen:
            raise TopologyError("AllocationState requires a frozen platform")
        self.platform = platform
        mask = platform._is_element_mask
        self._free: list[ResourceVector | None] = [
            node.capacity if mask[index] else None
            for index, node in enumerate(platform._nodes_by_id)
        ]
        self._occupants: list[list[Occupant] | None] = [
            [] if flag else None for flag in mask
        ]
        # directed link ledgers, indexed by slot (2 per undirected link)
        self._vc_used: list[int] = [0] * platform.slot_count
        self._bw_used: list[float] = [0.0] * platform.slot_count
        # virtual-channel saturation mask: _slot_saturated[slot] == 1
        # iff _vc_used[slot] >= platform._slot_vc[slot].  Maintained at
        # every vc mutation so the BFS inner loops (router, ring
        # search, distance fields) pay one byte read per hop instead of
        # two list reads and a compare.
        self._slot_saturated = bytearray(
            1 if vc <= 0 else 0 for vc in platform._slot_vc
        )
        self._reservations: dict[tuple[str, str], ChannelReservation] = {}
        #: directed slots of each reservation, parallel to _reservations
        self._res_slots: dict[tuple[str, str], tuple[int, ...]] = {}
        self._placements: dict[tuple[str, str], int] = {}  # (app, task) -> id
        # wear odometer: total occupations ever served per element
        # (releases do not decrement; see WearLevelingObjective)
        self._wear: list[int] = [0] * platform.node_count
        self._failed_elements: set[int] = set()
        self._failed_links: set[int] = set()  # undirected link ids
        # cached totals so utilization() is O(1) (it runs per admission)
        self._total_capacity = sum(
            e.capacity.total() for e in platform.elements
        )
        self._allocated_total: float = 0
        # capacity epochs: every committed mutation bumps the counter;
        # rollback restores it, so equal epochs mean identical state
        self._epoch = 0
        #: element kind per node id (None for routers), for the
        #: per-class aggregate updates on the occupy/vacate hot path
        self._kind_by_id = [
            node.kind if mask[index] else None
            for index, node in enumerate(platform._nodes_by_id)
        ]
        # aggregate free counters over NON-FAILED elements: platform
        # totals per resource kind, and the same split per element kind
        self._agg_free: dict = {}
        self._agg_free_kind: dict = {}
        self._recompute_aggregates()
        # per-kind mirror of the free vectors (node-id-indexed flat
        # arrays, zero for missing kinds): the platform-wide scans of
        # the availability cache and the mapping probes index these
        # instead of hashing into each element's component dict.
        # Maintained by occupy/vacate (and their undos) cell-exactly —
        # every write copies the value the vector ledger carries.
        self._free_arrays: dict = {}
        self._rebuild_free_arrays()
        # link-traversability flip log (see module docstring): one link
        # id per committed traversability change, append-only — undo
        # appends the reversing flip rather than erasing history, so a
        # reader's mark stays meaningful across rollbacks.  _flip_base
        # counts entries trimmed off the front; marks below it are
        # unverifiable (readers must treat their caches as cold).
        self._link_flips: list[int] = []
        self._flip_base = 0
        # transaction journal: None when no transaction is open
        self._journal: list[tuple] | None = None
        self._tx_depth = 0
        self._scratch: ScratchPool | None = None
        self._availability: AvailabilityCache | None = None

    # -- transactions ------------------------------------------------------

    def transaction(self) -> _Transaction:
        """Open an atomic scope: any exception rolls every mutation back.

        Transactions nest; an inner rollback undoes only the inner
        scope.  Rollback cost is proportional to the mutations made
        inside the scope, never to the platform size.
        """
        return _Transaction(self)

    def in_transaction(self) -> bool:
        return self._journal is not None

    def savepoint(self) -> int:
        """A mark for partial rollback inside an open transaction."""
        if self._journal is None:
            raise AllocationError("savepoint() requires an open transaction")
        return len(self._journal)

    def rollback_to(self, mark: int) -> None:
        """Undo every mutation made since ``mark`` (newest first)."""
        journal = self._journal
        if journal is None:
            raise AllocationError("rollback_to() requires an open transaction")
        while len(journal) > mark:
            self._undo(journal.pop())
        # a later committed mutation will re-reach the epoch values this
        # rolled-back span used, so any cache entries stamped with an
        # uncommitted (greater) epoch must not survive — they observed
        # state that no longer exists.  Entries stamped at or before
        # the restored epoch observed exactly the restored state and
        # stay valid.
        cache = self._availability
        if cache is not None and cache._epoch > self._epoch:
            cache._epoch = -1

    def _tx_begin(self) -> int:
        if self._journal is None:
            self._journal = []
        self._tx_depth += 1
        return len(self._journal)

    def _tx_commit(self) -> None:
        self._tx_depth -= 1
        if self._tx_depth == 0:
            self._journal = None

    def _tx_rollback(self, mark: int) -> None:
        self.rollback_to(mark)
        self._tx_depth -= 1
        if self._tx_depth == 0:
            self._journal = None

    def _undo(self, entry: tuple) -> None:
        # Undo entries carry the exact pre-mutation values (old free
        # vector, old bandwidth per slot, old allocated total) and
        # restore them verbatim.  Inverting the arithmetic instead
        # ((x + b) - b) is not bit-exact for float quantities, and the
        # journal must leave the state indistinguishable from a
        # snapshot restore.
        op = entry[0]
        if op == _OP_OCCUPY:
            _op, element_id, key, old_free, old_allocated, agg = entry
            occupant = self._occupants[element_id].pop()
            self._free[element_id] = old_free
            del self._placements[key]
            self._wear[element_id] -= 1
            self._allocated_total = old_allocated
            self._agg_restore(element_id, agg)
            self._mirror_free(element_id, occupant.requirement._data)
        elif op == _OP_VACATE:
            (_op, element_id, key, occupant, index,
             old_free, old_allocated, agg) = entry
            self._occupants[element_id].insert(index, occupant)
            self._free[element_id] = old_free
            self._placements[key] = element_id
            self._allocated_total = old_allocated
            self._agg_restore(element_id, agg)
            self._mirror_free(element_id, occupant.requirement._data)
        elif op == _OP_RESERVE:
            _op, key, old_bws = entry
            self._reservations.pop(key)
            slots = self._res_slots.pop(key)
            vc_used, bw_used = self._vc_used, self._bw_used
            slot_vc = self.platform._slot_vc
            saturated = self._slot_saturated
            failed_links, flips = self._failed_links, self._link_flips
            for position in range(len(slots) - 1, -1, -1):
                slot = slots[position]
                # flip log entries are *appended* on undo (the reverse
                # flip), never erased — history stays monotone, so a
                # reader's parity count over its log suffix is exact.
                # MUST mirror _unapply_slots exactly: parity soundness
                # rests on undo reversing apply flip-for-flip.
                used = vc_used[slot]
                if used == slot_vc[slot]:
                    if (
                        saturated[slot ^ 1]
                        and (slot >> 1) not in failed_links
                    ):
                        flips.append(slot >> 1)
                    saturated[slot] = 0
                vc_used[slot] = used - 1
                bw_used[slot] = old_bws[position]
        elif op == _OP_RELEASE:
            _op, key, reservation, slots, old_bws = entry
            self._reservations[key] = reservation
            self._res_slots[key] = slots
            vc_used, bw_used = self._vc_used, self._bw_used
            slot_vc = self.platform._slot_vc
            saturated = self._slot_saturated
            failed_links, flips = self._failed_links, self._link_flips
            for position in range(len(slots) - 1, -1, -1):
                slot = slots[position]
                # MUST mirror reserve_route_ids' apply loop exactly
                # (see above): undo of a release re-applies the
                # reservation, so it re-logs the same closing flip
                used = vc_used[slot] + 1
                vc_used[slot] = used
                if used >= slot_vc[slot]:
                    saturated[slot] = 1
                    if (
                        used == slot_vc[slot]
                        and saturated[slot ^ 1]
                        and (slot >> 1) not in failed_links
                    ):
                        flips.append(slot >> 1)
                bw_used[slot] = old_bws[position]
        elif op == _OP_FAIL_ELEMENT:
            _op, element_id, was_failed, agg = entry
            if not was_failed:
                self._failed_elements.discard(element_id)
                self._agg_restore(element_id, agg)
        elif op == _OP_HEAL_ELEMENT:
            _op, element_id, was_failed, agg = entry
            if was_failed:
                self._failed_elements.add(element_id)
                self._agg_restore(element_id, agg)
        elif op == _OP_FAIL_LINK:
            _op, link_id, was_failed = entry
            if not was_failed:
                self._failed_links.discard(link_id)
                if self.link_traversable(link_id):
                    self._link_flips.append(link_id)
        elif op == _OP_HEAL_LINK:
            _op, link_id, was_failed = entry
            if was_failed:
                if self.link_traversable(link_id):
                    self._link_flips.append(link_id)
                self._failed_links.add(link_id)
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unknown journal op {op}")
        # every journaled mutation bumped the epoch by exactly one, so
        # undoing one entry rewinds it by exactly one — after a full
        # rollback the epoch (an int) matches its pre-transaction value
        # bit-exactly, and the negative-result memo stays sound
        self._epoch -= 1

    # -- capacity epochs and aggregate free counters -----------------------

    @property
    def epoch(self) -> int:
        """Monotonic mutation counter (the fast path's cache key).

        Every committed mutation bumps it; rollback restores it along
        with the ledgers, so two observations with equal epochs are
        guaranteed to see identical allocation state.  It never
        decreases below a previously *committed* value — only a
        rollback can rewind it, and a rollback rewinds the state too.
        """
        return self._epoch

    def touch(self) -> None:
        """Bump the epoch without mutating any ledger.

        Epoch-keyed caches (the admission gate's negative-result memo,
        the sim service's per-request short-circuit) assume a decision
        is a pure function of (spec, state-at-epoch).  When something
        *outside* the ledgers that decisions depend on changes — the
        health registry shifting soft avoidance penalties is the one
        such input — the certificate must be revoked even though the
        ledgers are untouched.  Bumping the epoch does exactly that:
        "equal epochs certify identical state" stays true (the bump
        only makes identical states *look* distinct, costing cache
        hits, never soundness).

        Disallowed inside an open transaction: rollback accounting
        rewinds the epoch by exactly one per journal entry, and an
        unjournaled bump would break that bit-exact rewind.
        """
        if self._journal is not None:
            raise AllocationError("touch() is illegal inside a transaction")
        self._epoch += 1

    @property
    def scratch(self) -> ScratchPool:
        """Per-state scratch buffers shared by the allocation hot loops."""
        if self._scratch is None:
            self._scratch = ScratchPool()
        return self._scratch

    @property
    def availability(self) -> AvailabilityCache:
        """Epoch-cached implementation availability (see the class doc)."""
        if self._availability is None:
            self._availability = AvailabilityCache(self)
        return self._availability

    # -- link-traversability flip log --------------------------------------

    def link_flip_mark(self) -> int:
        """Absolute position in the link-traversability flip log.

        A reader that records the mark can later ask "which links
        net-changed traversability since?" by examining the log suffix
        appended after it — links with an odd entry count flipped, even
        counts cancelled out (e.g. a saturating reservation that was
        rolled back).  Marks below :attr:`_flip_base` (log trimmed, or
        the timeline broken by :meth:`restore`) are unverifiable.
        """
        return self._flip_base + len(self._link_flips)

    def link_traversable(self, link_id: int) -> bool:
        """Can a congestion-respecting search cross this link *now*?

        True iff the link is not failed and offers a free virtual
        channel in at least one direction — the exact wall predicate of
        :class:`~repro.core.search.RingSearch` and the routers.
        """
        if link_id in self._failed_links:
            return False
        slot = link_id << 1
        saturated = self._slot_saturated
        return not (saturated[slot] and saturated[slot | 1])

    def trim_link_flips(self, floor_mark: int) -> None:
        """Drop log entries below ``floor_mark`` (a memory bound).

        Callers holding marks below the floor must treat their cached
        derivations as unverifiable afterwards — the distance-field
        engine drops such fields before trimming.
        """
        drop = floor_mark - self._flip_base
        if drop > 0:
            del self._link_flips[:drop]
            self._flip_base = floor_mark

    def _cap_link_flips(self) -> None:
        """Bound the flip log when no engine is around to trim it."""
        if len(self._link_flips) >= _FLIP_LOG_CAP:
            self.trim_link_flips(
                self._flip_base + len(self._link_flips) - _FLIP_LOG_CAP // 2
            )

    def aggregate_free(self) -> dict:
        """Total free per resource kind over non-failed elements (copy)."""
        return dict(self._agg_free)

    def aggregate_free_by_kind(self) -> dict:
        """Per-element-kind split of :meth:`aggregate_free` (copies)."""
        return {
            kind: dict(values)
            for kind, values in self._agg_free_kind.items()
        }

    def _agg_entries(self, element_id: int, vector: ResourceVector) -> tuple:
        """Pre-mutation aggregate values touched by ``vector`` (undo data)."""
        by_kind = self._agg_free_kind.setdefault(
            self._kind_by_id[element_id], {}
        )
        agg = self._agg_free
        return tuple(
            (resource, agg.get(resource, 0), by_kind.get(resource, 0))
            for resource in vector._data
        )

    def _agg_apply(
        self, element_id: int, vector: ResourceVector, sign: int
    ) -> None:
        by_kind = self._agg_free_kind.setdefault(
            self._kind_by_id[element_id], {}
        )
        agg = self._agg_free
        for resource, quantity in vector._data.items():
            delta = quantity if sign > 0 else -quantity
            agg[resource] = agg.get(resource, 0) + delta
            by_kind[resource] = by_kind.get(resource, 0) + delta

    def _agg_restore(self, element_id: int, entries: tuple) -> None:
        by_kind = self._agg_free_kind.setdefault(
            self._kind_by_id[element_id], {}
        )
        agg = self._agg_free
        for resource, total, per_kind in entries:
            agg[resource] = total
            by_kind[resource] = per_kind

    def _rebuild_free_arrays(self) -> None:
        arrays: dict = {}
        node_count = self.platform.node_count
        for element_id in self.platform.element_ids:
            for kind, quantity in self._free[element_id]._data.items():
                array = arrays.get(kind)
                if array is None:
                    array = arrays[kind] = [0] * node_count
                array[element_id] = quantity
        self._free_arrays = arrays

    def _mirror_free(self, element_id: int, kinds) -> None:
        """Copy the named components of ``_free[element_id]`` into the
        per-kind arrays (called after every free-vector update)."""
        data = self._free[element_id]._data
        arrays = self._free_arrays
        for kind in kinds:
            array = arrays.get(kind)
            if array is None:
                array = arrays[kind] = [0] * self.platform.node_count
            array[element_id] = data.get(kind, 0)

    def _recompute_aggregates(self) -> None:
        agg: dict = {}
        agg_kind: dict = {}
        failed = self._failed_elements
        for element_id in self.platform.element_ids:
            if element_id in failed:
                continue
            kind = self._kind_by_id[element_id]
            by_kind = agg_kind.get(kind)
            if by_kind is None:
                by_kind = agg_kind[kind] = {}
            for resource, quantity in self._free[element_id]._data.items():
                agg[resource] = agg.get(resource, 0) + quantity
                by_kind[resource] = by_kind.get(resource, 0) + quantity
        self._agg_free = agg
        self._agg_free_kind = agg_kind

    def _unapply_slots(self, slots: tuple[int, ...], bandwidth: float) -> None:
        self._cap_link_flips()
        vc_used, bw_used = self._vc_used, self._bw_used
        slot_vc = self.platform._slot_vc
        saturated = self._slot_saturated
        failed_links = self._failed_links
        flips = self._link_flips
        for slot in slots:
            # the link regains its last free virtual channel: it flips
            # traversable again for the congestion-respecting searches
            # (exactly-at-capacity: see reserve_route_ids).  Mirrored
            # by the _OP_RESERVE undo in _undo — keep in lockstep.
            used = vc_used[slot]
            if used == slot_vc[slot]:
                if saturated[slot ^ 1] and (slot >> 1) not in failed_links:
                    flips.append(slot >> 1)
                saturated[slot] = 0
            vc_used[slot] = used - 1
            bw_used[slot] -= bandwidth
            if vc_used[slot] == 0 and abs(bw_used[slot]) < _BW_EPSILON:
                bw_used[slot] = 0.0

    # -- element occupancy ------------------------------------------------

    def free(self, element: ProcessingElement | str) -> ResourceVector:
        """Remaining capacity of ``element`` (zero if failed)."""
        element_id = self._element_id(element)
        if element_id in self._failed_elements:
            return ResourceVector()
        return self._free[element_id]

    def is_available(
        self, element: ProcessingElement | str, requirement: ResourceVector
    ) -> bool:
        """The paper's ``av(e, t)``: can ``element`` still host ``requirement``?"""
        return requirement.fits_in(self.free(element))

    def occupy(
        self,
        element: ProcessingElement | str,
        app_id: str,
        task_id: str,
        requirement: ResourceVector,
    ) -> None:
        """Allocate ``requirement`` of ``element`` to a task."""
        element_id = self._element_id(element)
        if element_id in self._failed_elements:
            raise AllocationError(
                f"element {self.platform._nodes_by_id[element_id].name} "
                "is marked failed"
            )
        key = (app_id, task_id)
        if key in self._placements:
            raise AllocationError(f"task {task_id!r} of {app_id!r} already placed")
        old_free = self._free[element_id]
        try:
            self._free[element_id] = old_free - requirement
        except ResourceError as exc:
            name = self.platform._nodes_by_id[element_id].name
            raise AllocationError(
                f"element {name} cannot host {task_id!r}: {exc}"
            ) from exc
        self._occupants[element_id].append(Occupant(app_id, task_id, requirement))
        self._placements[key] = element_id
        self._wear[element_id] += 1
        old_allocated = self._allocated_total
        self._allocated_total = old_allocated + requirement.total()
        if self._journal is not None:
            self._journal.append(
                (_OP_OCCUPY, element_id, key, old_free, old_allocated,
                 self._agg_entries(element_id, requirement))
            )
        self._agg_apply(element_id, requirement, -1)
        self._mirror_free(element_id, requirement._data)
        self._epoch += 1

    def vacate(self, app_id: str, task_id: str) -> None:
        """Release the resources a task held."""
        key = (app_id, task_id)
        try:
            element_id = self._placements.pop(key)
        except KeyError:
            raise AllocationError(
                f"task {task_id!r} of {app_id!r} is not placed"
            ) from None
        occupants = self._occupants[element_id]
        for index, occupant in enumerate(occupants):
            if occupant.app_id == app_id and occupant.task_id == task_id:
                del occupants[index]
                old_free = self._free[element_id]
                self._free[element_id] = old_free + occupant.requirement
                old_allocated = self._allocated_total
                self._allocated_total = (
                    old_allocated - occupant.requirement.total()
                )
                # a failed element's free capacity is excluded from the
                # aggregates, so vacating a task stranded on one must
                # not add its share back
                failed = element_id in self._failed_elements
                if self._journal is not None:
                    self._journal.append(
                        (_OP_VACATE, element_id, key, occupant, index,
                         old_free, old_allocated,
                         () if failed else self._agg_entries(
                             element_id, occupant.requirement))
                    )
                if not failed:
                    self._agg_apply(element_id, occupant.requirement, 1)
                self._mirror_free(element_id, occupant.requirement._data)
                self._epoch += 1
                return
        raise AssertionError("placement table and occupant list disagree")

    def occupants(self, element: ProcessingElement | str) -> tuple[Occupant, ...]:
        return tuple(self._occupants[self._element_id(element)])

    def occupants_id(self, element_id: int) -> list[Occupant]:
        """Id-based occupant list (hot path; treat as read-only)."""
        return self._occupants[element_id]

    def element_of(self, app_id: str, task_id: str) -> str | None:
        """Element name hosting a task, or None when unplaced."""
        element_id = self._placements.get((app_id, task_id))
        if element_id is None:
            return None
        return self.platform._nodes_by_id[element_id].name

    def placements_of(self, app_id: str) -> dict[str, str]:
        """task_id -> element name for one application."""
        nodes = self.platform._nodes_by_id
        return {
            task: nodes[element_id].name
            for (app, task), element_id in self._placements.items()
            if app == app_id
        }

    def wear(self, element: ProcessingElement | str) -> int:
        """Total occupations this element ever served (never decreases)."""
        return self._wear[self._element_id(element)]

    def is_used(self, element: ProcessingElement | str) -> bool:
        """True when the element hosts at least one task."""
        return bool(self._occupants[self._element_id(element)])

    def used_elements(self) -> tuple[str, ...]:
        nodes = self.platform._nodes_by_id
        occupants = self._occupants
        return tuple(
            nodes[element_id].name
            for element_id in self.platform.element_ids
            if occupants[element_id]
        )

    def applications(self) -> tuple[str, ...]:
        """Identifiers of all applications with at least one placement."""
        return tuple(sorted({app for app, _task in self._placements}))

    # -- link ledger --------------------------------------------------------

    def vc_free(self, a: Node | str, b: Node | str) -> int:
        """Free virtual channels on the directed link a -> b."""
        slot = self.platform.directed_slot(self._node_id(a), self._node_id(b))
        if (slot >> 1) in self._failed_links:
            return 0
        return self.platform._slot_vc[slot] - self._vc_used[slot]

    def bandwidth_free(self, a: Node | str, b: Node | str) -> float:
        slot = self.platform.directed_slot(self._node_id(a), self._node_id(b))
        if (slot >> 1) in self._failed_links:
            return 0.0
        return self.platform._slot_bw[slot] - self._bw_used[slot]

    def can_traverse(self, a: Node | str, b: Node | str, bandwidth: float) -> bool:
        """Can one more channel with ``bandwidth`` cross link a -> b?"""
        slot = self.platform.directed_slot(self._node_id(a), self._node_id(b))
        return self.can_traverse_slot(slot, bandwidth)

    def can_traverse_slot(self, slot: int, bandwidth: float) -> bool:
        """Id-based :meth:`can_traverse` over a directed slot (hot path)."""
        platform = self.platform
        return (
            self._vc_used[slot] < platform._slot_vc[slot]
            and platform._slot_bw[slot] - self._bw_used[slot] >= bandwidth
            and (slot >> 1) not in self._failed_links
        )

    def reserve_route(
        self,
        app_id: str,
        channel_id: str,
        path: Iterable[Node | str],
        bandwidth: float,
    ) -> ChannelReservation:
        """Reserve one virtual channel + bandwidth along ``path``.

        ``path`` is a node sequence from the source element to the
        target element.  All-or-nothing: verified first, then applied.
        """
        ids = [self._node_id(node) for node in path]
        return self.reserve_route_ids(app_id, channel_id, ids, bandwidth)

    def reserve_route_ids(
        self,
        app_id: str,
        channel_id: str,
        id_path: list[int],
        bandwidth: float,
    ) -> ChannelReservation:
        """Id-based :meth:`reserve_route` (hot path for the routers)."""
        if len(id_path) < 2:
            names = [self.platform._nodes_by_id[i].name for i in id_path]
            raise AllocationError(f"route for {channel_id!r} has no hops: {names}")
        key = (app_id, channel_id)
        if key in self._reservations:
            raise AllocationError(f"channel {channel_id!r} already routed")
        directed = self.platform._directed_slots
        try:
            slots = tuple(
                directed[(a, b)] for a, b in zip(id_path, id_path[1:])
            )
        except KeyError:
            # re-resolve through the validating accessor for the
            # canonical TopologyError on a non-adjacent pair
            slots = tuple(
                self.platform.directed_slot(a, b)
                for a, b in zip(id_path, id_path[1:])
            )
        for slot in slots:
            if not self.can_traverse_slot(slot, bandwidth):
                link = self.platform.link_by_id(slot >> 1)
                a, b = (link.a, link.b) if slot % 2 == 0 else (link.b, link.a)
                raise AllocationError(
                    f"link {a.name}->{b.name} lacks capacity for "
                    f"channel {channel_id!r}"
                )
        self._cap_link_flips()
        vc_used, bw_used = self._vc_used, self._bw_used
        slot_vc = self.platform._slot_vc
        saturated = self._slot_saturated
        failed_links = self._failed_links
        flips = self._link_flips
        journal = self._journal
        old_bws = [] if journal is not None else None
        for slot in slots:
            used = vc_used[slot] + 1
            vc_used[slot] = used
            if used >= slot_vc[slot]:
                saturated[slot] = 1
                # the link loses its last free virtual channel (in
                # either direction) with this hop: it flips
                # non-traversable for the congestion-respecting
                # searches.  Exactly-at-capacity guards a degenerate
                # walk crossing the same directed link twice from
                # double-logging one traversability change.  Mirrored
                # (apply side) by the _OP_RELEASE undo in _undo; the
                # reverse transition lives in _unapply_slots and the
                # _OP_RESERVE undo — all four must stay in lockstep.
                if (
                    used == slot_vc[slot]
                    and saturated[slot ^ 1]
                    and (slot >> 1) not in failed_links
                ):
                    flips.append(slot >> 1)
            if old_bws is not None:
                old_bws.append(bw_used[slot])
            bw_used[slot] += bandwidth
        nodes = self.platform._nodes_by_id
        reservation = ChannelReservation(
            app_id, channel_id,
            tuple(nodes[i].name for i in id_path), bandwidth,
        )
        self._reservations[key] = reservation
        self._res_slots[key] = slots
        if journal is not None:
            journal.append((_OP_RESERVE, key, tuple(old_bws)))
        self._epoch += 1
        return reservation

    def release_route(self, app_id: str, channel_id: str) -> None:
        key = (app_id, channel_id)
        try:
            reservation = self._reservations.pop(key)
        except KeyError:
            raise AllocationError(f"channel {channel_id!r} is not routed") from None
        slots = self._res_slots.pop(key)
        journal = self._journal
        old_bws = (
            tuple(self._bw_used[slot] for slot in slots)
            if journal is not None else None
        )
        self._unapply_slots(slots, reservation.bandwidth)
        if journal is not None:
            journal.append((_OP_RELEASE, key, reservation, slots, old_bws))
        self._epoch += 1

    def reservation(self, app_id: str, channel_id: str) -> ChannelReservation | None:
        return self._reservations.get((app_id, channel_id))

    def reservations_of(self, app_id: str) -> tuple[ChannelReservation, ...]:
        return tuple(
            res for (app, _ch), res in self._reservations.items() if app == app_id
        )

    # -- whole-application release -----------------------------------------

    def release_application(self, app_id: str) -> None:
        """Vacate every task and route of ``app_id`` (idempotent)."""
        for task_id in list(self.placements_of(app_id)):
            self.vacate(app_id, task_id)
        for reservation in self.reservations_of(app_id):
            self.release_route(app_id, reservation.channel_id)

    # -- fault injection -----------------------------------------------------

    def fail_element(self, element: ProcessingElement | str) -> None:
        """Mark an element faulty: it stops offering resources.

        Resident tasks are *not* evicted automatically — re-allocation
        policy belongs to the manager layer (see
        :mod:`repro.arch.faults`).
        """
        element_id = self._element_id(element)
        was_failed = element_id in self._failed_elements
        agg = () if was_failed else self._agg_entries(
            element_id, self._free[element_id]
        )
        if self._journal is not None:
            self._journal.append(
                (_OP_FAIL_ELEMENT, element_id, was_failed, agg)
            )
        if not was_failed:
            self._agg_apply(element_id, self._free[element_id], -1)
        self._failed_elements.add(element_id)
        self._epoch += 1

    def heal_element(self, element: ProcessingElement | str) -> None:
        element_id = self._element_id(element)
        was_failed = element_id in self._failed_elements
        agg = self._agg_entries(
            element_id, self._free[element_id]
        ) if was_failed else ()
        if self._journal is not None:
            self._journal.append(
                (_OP_HEAL_ELEMENT, element_id, was_failed, agg)
            )
        if was_failed:
            self._agg_apply(element_id, self._free[element_id], 1)
        self._failed_elements.discard(element_id)
        self._epoch += 1

    def fail_link(self, a: Node | str, b: Node | str) -> None:
        slot = self.platform.directed_slot(  # validates link existence
            self._node_id(a), self._node_id(b)
        )
        link_id = slot >> 1
        if self._journal is not None:
            self._journal.append(
                (_OP_FAIL_LINK, link_id, link_id in self._failed_links)
            )
        if self.link_traversable(link_id):
            self._cap_link_flips()
            self._link_flips.append(link_id)
        self._failed_links.add(link_id)
        self._epoch += 1

    def heal_link(self, a: Node | str, b: Node | str) -> None:
        pair = (self._node_id(a), self._node_id(b))
        slot = self.platform._directed_slots.get(pair)
        if slot is None:
            return  # unknown links were never failed; healing is a no-op
        link_id = slot >> 1
        if self._journal is not None:
            self._journal.append(
                (_OP_HEAL_LINK, link_id, link_id in self._failed_links)
            )
        if link_id in self._failed_links:
            self._failed_links.discard(link_id)
            if self.link_traversable(link_id):
                self._cap_link_flips()
                self._link_flips.append(link_id)
        self._epoch += 1

    def is_failed(self, element: ProcessingElement | str) -> bool:
        return self._element_id(element) in self._failed_elements

    @property
    def failed_elements(self) -> frozenset[str]:
        nodes = self.platform._nodes_by_id
        return frozenset(
            nodes[element_id].name for element_id in self._failed_elements
        )

    @property
    def failed_links(self) -> frozenset[frozenset[str]]:
        """Endpoint-name pairs of links currently marked failed."""
        links = self.platform._links_by_id
        return frozenset(links[link_id].key() for link_id in self._failed_links)

    # -- metrics ---------------------------------------------------------------

    def external_fragmentation(self) -> float:
        """Paper Section III-A's external resource fragmentation, in percent.

        The percentage of adjacent element pairs of which exactly one
        element is used, over all adjacent element pairs.
        """
        pairs = self.platform.element_pair_ids
        if not pairs:
            return 0.0
        occupants = self._occupants
        mixed = sum(
            1 for a, b in pairs if bool(occupants[a]) != bool(occupants[b])
        )
        return 100.0 * mixed / len(pairs)

    def utilization(self) -> float:
        """Fraction of total platform capacity currently allocated.

        O(1): the totals are maintained incrementally by occupy/vacate
        rather than re-summed over every element per call.
        """
        if not self._total_capacity:
            return 0.0
        return self._allocated_total / self._total_capacity

    # -- snapshots (legacy compatibility wrappers) ---------------------------

    def snapshot(self) -> dict:
        """An opaque, restorable copy of the mutable ledgers.

        O(platform size) — prefer :meth:`transaction` for rollback; the
        snapshot remains for whole-state capture and comparisons.
        """
        platform = self.platform
        nodes = platform._nodes_by_id
        links = platform._links_by_id
        vc_used: dict[tuple[str, str], int] = {}
        bw_used: dict[tuple[str, str], float] = {}
        for slot, used in enumerate(self._vc_used):
            bw = self._bw_used[slot]
            if not used and abs(bw) < _BW_EPSILON:
                continue
            link = links[slot >> 1]
            pair = (
                (link.a.name, link.b.name) if slot % 2 == 0
                else (link.b.name, link.a.name)
            )
            if used:
                vc_used[pair] = used
            if abs(bw) >= _BW_EPSILON:
                bw_used[pair] = bw
        return {
            "free": {
                nodes[element_id].name: self._free[element_id]
                for element_id in platform.element_ids
            },
            "occupants": {
                nodes[element_id].name: list(self._occupants[element_id])
                for element_id in platform.element_ids
            },
            "vc_used": vc_used,
            "bw_used": bw_used,
            "reservations": dict(self._reservations),
            "placements": {
                key: nodes[element_id].name
                for key, element_id in self._placements.items()
            },
            "wear": {
                nodes[element_id].name: self._wear[element_id]
                for element_id in platform.element_ids
            },
            "failed_elements": set(self.failed_elements),
            "failed_links": set(self.failed_links),
            # the exact incremental total, so a restore leaves the same
            # float the journal path carries (recomputing could differ
            # in the last bit and desynchronize the two strategies)
            "allocated_total": self._allocated_total,
            # epoch and aggregates are captured verbatim for the same
            # reason: a restore must be indistinguishable from rollback
            "epoch": self._epoch,
            "agg_free": dict(self._agg_free),
            "agg_free_kind": {
                kind: dict(values)
                for kind, values in self._agg_free_kind.items()
            },
        }

    def restore(self, snapshot: dict) -> None:
        if self._journal is not None:
            raise AllocationError(
                "cannot restore() inside an open transaction"
            )
        platform = self.platform
        node_ids = platform._node_ids
        for name, vector in snapshot["free"].items():
            self._free[node_ids[name]] = vector
        for name, occupants in snapshot["occupants"].items():
            self._occupants[node_ids[name]] = list(occupants)
        self._vc_used = [0] * platform.slot_count
        self._bw_used = [0.0] * platform.slot_count
        directed = platform._directed_slots
        for (a, b), used in snapshot["vc_used"].items():
            self._vc_used[directed[(node_ids[a], node_ids[b])]] = used
        for (a, b), used in snapshot["bw_used"].items():
            self._bw_used[directed[(node_ids[a], node_ids[b])]] = used
        slot_vc = platform._slot_vc
        self._slot_saturated = bytearray(
            1 if used >= slot_vc[slot] else 0
            for slot, used in enumerate(self._vc_used)
        )
        self._reservations = dict(snapshot["reservations"])
        self._res_slots = {
            key: tuple(
                directed[(node_ids[a], node_ids[b])]
                for a, b in zip(res.path, res.path[1:])
            )
            for key, res in self._reservations.items()
        }
        self._placements = {
            key: node_ids[name]
            for key, name in snapshot["placements"].items()
        }
        for name, count in snapshot["wear"].items():
            self._wear[node_ids[name]] = count
        self._failed_elements = {
            node_ids[name] for name in snapshot["failed_elements"]
        }
        self._failed_links = {
            platform.directed_slot(*(node_ids[name] for name in pair)) >> 1
            for pair in snapshot["failed_links"]
        }
        self._allocated_total = snapshot["allocated_total"]
        agg = snapshot.get("agg_free")
        if agg is None:  # pre-epoch snapshot dict: rebuild from ledgers
            self._recompute_aggregates()
        else:
            self._agg_free = dict(agg)
            self._agg_free_kind = {
                kind: dict(values)
                for kind, values in snapshot["agg_free_kind"].items()
            }
        epoch = snapshot.get("epoch")
        # an epoch-less snapshot cannot prove the state unchanged, so
        # conservatively advance (stale memo entries self-invalidate)
        self._epoch = self._epoch + 1 if epoch is None else epoch
        self._rebuild_free_arrays()
        # restore() may install state from another timeline (foreign
        # snapshot dicts are accepted), so cached scans are dropped
        # wholesale rather than trusting epoch equality
        if self._availability is not None:
            self._availability._epoch = -1
        # the flip log cannot describe a timeline jump: advance the
        # base past every outstanding mark so cached distance fields
        # read as unverifiable (the engine recomputes from live state)
        self._flip_base += len(self._link_flips) + 1
        self._link_flips.clear()

    # -- helpers ------------------------------------------------------------

    def _element_id(self, element: ProcessingElement | str) -> int:
        name = element if isinstance(element, str) else element.name
        element_id = self.platform._node_ids.get(name)
        if element_id is None or not self.platform._is_element_mask[element_id]:
            raise TopologyError(f"unknown element {name!r}")
        return element_id

    def _node_id(self, node: Node | str) -> int:
        name = node if isinstance(node, str) else node.name
        node_id = self.platform._node_ids.get(name)
        if node_id is None:
            raise TopologyError(f"unknown node {name!r}")
        return node_id

    def __repr__(self) -> str:
        return (
            f"<AllocationState on {self.platform.name}: "
            f"{len(self.used_elements())}/{len(self.platform.elements)} "
            f"elements used, {len(self._reservations)} routes>"
        )
